//! Determinism across the whole pipeline: identical seeds must produce
//! bit-identical datasets, models and rankings regardless of rayon's
//! thread scheduling; different seeds must diverge.

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;

fn make_dataset(seed: u64) -> Dataset {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, seed);
    cfg.n_scenarios = 20;
    Dataset::generate(&world, &cfg).expect("generate")
}

#[test]
fn dataset_generation_reproducible() {
    let a = make_dataset(99);
    let b = make_dataset(99);
    assert_eq!(a.samples, b.samples);
}

#[test]
fn dataset_generation_thread_count_independent() {
    // Generate under a 1-thread pool and under the default pool: identical.
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| make_dataset(101));
    let parallel = make_dataset(101);
    assert_eq!(single.samples, parallel.samples);
}

#[test]
fn training_and_ranking_reproducible() {
    let ds = make_dataset(103);
    let split = ds.split(0.8, 103);
    let run = || {
        let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 103).unwrap();
        let full = FeatureSchema::full();
        split
            .test
            .samples
            .iter()
            .take(10)
            .map(|s| model.rank_causes(&s.features, &full).scores)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn forest_training_thread_count_independent() {
    let ds = make_dataset(105);
    let split = ds.split(0.8, 105);
    let schema = FeatureSchema::known();
    let cfg = diagnet_forest::ForestConfig::paper_default(9);
    let sequential = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| ForestRanker::train(&cfg, &split.train, &schema, 9));
    let parallel = ForestRanker::train(&cfg, &split.train, &schema, 9);
    let full = FeatureSchema::full();
    for s in split.test.samples.iter().take(10) {
        assert_eq!(
            sequential.rank(&s.features, &full).scores,
            parallel.rank(&s.features, &full).scores
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = make_dataset(1);
    let b = make_dataset(2);
    assert_ne!(a.samples, b.samples);
}

#[test]
fn split_deterministic_but_seed_sensitive() {
    let ds = make_dataset(107);
    let s1 = ds.split(0.8, 5);
    let s2 = ds.split(0.8, 5);
    let s3 = ds.split(0.8, 6);
    assert_eq!(s1.train.samples, s2.train.samples);
    assert_ne!(s1.train.samples, s3.train.samples);
}
