//! Versioned persistence round-trips for every backend kind, plus the
//! legacy fallback: bare `DiagNet` JSON written before the envelope existed
//! must still load.

use diagnet::backend::{BackendConfig, BackendKind, ALL_BACKENDS};
use diagnet::backend_persist::{load_backend, save_backend};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;

const SEED: u64 = 77;

fn data() -> (Dataset, Dataset) {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, SEED);
    cfg.n_scenarios = 30;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let split = ds.split(0.8, SEED);
    (split.train, split.test)
}

#[test]
fn every_backend_kind_round_trips_bitwise() {
    let (train, test) = data();
    let mut config = BackendConfig::from_diagnet(DiagNetConfig::fast());
    config.bayes.kde_cap = 64;
    let full = FeatureSchema::full();
    let rows: Vec<Vec<f32>> = test
        .samples
        .iter()
        .take(6)
        .map(|s| s.features.clone())
        .collect();
    for kind in ALL_BACKENDS {
        let backend = kind
            .train(&config, &train, &FeatureSchema::known(), SEED)
            .unwrap();
        let mut buf = Vec::new();
        save_backend(backend.as_ref(), &mut buf).unwrap();
        let restored = load_backend(buf.as_slice()).unwrap();
        assert_eq!(restored.describe(), backend.describe(), "{kind}");
        for (a, b) in backend
            .rank_causes_batch(&rows, &full)
            .iter()
            .zip(&restored.rank_causes_batch(&rows, &full))
        {
            let before: Vec<u32> = a.scores.iter().map(|v| v.to_bits()).collect();
            let after: Vec<u32> = b.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(before, after, "{kind}: scores drifted through save/load");
        }
    }
}

#[test]
fn legacy_bare_diagnet_json_still_loads() {
    let (train, test) = data();
    let model = DiagNet::train(&DiagNetConfig::fast(), &train, SEED).unwrap();
    // The pre-envelope on-disk shape: the model serialised directly.
    let legacy = serde_json::to_vec(&model).unwrap();
    let restored = load_backend(legacy.as_slice()).unwrap();
    assert_eq!(restored.describe().kind, BackendKind::DiagNet);
    let full = FeatureSchema::full();
    let before = model.rank_causes(&test.samples[0].features, &full);
    let after = restored.rank_causes(&test.samples[0].features, &full);
    let before: Vec<u32> = before.scores.iter().map(|v| v.to_bits()).collect();
    let after: Vec<u32> = after.scores.iter().map(|v| v.to_bits()).collect();
    assert_eq!(before, after, "legacy load drifted");
}

#[test]
fn corrupt_artefacts_are_a_serialization_error() {
    let err = load_backend(&b"{\"definitely\": \"not a model\"}"[..]).unwrap_err();
    assert!(
        err.to_string().contains("serialization error"),
        "unexpected error text: {err}"
    );
    let err = load_backend(&b"not json at all"[..]).unwrap_err();
    assert!(err.to_string().contains("serialization error"), "{err}");
}

fn saved_diagnet() -> Vec<u8> {
    let (train, _) = data();
    let model = DiagNet::train(&DiagNetConfig::fast(), &train, SEED).unwrap();
    let mut buf = Vec::new();
    save_backend(&model, &mut buf).unwrap();
    buf
}

#[test]
fn truncated_artefacts_error_instead_of_panicking() {
    let buf = saved_diagnet();
    // Cut the artefact at several depths, including mid-token cuts; every
    // prefix must come back as a typed error, never a panic or a model.
    for cut in [0, 1, buf.len() / 4, buf.len() / 2, buf.len() - 1] {
        let err = load_backend(&buf[..cut]).unwrap_err();
        assert!(
            err.to_string().contains("serialization error"),
            "cut at {cut}: unexpected error text: {err}"
        );
    }
}

#[test]
fn bit_flipped_artefacts_never_panic() {
    let buf = saved_diagnet();
    // Flip a bit at positions scattered through the artefact. Each mutant
    // either fails to parse (typed error) or parses into a model that
    // still passes the load-time validation — loading must never panic
    // and never hand back a non-finite model.
    let full = FeatureSchema::full();
    let zero = vec![0.0f32; full.n_features()];
    let step = (buf.len() / 64).max(1);
    for pos in (0..buf.len()).step_by(step) {
        let mut mutant = buf.clone();
        mutant[pos] ^= 0x10;
        if let Ok(backend) = load_backend(mutant.as_slice()) {
            let ranking = backend.rank_causes(&zero, &full);
            assert!(
                ranking.scores.iter().all(|v| v.is_finite()),
                "bit flip at {pos}: non-finite model survived load validation"
            );
        }
    }
}

#[test]
fn non_finite_weights_fail_load_time_validation() {
    let text = String::from_utf8(saved_diagnet()).unwrap();
    // serde_json refuses to *emit* non-finite floats, but a hand-edited or
    // bit-rotted artefact can smuggle one in: 3.5e38 parses as a valid
    // f64, then overflows to +inf on the cast to f32. Poison the first
    // normaliser mean with it.
    let key = "\"mean\":[";
    let start = text.find(key).expect("normaliser means in artefact") + key.len();
    let end = start
        + text[start..]
            .find([',', ']'])
            .expect("first mean is delimited");
    let poisoned = format!("{}3.5e38{}", &text[..start], &text[end..]);
    let err = load_backend(poisoned.as_bytes()).unwrap_err();
    assert!(
        err.to_string().contains("failed validation"),
        "expected the load-time validation to refuse non-finite weights: {err}"
    );
}
