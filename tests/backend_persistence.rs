//! Versioned persistence round-trips for every backend kind, plus the
//! legacy fallback: bare `DiagNet` JSON written before the envelope existed
//! must still load.

use diagnet::backend::{BackendConfig, BackendKind, ALL_BACKENDS};
use diagnet::backend_persist::{load_backend, save_backend};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;

const SEED: u64 = 77;

fn data() -> (Dataset, Dataset) {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, SEED);
    cfg.n_scenarios = 30;
    let ds = Dataset::generate(&world, &cfg);
    let split = ds.split(0.8, SEED);
    (split.train, split.test)
}

#[test]
fn every_backend_kind_round_trips_bitwise() {
    let (train, test) = data();
    let mut config = BackendConfig::from_diagnet(DiagNetConfig::fast());
    config.bayes.kde_cap = 64;
    let full = FeatureSchema::full();
    let rows: Vec<Vec<f32>> = test
        .samples
        .iter()
        .take(6)
        .map(|s| s.features.clone())
        .collect();
    for kind in ALL_BACKENDS {
        let backend = kind
            .train(&config, &train, &FeatureSchema::known(), SEED)
            .unwrap();
        let mut buf = Vec::new();
        save_backend(backend.as_ref(), &mut buf).unwrap();
        let restored = load_backend(buf.as_slice()).unwrap();
        assert_eq!(restored.describe(), backend.describe(), "{kind}");
        for (a, b) in backend
            .rank_causes_batch(&rows, &full)
            .iter()
            .zip(&restored.rank_causes_batch(&rows, &full))
        {
            let before: Vec<u32> = a.scores.iter().map(|v| v.to_bits()).collect();
            let after: Vec<u32> = b.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(before, after, "{kind}: scores drifted through save/load");
        }
    }
}

#[test]
fn legacy_bare_diagnet_json_still_loads() {
    let (train, test) = data();
    let model = DiagNet::train(&DiagNetConfig::fast(), &train, SEED).unwrap();
    // The pre-envelope on-disk shape: the model serialised directly.
    let legacy = serde_json::to_vec(&model).unwrap();
    let restored = load_backend(legacy.as_slice()).unwrap();
    assert_eq!(restored.describe().kind, BackendKind::DiagNet);
    let full = FeatureSchema::full();
    let before = model.rank_causes(&test.samples[0].features, &full);
    let after = restored.rank_causes(&test.samples[0].features, &full);
    let before: Vec<u32> = before.scores.iter().map(|v| v.to_bits()).collect();
    let after: Vec<u32> = after.scores.iter().map(|v| v.to_bits()).collect();
    assert_eq!(before, after, "legacy load drifted");
}

#[test]
fn corrupt_artefacts_are_a_serialization_error() {
    let err = load_backend(&b"{\"definitely\": \"not a model\"}"[..]).unwrap_err();
    assert!(
        err.to_string().contains("serialization error"),
        "unexpected error text: {err}"
    );
    let err = load_backend(&b"not json at all"[..]).unwrap_err();
    assert!(err.to_string().contains("serialization error"), "{err}");
}
