//! Cross-model comparison invariants — the qualitative *shape* of the
//! paper's Fig. 5, with generous thresholds so the test is robust at unit
//! scale:
//!
//! * RANDOM FOREST near-ideal on faults near known landmarks, collapsing
//!   towards chance on new landmarks;
//! * NAIVE BAYES biased towards new landmarks, weak on known ones;
//! * DiagNet competitive on both sides.

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::OnceLock;

struct Fixture {
    test: Dataset,
    diagnet: DiagNet,
    forest: ForestRanker,
    bayes: NaiveBayesRanker,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 33);
        cfg.n_scenarios = 80;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 33);
        let schema = FeatureSchema::known();
        let diagnet = DiagNet::train(&DiagNetConfig::fast(), &split.train, 33).unwrap();
        let forest = ForestRanker::train(&diagnet.config.forest, &split.train, &schema, 33);
        let bayes = NaiveBayesRanker::train(&Default::default(), &split.train, &schema);
        Fixture {
            test: split.test,
            diagnet,
            forest,
            bayes,
        }
    })
}

/// Recall@k of a ranker on the faulty test slice near (or not near)
/// hidden landmarks.
fn recall(ranker: &dyn CauseRanker, fx: &Fixture, hidden: bool, k: usize) -> f32 {
    let full = FeatureSchema::full();
    let scored: Vec<(Vec<f32>, usize)> = fx
        .test
        .samples
        .iter()
        .filter(|s| s.label.is_near_hidden_landmark() == Some(hidden))
        .map(|s| {
            (
                ranker.rank(&s.features, &full).scores,
                full.index_of(s.label.cause().unwrap()).unwrap(),
            )
        })
        .collect();
    assert!(scored.len() >= 20, "subset too small: {}", scored.len());
    diagnet_eval::recall_at_k(&scored, k)
}

#[test]
fn forest_near_ideal_on_known_landmarks() {
    let fx = fixture();
    let r5 = recall(&fx.forest, fx, false, 5);
    assert!(r5 > 0.8, "RF Recall@5 on known landmarks = {r5}");
}

#[test]
fn forest_collapses_on_new_landmarks() {
    let fx = fixture();
    let known = recall(&fx.forest, fx, false, 5);
    let new = recall(&fx.forest, fx, true, 5);
    assert!(
        new < known - 0.3,
        "RF should degrade starkly on new landmarks: known {known}, new {new}"
    );
}

#[test]
fn bayes_biased_towards_new_landmarks() {
    // Unlike the forest, NB does NOT collapse on new landmarks (its
    // generic likelihoods keep them competitive — the paper's "bias
    // towards new features"), and it clearly beats the forest there.
    let fx = fixture();
    let known = recall(&fx.bayes, fx, false, 5);
    let new = recall(&fx.bayes, fx, true, 5);
    assert!(
        new > known - 0.15,
        "NB must not collapse on new landmarks: known {known}, new {new}"
    );
    let forest_new = recall(&fx.forest, fx, true, 5);
    assert!(
        new > forest_new,
        "NB ({new}) should beat RF ({forest_new}) on new landmarks"
    );
}

#[test]
fn diagnet_beats_forest_on_new_landmarks() {
    let fx = fixture();
    let dn = recall(&fx.diagnet, fx, true, 5);
    let rf = recall(&fx.forest, fx, true, 5);
    assert!(dn > rf, "DiagNet {dn} should beat RF {rf} on new landmarks");
}

#[test]
fn diagnet_close_to_forest_on_known_landmarks() {
    let fx = fixture();
    let dn = recall(&fx.diagnet, fx, false, 5);
    let rf = recall(&fx.forest, fx, false, 5);
    assert!(
        dn > rf - 0.15,
        "DiagNet {dn} should be close to ideal RF {rf} on known landmarks"
    );
}

#[test]
fn diagnet_beats_bayes_on_known_landmarks() {
    let fx = fixture();
    let dn = recall(&fx.diagnet, fx, false, 1);
    let nb = recall(&fx.bayes, fx, false, 1);
    assert!(
        dn > nb,
        "DiagNet {dn} should beat NB {nb} on known landmarks at k=1"
    );
}

#[test]
fn all_models_beat_chance_everywhere() {
    let fx = fixture();
    // Chance Recall@5 over 55 causes ≈ 9 %.
    for (name, r) in [
        ("diagnet", &fx.diagnet as &dyn CauseRanker),
        ("forest", &fx.forest),
        ("bayes", &fx.bayes),
    ] {
        for hidden in [false, true] {
            let r5 = recall(r, fx, hidden, 5);
            assert!(r5 > 0.12, "{name} hidden={hidden}: Recall@5 {r5} ≈ chance");
        }
    }
}
