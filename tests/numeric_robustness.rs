//! Numeric-robustness suite: every backend must keep its head when the
//! input does not. Extreme-but-finite feature vectors (±1e30 spikes,
//! denormals, all-zero rows, mixed extremes) must still produce finite,
//! properly ordered score distributions on all three backends, and the
//! batched path must stay bit-identical to the single-row path.
//!
//! These inputs are *admissible* (finite, right width): admission control
//! lets them through, so the scoring path itself has to absorb them —
//! the normaliser clamps z-scores to `Normalizer::MAX_ABS_Z` before they
//! can overflow the network's accumulators.

use diagnet::backend::{Backend, BackendConfig, BackendKind, ALL_BACKENDS};
use diagnet::config::DiagNetConfig;
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::OnceLock;

const SEED: u64 = 0xEB57;

fn backends() -> &'static Vec<(BackendKind, Box<dyn Backend>)> {
    static CELL: OnceLock<Vec<(BackendKind, Box<dyn Backend>)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, SEED);
        cfg.n_scenarios = 10;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let mut config = BackendConfig::from_diagnet(DiagNetConfig::fast());
        config.diagnet.epochs = 2;
        config.diagnet.forest.n_trees = 5;
        config.bayes.kde_cap = 64;
        ALL_BACKENDS
            .iter()
            .map(|&kind| {
                let backend = kind
                    .train(&config, &ds, &FeatureSchema::known(), SEED)
                    .expect("training must succeed on a healthy dataset");
                (kind, backend)
            })
            .collect()
    })
}

/// Deterministic extreme-but-finite rows: spikes of ±1e30 and ±1e9,
/// denormals (1e-40), exact zeros and sign flips, scattered over random
/// positions so every feature kind gets hit across the set.
fn extreme_rows(width: usize, n: usize) -> Vec<Vec<f32>> {
    const EXTREMES: [f32; 8] = [1e30, -1e30, 1e9, -1e9, 1e-40, -1e-40, 0.0, 3.4e38];
    let mut rng = SplitMix64::new(SEED ^ 0xC0FFEE);
    let mut rows = Vec::with_capacity(n + 2);
    rows.push(vec![0.0; width]); // all-zero row
    rows.push(vec![1e30; width]); // uniformly absurd row
    for _ in 0..n {
        // A plausible baseline with a handful of extreme spikes.
        let mut row: Vec<f32> = (0..width).map(|_| rng.uniform(0.0, 100.0)).collect();
        for _ in 0..1 + rng.next_below(4) {
            let j = rng.next_below(width);
            row[j] = EXTREMES[rng.next_below(EXTREMES.len())];
        }
        rows.push(row);
    }
    rows
}

#[test]
fn extreme_inputs_produce_finite_ordered_scores() {
    let full = FeatureSchema::full();
    let rows = extreme_rows(full.n_features(), 24);
    for (kind, backend) in backends() {
        for (i, row) in rows.iter().enumerate() {
            assert!(row.iter().all(|v| v.is_finite()), "fixture row {i} finite");
            let ranking = backend.rank_causes(row, &full);
            assert_eq!(ranking.scores.len(), full.n_features(), "{kind}: row {i}");
            assert!(
                ranking.scores.iter().all(|v| v.is_finite()),
                "{kind}: non-finite score on extreme row {i}"
            );
            assert!(
                ranking.w_unknown.is_finite() && (0.0..=1.0).contains(&ranking.w_unknown),
                "{kind}: w_unknown escaped [0,1] on row {i}: {}",
                ranking.w_unknown
            );
            // `top` must impose a total order: scores non-increasing along
            // the returned ranking.
            let top = ranking.top(full.n_features());
            assert_eq!(top.len(), full.n_features(), "{kind}: row {i}");
            for pair in top.windows(2) {
                assert!(
                    ranking.scores[pair[0]] >= ranking.scores[pair[1]],
                    "{kind}: row {i} ranking out of order"
                );
            }
        }
    }
}

#[test]
fn extreme_inputs_keep_batch_and_single_paths_bitwise_equal() {
    let full = FeatureSchema::full();
    let rows = extreme_rows(full.n_features(), 12);
    for (kind, backend) in backends() {
        let batched = backend.rank_causes_batch(&rows, &full);
        assert_eq!(batched.len(), rows.len());
        for (i, (row, from_batch)) in rows.iter().zip(&batched).enumerate() {
            let single = backend.rank_causes(row, &full);
            let single_bits: Vec<u32> = single.scores.iter().map(|v| v.to_bits()).collect();
            let batch_bits: Vec<u32> = from_batch.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                single_bits, batch_bits,
                "{kind}: extreme row {i} drifted between batch and single"
            );
        }
    }
}

#[test]
fn backend_health_probe_passes_on_trained_models() {
    // The same check the publish gate and `load_backend` run: a zero row
    // must score to a finite, full-width ranking.
    for (kind, backend) in backends() {
        backend
            .validate()
            .unwrap_or_else(|e| panic!("{kind}: healthy model failed validation: {e}"));
    }
}
