//! End-to-end steady-state allocation contract for the fused scoring
//! path (ISSUE 7): after warm-up, the normalise → forward → attention
//! backward pipeline must never touch the heap, and a full
//! `rank_causes_batch` must allocate only the rankings it returns.
//!
//! A counting global allocator wraps the system allocator. This file
//! holds exactly one test so no concurrent test can pollute the counter,
//! and the model is sized so every nn kernel takes its serial dispatch
//! path (parallel paths hand work to rayon, whose queues are outside the
//! strict-zero contract; the end-to-end phase uses a generous per-call
//! budget instead because the fine stage legitimately runs under rayon).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use diagnet::attention::{attention_scores_batch_ws, SaliencyWorkspace};
use diagnet::config::DiagNetConfig;
use diagnet::model::{DiagNet, PipelineMode};
use diagnet::normalize::Normalizer;
use diagnet_forest::{ExtensibleForest, ForestConfig};
use diagnet_nn::layer::Layer;
use diagnet_nn::network::Network;
use diagnet_nn::pool::PoolOp;
use diagnet_nn::tensor::Matrix;
use diagnet_nn::train::TrainHistory;
use diagnet_sim::metrics::{FeatureSchema, K_LANDMARK_METRICS, N_LOCAL_METRICS};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A hand-built DiagNet over the known schema, small enough that every
/// linalg/pooling dispatch stays serial (the strict-zero prerequisite).
/// The auxiliary forest is a stub: the test scores in `AttentionOnly`
/// mode, which never consults it.
fn tiny_model() -> (DiagNet, FeatureSchema, Vec<Vec<f32>>) {
    let schema = FeatureSchema::known();
    let m = schema.n_features();
    let rows: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            (0..m)
                .map(|j| ((i * m + j) as f32 * 0.37).sin().abs() * 10.0)
                .collect()
        })
        .collect();
    let network = Network::new(vec![
        Layer::land_pool(
            4,
            K_LANDMARK_METRICS,
            N_LOCAL_METRICS,
            vec![PoolOp::Min, PoolOp::Avg, PoolOp::Percentile(50)],
            1,
        ),
        Layer::dense(3 * 4 + N_LOCAL_METRICS, 12, 2),
        Layer::relu(),
        Layer::dense(12, 4, 3),
    ]);
    let normalizer = Normalizer::fit(&schema, &rows);
    let n_causes = FeatureSchema::full().n_features();
    let forest_rows: Vec<Vec<f32>> = (0..4).map(|_| vec![0.0; n_causes]).collect();
    let forest_cfg = ForestConfig {
        n_trees: 2,
        max_depth: 2,
        ..ForestConfig::paper_default(5)
    };
    let auxiliary =
        ExtensibleForest::fit(&forest_cfg, &forest_rows, &[0, 1, n_causes, 2], n_causes);
    let model = DiagNet {
        config: DiagNetConfig::fast(),
        network,
        normalizer,
        train_schema: schema.clone(),
        auxiliary,
        history: TrainHistory::default(),
    };
    (model, schema, rows)
}

#[test]
fn steady_state_scoring_is_allocation_free() {
    let (model, schema, rows) = tiny_model();
    let batch = rows.len();

    // Phase 1 — strict zero on the fused compute stages: normalise into a
    // reusable matrix, then one cached forward feeding both the logits
    // and the whole-batch attention backward.
    let mut ws = SaliencyWorkspace::new(&model.network);
    let mut x = Matrix::zeros(0, 0);
    let mut gammas = Matrix::zeros(0, 0);
    for _ in 0..3 {
        model.normalizer.apply_matrix_into(&schema, &rows, &mut x);
        attention_scores_batch_ws(&model.network, &x, &mut ws, &mut gammas);
    }
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut checksum = 0.0f32;
    for _ in 0..20 {
        model.normalizer.apply_matrix_into(&schema, &rows, &mut x);
        attention_scores_batch_ws(&model.network, &x, &mut ws, &mut gammas);
        checksum += gammas.get(0, 0) + ws.logits().get(0, 0);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let stage_allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(checksum.is_finite());
    assert_eq!(
        stage_allocs, 0,
        "steady-state fused scoring stages allocated {stage_allocs} times"
    );

    // Phase 2 — end-to-end `rank_causes_batch` through the thread-local
    // workspace: the only allowed allocations are the returned rankings
    // (each owns its scores and coarse vectors) plus bounded rayon
    // plumbing in the parallel fine stage.
    let iters = 20;
    for _ in 0..3 {
        let _ = model.rank_causes_batch_with(&rows, &schema, PipelineMode::AttentionOnly);
    }
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut total = 0.0f32;
    for _ in 0..iters {
        let rankings = model.rank_causes_batch_with(&rows, &schema, PipelineMode::AttentionOnly);
        total += rankings[0].scores[0];
    }
    COUNTING.store(false, Ordering::SeqCst);
    let e2e_allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(total.is_finite());
    let budget = iters * (6 * batch + 64);
    assert!(
        e2e_allocs <= budget,
        "end-to-end rank_causes_batch allocated {e2e_allocs} times over {iters} iters \
         (budget {budget}): the workspace path is leaking per-call allocations"
    );

    // Phase 3 — the single-row path shares the same thread-local
    // workspace; its output boundary is two vectors per call.
    for _ in 0..3 {
        let _ = model.rank_causes_with(&rows[0], &schema, PipelineMode::AttentionOnly);
    }
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..iters {
        let r = model.rank_causes_with(&rows[0], &schema, PipelineMode::AttentionOnly);
        total += r.scores[0];
    }
    COUNTING.store(false, Ordering::SeqCst);
    let single_allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(total.is_finite());
    let single_budget = iters * 16;
    assert!(
        single_allocs <= single_budget,
        "single-row rank_causes allocated {single_allocs} times over {iters} iters \
         (budget {single_budget})"
    );
}
