//! ISSUE 4 acceptance: the observability layer sees real traffic.
//!
//! Uses a *private* `MetricsRegistry` for the wrapper assertions (exact
//! counts, no interference from concurrently running tests) and the global
//! registry for the pipeline spans (monotonic counters, `>=` assertions).

#![cfg(feature = "obs")]

use diagnet::backend::{Backend, BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet::instrument::{
    InstrumentedBackend, EXTEND_CHECKS_TOTAL, RANK_BATCH_ROWS, RANK_LATENCY_SECONDS,
    RANK_REQUESTS_TOTAL, RANK_ROWS_TOTAL,
};
use diagnet::model::DiagNet;
use diagnet_obs::MetricsRegistry;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;

fn small_data(seed: u64) -> (Dataset, Dataset) {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, seed);
    cfg.n_scenarios = 10;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let split = ds.split(0.8, seed);
    (split.train, split.test)
}

#[test]
fn instrumented_backend_records_exact_counts() {
    let (train, test) = small_data(97);
    let config = BackendConfig::default();
    let inner = BackendKind::Forest
        .train(&config, &train, &FeatureSchema::known(), 97)
        .unwrap();
    let registry = MetricsRegistry::new();
    let backend = InstrumentedBackend::with_registry(inner, &registry);
    let schema = FeatureSchema::full();

    let rows: Vec<Vec<f32>> = test
        .samples
        .iter()
        .take(8)
        .map(|s| s.features.clone())
        .collect();
    let batched = backend.rank_causes_batch(&rows, &schema);
    let single = backend.rank_causes(&rows[0], &schema);
    assert_eq!(&batched[0], &single, "wrapper must not change results");
    backend.extend(&schema).unwrap();

    let labels = &[("backend", "forest")];
    let snap = registry.snapshot();
    assert_eq!(snap.counter(RANK_REQUESTS_TOTAL, labels), Some(2));
    assert_eq!(snap.counter(RANK_ROWS_TOTAL, labels), Some(9));
    assert_eq!(snap.counter(EXTEND_CHECKS_TOTAL, labels), Some(1));

    let batch_lat = snap
        .histogram(
            RANK_LATENCY_SECONDS,
            &[("backend", "forest"), ("call", "batch")],
        )
        .unwrap();
    assert_eq!(batch_lat.count, 1);
    assert!(batch_lat.sum > 0.0, "latency must be recorded");
    let single_lat = snap
        .histogram(
            RANK_LATENCY_SECONDS,
            &[("backend", "forest"), ("call", "single")],
        )
        .unwrap();
    assert_eq!(single_lat.count, 1);
    let batch_rows = snap.histogram(RANK_BATCH_ROWS, labels).unwrap();
    assert_eq!(batch_rows.count, 1);
    assert_eq!(batch_rows.sum, 8.0);

    // The snapshot renders both ways with the recorded series present.
    let prom = snap.render_prometheus();
    assert!(prom.contains("# TYPE diagnet_rank_requests_total counter"));
    assert!(prom.contains("diagnet_rank_requests_total{backend=\"forest\"} 2"));
    assert!(prom.contains("diagnet_rank_latency_seconds_bucket"));
    let text = snap.render_text();
    assert!(text.contains("p99="), "{text}");
}

#[test]
fn wrapper_is_transparent_to_downcasts_and_envelopes() {
    let (train, _) = small_data(98);
    let mut config = DiagNetConfig::fast();
    config.epochs = 2;
    config.forest.n_trees = 5;
    let model = DiagNet::train(&config, &train, 98).unwrap();
    let registry = MetricsRegistry::new();
    let backend = InstrumentedBackend::with_registry(Box::new(model), &registry);
    // Consumers that downcast (CLI `info`, platform tests) must reach the
    // wrapped model through the wrapper.
    assert!(backend.as_any().downcast_ref::<DiagNet>().is_some());
    assert_eq!(backend.describe().kind, BackendKind::DiagNet);
    let envelope = backend.to_envelope();
    assert_eq!(envelope.kind, BackendKind::DiagNet);
    assert!(envelope.validate().is_ok());
}

#[test]
fn pipeline_spans_reach_the_global_registry() {
    let (train, test) = small_data(99);
    let mut config = DiagNetConfig::fast();
    config.epochs = 2;
    config.forest.n_trees = 5;
    let model = DiagNet::train(&config, &train, 99).unwrap();
    let schema = FeatureSchema::full();
    let rows: Vec<Vec<f32>> = test
        .samples
        .iter()
        .take(16)
        .map(|s| s.features.clone())
        .collect();
    let _ = model.rank_causes_batch(&rows, &schema);

    let snap = diagnet_obs::global().snapshot();
    for span in [
        "core.rank_causes_batch",
        "core.normalize",
        "core.forward",
        "core.attention_backward",
        "core.fine_rank",
    ] {
        let hist = snap
            .histogram(diagnet_obs::span::SPAN_HISTOGRAM, &[("span", span)])
            .unwrap_or_else(|| panic!("span `{span}` not recorded"));
        assert!(hist.count >= 1, "span `{span}` has no observations");
        assert!(hist.quantile(0.5) >= 0.0);
    }
}
