//! End-to-end integration: simulate the multi-cloud testbed, train the
//! full DiagNet pipeline, and verify it actually diagnoses injected
//! faults far better than chance.

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::OnceLock;

struct Fixture {
    world: World,
    train: Dataset,
    test: Dataset,
    model: DiagNet,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 77);
        cfg.n_scenarios = 80;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 77);
        let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 77).unwrap();
        Fixture {
            world,
            train: split.train,
            test: split.test,
            model,
        }
    })
}

/// Faulty test samples as (scores, truth) pairs under the full schema.
fn scored_samples(fx: &Fixture) -> Vec<(Vec<f32>, usize)> {
    let full = FeatureSchema::full();
    fx.test
        .samples
        .iter()
        .filter_map(|s| {
            let cause = s.label.cause()?;
            let r = fx.model.rank_causes(&s.features, &full);
            Some((r.scores, full.index_of(cause).unwrap()))
        })
        .collect()
}

#[test]
fn diagnoses_much_better_than_chance() {
    let fx = fixture();
    let scored = scored_samples(fx);
    assert!(
        scored.len() > 100,
        "need a meaningful number of faulty samples: {}",
        scored.len()
    );
    let r1 = diagnet_eval::recall_at_k(&scored, 1);
    let r5 = diagnet_eval::recall_at_k(&scored, 5);
    // Chance: R@1 = 1/55 ≈ 1.8 %, R@5 ≈ 9 %.
    assert!(r1 > 0.25, "Recall@1 = {r1}, barely better than chance");
    assert!(r5 > 0.45, "Recall@5 = {r5}");
    assert!(r5 >= r1);
}

#[test]
fn rankings_are_valid_distributions() {
    let fx = fixture();
    let full = FeatureSchema::full();
    for s in fx.test.samples.iter().take(50) {
        let r = fx.model.rank_causes(&s.features, &full);
        assert_eq!(r.scores.len(), 55);
        assert!(r.scores.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!((r.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert!((r.coarse.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert!((0.0..=1.0).contains(&r.w_unknown));
    }
}

#[test]
fn hidden_fault_protocol_respected() {
    let fx = fixture();
    assert!(fx
        .train
        .samples
        .iter()
        .all(|s| s.label.is_near_hidden_landmark() != Some(true)));
    assert!(fx
        .test
        .samples
        .iter()
        .any(|s| s.label.is_near_hidden_landmark() == Some(true)));
}

#[test]
fn unknown_landmark_faults_get_ranked_at_all() {
    // The core claim: causes at landmarks never seen in training are still
    // rankable — far above chance.
    let fx = fixture();
    let full = FeatureSchema::full();
    let scored: Vec<(Vec<f32>, usize)> = fx
        .test
        .samples
        .iter()
        .filter(|s| s.label.is_near_hidden_landmark() == Some(true))
        .filter_map(|s| {
            let cause = s.label.cause()?;
            let r = fx.model.rank_causes(&s.features, &full);
            Some((r.scores, full.index_of(cause).unwrap()))
        })
        .collect();
    assert!(
        scored.len() > 20,
        "need hidden-fault samples: {}",
        scored.len()
    );
    let r5 = diagnet_eval::recall_at_k(&scored, 5);
    assert!(r5 > 0.2, "Recall@5 on NEW landmarks = {r5} (chance ≈ 0.09)");
}

#[test]
fn coarse_classifier_beats_majority_on_faulty_samples() {
    let fx = fixture();
    let full = FeatureSchema::full();
    let faulty: Vec<_> = fx
        .test
        .samples
        .iter()
        .filter(|s| s.label.is_faulty())
        .collect();
    let rows: Vec<Vec<f32>> = faulty.iter().map(|s| s.features.clone()).collect();
    let probs = fx.model.coarse_predict_batch(&rows, &full);
    let preds: Vec<usize> = probs
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        })
        .collect();
    let truths: Vec<usize> = faulty.iter().map(|s| s.label.family_index()).collect();
    let acc = diagnet_eval::accuracy(&preds, &truths);
    // All-faulty subset: chance over 6 non-nominal families is ≈ 0.17.
    assert!(acc > 0.4, "coarse accuracy on faulty samples = {acc}");
}

#[test]
fn world_services_reachable_from_all_regions() {
    // Smoke-test the simulated substrate end to end from the public API.
    let fx = fixture();
    for &region in diagnet_sim::region::ALL_REGIONS.iter() {
        for sid in fx.world.catalog.all_ids() {
            let plt = fx.world.nominal_plt(region, sid);
            assert!(plt > 0.0 && plt < 30.0, "PLT {region}/{}: {plt}", sid.0);
        }
    }
}
