//! Simultaneous-fault integration (the mechanism behind paper Fig. 10):
//! with two faults injected at once, the dataset labels each degraded
//! sample with the *dominant* cause, and trained models rank a relevant
//! cause well above chance.

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::fault::{Fault, FaultFamily};
use diagnet_sim::metrics::{FeatureSchema, LandmarkMetric};
use diagnet_sim::region::{Region, ALL_REGIONS};
use diagnet_sim::scenario::Scenario;
use diagnet_sim::world::World;
use std::sync::OnceLock;

fn model() -> &'static (World, DiagNet) {
    static CELL: OnceLock<(World, DiagNet)> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 1212);
        cfg.n_scenarios = 80;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 1212);
        let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 1212).unwrap();
        (world, model)
    })
}

/// Observations under a two-fault scenario, with both candidate causes.
fn two_fault_observations() -> (Vec<(Vec<f32>, usize, usize)>, FeatureSchema) {
    let (world, _) = model();
    let schema = FeatureSchema::full();
    let beau = Fault::new(FaultFamily::ServiceLatency, Region::Beau);
    let sing = Fault::new(FaultFamily::PacketLoss, Region::Sing);
    let scenario = Scenario::with_faults(vec![beau, sing], 12.0);
    let beau_cause = schema
        .index_of(diagnet_sim::metrics::FeatureId::Landmark(
            Region::Beau,
            LandmarkMetric::Rtt,
        ))
        .unwrap();
    let sing_cause = schema
        .index_of(diagnet_sim::metrics::FeatureId::Landmark(
            Region::Sing,
            LandmarkMetric::LossRetrans,
        ))
        .unwrap();
    let mut out = Vec::new();
    for (i, &client) in ALL_REGIONS.iter().enumerate() {
        for sid in world.catalog.all_ids() {
            for seed in 0..3u64 {
                let obs = world.observe(
                    client,
                    sid,
                    &scenario,
                    9000 + i as u64 * 100 + sid.0 as u64 * 10 + seed,
                );
                if obs.label.is_faulty() {
                    out.push((obs.features, beau_cause, sing_cause));
                }
            }
        }
    }
    (out, schema)
}

#[test]
fn labels_name_one_of_the_injected_faults() {
    let (world, _) = model();
    let schema = FeatureSchema::full();
    let beau = Fault::new(FaultFamily::ServiceLatency, Region::Beau);
    let sing = Fault::new(FaultFamily::PacketLoss, Region::Sing);
    let scenario = Scenario::with_faults(vec![beau, sing], 12.0);
    let mut labelled = 0;
    for &client in &ALL_REGIONS {
        for sid in world.catalog.all_ids() {
            let obs = world.observe(client, sid, &scenario, 777 + sid.0 as u64);
            if let Some(cause) = obs.label.cause() {
                labelled += 1;
                assert!(
                    cause == beau.cause_feature() || cause == sing.cause_feature(),
                    "label must be one of the injected faults, got {}",
                    cause.name()
                );
                let _ = schema;
            }
        }
    }
    assert!(
        labelled > 10,
        "two simultaneous faults should degrade many pairs: {labelled}"
    );
}

#[test]
fn model_ranks_a_relevant_cause_high() {
    let (_, model) = model();
    let (observations, schema) = two_fault_observations();
    assert!(observations.len() > 30);
    let mut hits = 0;
    for (features, beau_cause, sing_cause) in &observations {
        let ranking = model.rank_causes(features, &schema);
        let top5 = ranking.top(5);
        if top5.contains(beau_cause) || top5.contains(sing_cause) {
            hits += 1;
        }
    }
    let rate = hits as f32 / observations.len() as f32;
    // Chance of catching either specific cause in 5 of 55 slots ≈ 17 %.
    assert!(
        rate > 0.5,
        "relevant cause in top-5 only {rate:.2} of the time"
    );
}

#[test]
fn disentanglement_spurious_anomalies_rarely_win() {
    // Under a *nominal* scenario the simulator still produces spurious
    // anomalies; a trained model asked to rank causes should not
    // confidently nominate remote causes that match no injected fault —
    // its top score should be lower than on genuinely faulty samples.
    let (world, model) = model();
    let schema = FeatureSchema::full();
    let nominal = Scenario::nominal(12.0);
    let faulty_scenario = Scenario::with_faults(
        vec![Fault::new(FaultFamily::PacketLoss, Region::Beau)],
        12.0,
    );
    let sid = world.catalog.by_name("image.far").unwrap().id;
    let mean_top = |scenario: &Scenario, base: u64| {
        let mut total = 0.0f32;
        for seed in 0..20u64 {
            let obs = world.observe(Region::Amst, sid, scenario, base + seed);
            let r = model.rank_causes(&obs.features, &schema);
            total += r.scores[r.best()];
        }
        total / 20.0
    };
    let nominal_conf = mean_top(&nominal, 100);
    let faulty_conf = mean_top(&faulty_scenario, 200);
    assert!(
        faulty_conf > nominal_conf,
        "top-cause confidence should be higher under a real fault: {faulty_conf} vs {nominal_conf}"
    );
}
