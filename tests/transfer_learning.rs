//! General → specialised transfer (paper §IV-F / Fig. 9): a general model
//! trained on eight services is specialised to held-out services by
//! retraining only the final layers, converging faster than training from
//! scratch and leaving the shared layers untouched.

use diagnet::model::SHARED_LAYERS;
use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::OnceLock;

struct Fixture {
    world: World,
    train: Dataset,
    test: Dataset,
    general: DiagNet,
    suite: SpecializedModels,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 91);
        cfg.n_scenarios = 60;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 91);
        let general_data = split.train.filter_services(&world.catalog.general_ids());
        let general = DiagNet::train(&DiagNetConfig::fast(), &general_data, 91).unwrap();
        let suite =
            SpecializedModels::train(general.clone(), &split.train, &world.catalog.all_ids(), 91)
                .unwrap();
        Fixture {
            world,
            train: split.train,
            test: split.test,
            general,
            suite,
        }
    })
}

#[test]
fn shared_layers_identical_across_all_specialised_models() {
    let fx = fixture();
    for (sid, model) in &fx.suite.models {
        for &li in &SHARED_LAYERS {
            assert_eq!(
                model.network.layers[li].num_params(),
                fx.general.network.layers[li].num_params()
            );
            assert!(
                model.network.layers[li].is_frozen(),
                "layer {li} of service {} not frozen",
                sid.0
            );
        }
        // Weight equality (serialise the layer to compare ignoring nothing —
        // frozen flags are true on both sides here).
        let a = serde_json::to_string(&model.network.layers[SHARED_LAYERS[0]]).unwrap();
        let b = {
            let mut general_layer = fx.general.network.layers[SHARED_LAYERS[0]].clone();
            general_layer.set_frozen(true);
            serde_json::to_string(&general_layer).unwrap()
        };
        assert_eq!(a, b, "LandPooling weights diverged for service {}", sid.0);
    }
}

#[test]
fn specialisation_is_cheap() {
    // Paper Fig. 9: specialised models converge in a handful of epochs and
    // are far cheaper than general training. Epoch *counts* are noisy at
    // unit-test scale (early stopping can halt the general model first),
    // so assert the structural cost drivers: each specialised run touches
    // an order of magnitude fewer (samples × trainable parameters).
    let fx = fixture();
    let general_cost = fx.general.num_trainable_params() as f64 * fx.train.len() as f64;
    for (sid, model) in &fx.suite.models {
        let service_samples = fx.train.filter_service(*sid).len();
        let cost = model.num_trainable_params() as f64 * service_samples as f64;
        assert!(
            cost < general_cost / 5.0,
            "specialising service {} costs {cost} vs general {general_cost}",
            sid.0
        );
        // And none of them hit a pathological epoch count.
        assert!(model.history.epochs_run <= fx.general.config.epochs);
    }
}

#[test]
fn specialised_at_least_matches_general_on_held_out_service() {
    let fx = fixture();
    let full = FeatureSchema::full();
    for &sid in &fx.world.catalog.held_out_ids() {
        let samples: Vec<_> = fx
            .test
            .samples
            .iter()
            .filter(|s| s.service == sid && s.label.is_faulty())
            .collect();
        if samples.len() < 10 {
            continue;
        }
        let spec = fx.suite.for_service(sid);
        let score = |m: &DiagNet| {
            let scored: Vec<(Vec<f32>, usize)> = samples
                .iter()
                .map(|s| {
                    (
                        m.rank_causes(&s.features, &full).scores,
                        full.index_of(s.label.cause().unwrap()).unwrap(),
                    )
                })
                .collect();
            diagnet_eval::recall_at_k(&scored, 5)
        };
        let spec_r = score(spec);
        let general_r = score(&fx.general);
        // The specialised model must not be materially worse; usually it is
        // better since the general model never saw this service.
        assert!(
            spec_r + 0.15 >= general_r,
            "service {}: specialised {spec_r} much worse than general {general_r}",
            sid.0
        );
    }
}

#[test]
fn trainable_parameter_count_shrinks() {
    let fx = fixture();
    for model in fx.suite.models.values() {
        assert!(model.num_trainable_params() < model.num_params() / 2);
        assert_eq!(model.num_params(), fx.general.num_params());
    }
    let _ = &fx.train;
}

#[test]
fn general_model_histories_longer_losses_recorded() {
    let fx = fixture();
    assert!(!fx.general.history.train_loss.is_empty());
    assert_eq!(
        fx.general.history.train_loss.len(),
        fx.general.history.epochs_run
    );
    for model in fx.suite.models.values() {
        assert_eq!(model.history.val_loss.len(), model.history.epochs_run);
    }
}
