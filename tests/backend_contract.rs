//! Trait-conformance suite for the `diagnet::backend` family: every
//! [`BackendKind`] must honour the same capability contract — train,
//! describe, rank (single and batched, bit-identical), extend to a wider
//! candidate schema, declare its specialisation support truthfully, and
//! survive an envelope round-trip unchanged.
//!
//! One fixture trains all three backends once (fast config, small dataset);
//! each test then iterates `ALL_BACKENDS` so a fourth backend added later
//! is covered by construction.

use diagnet::backend::{Backend, BackendConfig, BackendKind, ALL_BACKENDS};
use diagnet::config::DiagNetConfig;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::OnceLock;

const SEED: u64 = 4242;

struct Fixture {
    train: Dataset,
    test: Dataset,
    backends: Vec<(BackendKind, Box<dyn Backend>)>,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, SEED);
        cfg.n_scenarios = 40;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, SEED);
        let mut config = BackendConfig::from_diagnet(DiagNetConfig::fast());
        config.bayes.kde_cap = 64;
        let backends = ALL_BACKENDS
            .iter()
            .map(|&kind| {
                let backend = kind
                    .train(&config, &split.train, &FeatureSchema::known(), SEED)
                    .expect("training must succeed on a healthy dataset");
                (kind, backend)
            })
            .collect();
        Fixture {
            train: split.train,
            test: split.test,
            backends,
        }
    })
}

fn rows(fx: &Fixture, n: usize) -> Vec<Vec<f32>> {
    fx.test
        .samples
        .iter()
        .take(n)
        .map(|s| s.features.clone())
        .collect()
}

#[test]
fn describe_reports_kind_size_and_capabilities() {
    let fx = fixture();
    for (kind, backend) in &fx.backends {
        let info = backend.describe();
        assert_eq!(info.kind, *kind, "{kind}: describe() kind mismatch");
        assert_eq!(info.name, kind.label(), "{kind}: figure label mismatch");
        assert!(info.n_params > 0, "{kind}: zero-size model");
        assert_eq!(
            info.n_train_landmarks,
            FeatureSchema::known().n_landmarks(),
            "{kind}: trained on the known()-landmark protocol"
        );
        assert_eq!(
            info.supports_specialization,
            *kind == BackendKind::DiagNet,
            "{kind}: only DiagNet implements transfer learning"
        );
    }
}

#[test]
fn rank_causes_is_a_distribution_over_all_candidates() {
    let fx = fixture();
    let full = FeatureSchema::full();
    for (kind, backend) in &fx.backends {
        for sample in fx.test.samples.iter().take(8) {
            let ranking = backend.rank_causes(&sample.features, &full);
            assert_eq!(
                ranking.scores.len(),
                full.n_features(),
                "{kind}: one score per candidate cause"
            );
            assert!(
                ranking.scores.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{kind}: scores must be finite and non-negative"
            );
            let sum: f32 = ranking.scores.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-3,
                "{kind}: scores sum to {sum}, expected ≈1"
            );
        }
    }
}

#[test]
fn batched_ranking_is_bitwise_identical_to_per_row() {
    let fx = fixture();
    let full = FeatureSchema::full();
    let rows = rows(fx, 16);
    for (kind, backend) in &fx.backends {
        let batched = backend.rank_causes_batch(&rows, &full);
        assert_eq!(batched.len(), rows.len());
        for (i, (row, from_batch)) in rows.iter().zip(&batched).enumerate() {
            let single = backend.rank_causes(row, &full);
            let single_bits: Vec<u32> = single.scores.iter().map(|v| v.to_bits()).collect();
            let batch_bits: Vec<u32> = from_batch.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                single_bits, batch_bits,
                "{kind}: row {i} drifted between batch and single paths"
            );
            assert_eq!(
                single.w_unknown.to_bits(),
                from_batch.w_unknown.to_bits(),
                "{kind}: row {i} w_unknown drifted"
            );
        }
    }
}

/// Sum of the bit patterns of every score, coarse probability and
/// `w_unknown` across a batch of rankings — order-insensitive only across
/// rows, bit-exact within each value.
fn ranking_fingerprint(rankings: &[diagnet::ranking::CauseRanking]) -> u32 {
    let mut fp: u32 = 0;
    for r in rankings {
        for v in &r.scores {
            fp = fp.wrapping_add(v.to_bits());
        }
        for v in &r.coarse {
            fp = fp.wrapping_add(v.to_bits());
        }
        fp = fp.wrapping_add(r.w_unknown.to_bits());
    }
    fp
}

/// Golden pin for the fused zero-alloc scoring rewrite (ISSUE 7): this
/// fingerprint was captured on the pre-change pipeline (separate
/// allocating forwards for softmax and attention, dot-product backward
/// GEMMs). The fused single-forward workspace path and the register-strip
/// kernels must reproduce every ranking bit for bit — batched and
/// single-row alike.
#[test]
fn diagnet_rankings_match_pre_fusion_golden_fingerprint() {
    const GOLDEN_FP: u32 = 0xeab55abf;
    let fx = fixture();
    let full = FeatureSchema::full();
    let rows = rows(fx, 8);
    let (_, backend) = fx
        .backends
        .iter()
        .find(|(k, _)| *k == BackendKind::DiagNet)
        .expect("DiagNet backend present");
    let batch_fp = ranking_fingerprint(&backend.rank_causes_batch(&rows, &full));
    assert_eq!(
        batch_fp, GOLDEN_FP,
        "batched rankings drifted from the pre-fusion golden ({batch_fp:#010x})"
    );
    let singles: Vec<_> = rows.iter().map(|r| backend.rank_causes(r, &full)).collect();
    let single_fp = ranking_fingerprint(&singles);
    assert_eq!(
        single_fp, GOLDEN_FP,
        "single-row rankings drifted from the pre-fusion golden ({single_fp:#010x})"
    );
}

#[test]
fn extend_covers_new_landmarks_and_is_a_noop_on_the_train_schema() {
    let fx = fixture();
    let full = FeatureSchema::full();
    let known = FeatureSchema::known();
    let expected_new = full.n_features() - known.n_features();
    for (kind, backend) in &fx.backends {
        let wide = backend
            .extend(&full)
            .unwrap_or_else(|e| panic!("{kind}: extend(full) must succeed: {e}"));
        assert_eq!(wide.n_candidates, full.n_features(), "{kind}");
        assert_eq!(wide.n_known, known.n_features(), "{kind}");
        assert_eq!(wide.n_new, expected_new, "{kind}");

        let same = backend
            .extend(&known)
            .unwrap_or_else(|e| panic!("{kind}: extend(known) must succeed: {e}"));
        assert_eq!(same.n_candidates, known.n_features(), "{kind}");
        assert_eq!(same.n_new, 0, "{kind}: nothing is new on the train schema");
    }
}

#[test]
fn specialization_succeeds_exactly_when_advertised() {
    let fx = fixture();
    let full = FeatureSchema::full();
    for (kind, backend) in &fx.backends {
        let result = backend.specialize_for(&fx.train, SEED ^ 0x51);
        if backend.describe().supports_specialization {
            let special = result.unwrap_or_else(|e| panic!("{kind}: specialisation failed: {e}"));
            let ranking = special.rank_causes(&fx.test.samples[0].features, &full);
            assert_eq!(ranking.scores.len(), full.n_features(), "{kind}");
        } else {
            assert!(
                result.is_err(),
                "{kind}: must refuse specialisation it does not support"
            );
        }
    }
}

#[test]
fn envelope_round_trip_preserves_scores_bitwise() {
    let fx = fixture();
    let full = FeatureSchema::full();
    let rows = rows(fx, 6);
    for (kind, backend) in &fx.backends {
        let envelope = backend.to_envelope();
        assert_eq!(envelope.kind, *kind, "{kind}: envelope kind tag");
        envelope
            .validate()
            .unwrap_or_else(|e| panic!("{kind}: fresh envelope must validate: {e}"));
        let restored = envelope
            .clone()
            .into_backend()
            .unwrap_or_else(|e| panic!("{kind}: envelope must unwrap: {e}"));
        assert_eq!(restored.describe(), backend.describe(), "{kind}");
        for (a, b) in backend
            .rank_causes_batch(&rows, &full)
            .iter()
            .zip(&restored.rank_causes_batch(&rows, &full))
        {
            let before: Vec<u32> = a.scores.iter().map(|v| v.to_bits()).collect();
            let after: Vec<u32> = b.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(before, after, "{kind}: scores drifted through the envelope");
        }
    }
}

#[test]
fn envelope_validation_rejects_version_and_kind_mismatches() {
    let fx = fixture();
    let (_, backend) = &fx.backends[0];
    let mut envelope = backend.to_envelope();
    envelope.format_version += 1;
    let err = envelope.validate().unwrap_err().to_string();
    assert!(err.contains("format version"), "{err}");

    let mut envelope = backend.to_envelope();
    envelope.kind = BackendKind::Forest; // payload is DiagNet
    let err = envelope.validate().unwrap_err().to_string();
    assert!(err.contains("does not match"), "{err}");
}
