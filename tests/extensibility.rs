//! Root-cause extensibility (paper §II-D / §IV-A(d)): models trained on a
//! subset of landmarks must consume feature vectors from *more* (or fewer)
//! landmarks without retraining, and still produce meaningful rankings.

use diagnet::prelude::*;
use diagnet_nn::layer::Layer;
use diagnet_nn::pool::PoolOp;
use diagnet_nn::tensor::Matrix;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::{FeatureSchema, K_LANDMARK_METRICS, N_LOCAL_METRICS};
use diagnet_sim::region::{Region, ALL_REGIONS};
use diagnet_sim::world::World;
use std::sync::OnceLock;

fn trained() -> &'static (Dataset, DiagNet) {
    static CELL: OnceLock<(Dataset, DiagNet)> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 55)).expect("generate");
        let split = ds.split(0.8, 55);
        let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 55).unwrap();
        (split.test, model)
    })
}

#[test]
fn landpool_accepts_any_landmark_count() {
    let layer = Layer::land_pool(
        6,
        K_LANDMARK_METRICS,
        N_LOCAL_METRICS,
        PoolOp::standard_bank(),
        3,
    );
    for ell in [1usize, 3, 7, 10, 25] {
        let x = Matrix::zeros(2, ell * K_LANDMARK_METRICS + N_LOCAL_METRICS);
        let y = layer.forward(&x);
        assert_eq!(
            y.cols(),
            6 * 13 + N_LOCAL_METRICS,
            "output width fixed for ℓ = {ell}"
        );
    }
}

#[test]
fn model_trained_on_7_infers_on_10_and_on_5() {
    let (test, model) = trained();
    assert_eq!(model.train_schema.n_landmarks(), 7);
    // Full ten landmarks.
    let full = FeatureSchema::full();
    let r10 = model.rank_causes(&test.samples[0].features, &full);
    assert_eq!(r10.scores.len(), 55);
    // Degraded availability: only five landmarks reachable.
    let five = FeatureSchema::new(vec![
        Region::Beau,
        Region::Amst,
        Region::Sing,
        Region::Lond,
        Region::Toky,
    ]);
    let projected = five.project_from(&full, &test.samples[0].features, 0.0);
    let r5 = model.rank_causes(&projected, &five);
    assert_eq!(r5.scores.len(), 5 * K_LANDMARK_METRICS + N_LOCAL_METRICS);
    assert!((r5.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
}

#[test]
fn w_unknown_tracks_hidden_landmark_faults() {
    // On average, samples whose fault is near a hidden landmark should
    // push more attention mass onto unknown features than known-fault
    // samples do.
    let (test, model) = trained();
    let full = FeatureSchema::full();
    let mean_w = |hidden: bool| {
        let samples: Vec<_> = test
            .samples
            .iter()
            .filter(|s| s.label.is_near_hidden_landmark() == Some(hidden))
            .take(80)
            .collect();
        assert!(!samples.is_empty());
        samples
            .iter()
            .map(|s| model.rank_causes(&s.features, &full).w_unknown)
            .sum::<f32>()
            / samples.len() as f32
    };
    let w_hidden = mean_w(true);
    let w_known = mean_w(false);
    assert!(
        w_hidden > w_known,
        "w_U should be higher for hidden-landmark faults: {w_hidden} vs {w_known}"
    );
}

#[test]
fn landmark_permutation_does_not_change_coarse_prediction() {
    // Location agnosticism of the convolution: the coarse prediction is
    // invariant to the order in which landmarks are listed.
    let (test, model) = trained();
    let sample = &test.samples[0];
    let full = FeatureSchema::full();
    let mut permuted_regions = ALL_REGIONS.to_vec();
    permuted_regions.reverse();
    let permuted_schema = FeatureSchema::new(permuted_regions);
    let permuted_features = permuted_schema.project_from(&full, &sample.features, 0.0);
    let a = model.coarse_predict(&sample.features, &full);
    let b = model.coarse_predict(&permuted_features, &permuted_schema);
    for (x, y) in a.iter().zip(&b) {
        assert!(
            (x - y).abs() < 1e-4,
            "coarse prediction changed under permutation"
        );
    }
}

#[test]
fn baselines_accept_unseen_landmarks() {
    let (test, model) = trained();
    let world = World::new();
    let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 56)).expect("generate");
    let split = ds.split(0.8, 56);
    let schema = FeatureSchema::known();
    let forest = ForestRanker::train(&model.config.forest, &split.train, &schema, 1);
    let bayes = NaiveBayesRanker::train(&Default::default(), &split.train, &schema);
    let full = FeatureSchema::full();
    for s in test.samples.iter().take(10) {
        let rf = forest.rank(&s.features, &full);
        let nb = bayes.rank(&s.features, &full);
        assert_eq!(rf.scores.len(), 55);
        assert_eq!(nb.scores.len(), 55);
        // Hidden-landmark causes keep non-null scores in both baselines.
        let unknown = full.unknown_relative_to(&schema);
        assert!(unknown.iter().all(|&j| rf.scores[j] > 0.0));
        assert!(unknown.iter().all(|&j| nb.scores[j] > 0.0));
    }
}
