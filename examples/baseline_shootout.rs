//! The paper's model comparison in miniature: DiagNet vs the extensible
//! Random Forest vs the extensible KDE Naive Bayes, on faults near known
//! and never-seen landmarks (Fig. 5's story).
//!
//! ```sh
//! cargo run --release -p diagnet-examples --example baseline_shootout
//! ```

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;

fn main() {
    let world = World::new();
    let dataset =
        Dataset::generate(&world, &DatasetConfig::standard(&world, 100, 17)).expect("generate");
    let split = dataset.split(0.8, 17);
    let train_schema = FeatureSchema::known();
    let full = FeatureSchema::full();

    println!(
        "training three models on the same {}-sample training set…",
        split.train.len()
    );
    let diagnet = DiagNet::train(&DiagNetConfig::fast(), &split.train, 17).expect("training");
    let forest = ForestRanker::train(&diagnet.config.forest, &split.train, &train_schema, 17);
    let bayes = NaiveBayesRanker::train(&Default::default(), &split.train, &train_schema);
    let models: [(&str, &dyn CauseRanker); 3] = [
        ("DiagNet", &diagnet),
        ("Random Forest", &forest),
        ("Naive Bayes", &bayes),
    ];

    for (hidden, title) in [
        (false, "faults near KNOWN landmarks"),
        (true, "faults near NEW landmarks (unseen in training)"),
    ] {
        let samples: Vec<_> = split
            .test
            .samples
            .iter()
            .filter(|s| s.label.is_near_hidden_landmark() == Some(hidden))
            .collect();
        println!("\n{title} — {} samples", samples.len());
        println!("{:>15}  {:>6}  {:>6}  {:>6}", "model", "R@1", "R@3", "R@5");
        for (name, model) in &models {
            let scored: Vec<(Vec<f32>, usize)> = samples
                .iter()
                .map(|s| {
                    (
                        model.rank(&s.features, &full).scores,
                        full.index_of(s.label.cause().unwrap()).unwrap(),
                    )
                })
                .collect();
            println!(
                "{:>15}  {:>5.1}%  {:>5.1}%  {:>5.1}%",
                name,
                diagnet_eval::recall_at_k(&scored, 1) * 100.0,
                diagnet_eval::recall_at_k(&scored, 3) * 100.0,
                diagnet_eval::recall_at_k(&scored, 5) * 100.0
            );
        }
    }
    println!("\nexpected shape (paper Fig. 5): the forest aces known landmarks but collapses on new ones;");
    println!("naive Bayes is biased towards new landmarks; DiagNet holds up on both sides.");
}
