//! Landmark-fleet rotation: the paper's *root-cause extensibility*
//! property (§II-D) in action. A model trained against seven landmarks
//! keeps working — without any retraining — when landmarks are drained
//! for maintenance or when brand-new ones come online.
//!
//! ```sh
//! cargo run --release -p diagnet-examples --example fleet_rotation
//! ```

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::region::Region;
use diagnet_sim::world::World;

fn main() {
    let world = World::new();
    let dataset =
        Dataset::generate(&world, &DatasetConfig::standard(&world, 80, 5)).expect("generate");
    let split = dataset.split(0.8, 5);
    let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 5).expect("training");
    println!(
        "model trained against {} landmarks: {:?}",
        model.train_schema.n_landmarks(),
        model
            .train_schema
            .landmarks()
            .iter()
            .map(|r| r.code())
            .collect::<Vec<_>>()
    );

    // Three fleet configurations the same model must serve:
    let full = FeatureSchema::full();
    let drained = FeatureSchema::new(vec![
        // Half the fleet drained for maintenance.
        Region::Beau,
        Region::Amst,
        Region::Lond,
        Region::Toky,
    ]);
    let expanded = full.clone(); // EAST/GRAV/SEAT just came online.

    for (name, schema) in [
        (
            "full fleet (10 landmarks, 3 never seen in training)",
            &expanded,
        ),
        ("drained fleet (4 landmarks)", &drained),
    ] {
        // Project the test measurements into this fleet's view.
        let scored: Vec<(Vec<f32>, usize)> = split
            .test
            .samples
            .iter()
            .filter_map(|s| {
                let cause = s.label.cause()?;
                // A cause at a drained landmark cannot be named; skip those
                // samples for the drained-fleet metric.
                let truth = schema.index_of(cause)?;
                let features = schema.project_from(&full, &s.features, 0.0);
                Some((model.rank_causes(&features, schema).scores, truth))
            })
            .collect();
        let r1 = diagnet_eval::recall_at_k(&scored, 1);
        let r5 = diagnet_eval::recall_at_k(&scored, 5);
        println!(
            "\n{name}\n  {} diagnosable faulty samples, {} candidate causes",
            scored.len(),
            schema.n_features()
        );
        println!(
            "  Recall@1 = {:.1}%  Recall@5 = {:.1}%",
            r1 * 100.0,
            r5 * 100.0
        );
    }
    println!("\nno retraining happened between the configurations — the same model served both.");
}
