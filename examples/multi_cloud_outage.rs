//! A multi-cloud outage walk-through: two simultaneous incidents hit
//! different providers, clients around the world report problems, and
//! DiagNet disentangles which incident affects whom.
//!
//! ```sh
//! cargo run --release -p diagnet-examples --example multi_cloud_outage
//! ```

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::fault::{Fault, FaultFamily};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::region::{Region, ALL_REGIONS};
use diagnet_sim::scenario::Scenario;
use diagnet_sim::world::World;

fn main() {
    let world = World::new();
    let full = FeatureSchema::full();

    // Train on historical data (no outage yet).
    println!("training on two weeks of historical probes…");
    let dataset =
        Dataset::generate(&world, &DatasetConfig::standard(&world, 80, 21)).expect("generate");
    let split = dataset.split(0.8, 21);
    let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 21).expect("training");

    // The outage: packet loss inside GRAV (a landmark the model has never
    // seen measurements from!) plus bandwidth shaping in SING.
    let outage = Scenario::with_faults(
        vec![
            Fault::new(FaultFamily::PacketLoss, Region::Grav),
            Fault::new(FaultFamily::BandwidthShaping, Region::Sing),
        ],
        20.0, // evening UTC: peak congestion on top
    );
    println!("\ninjected: {} and {}", outage.faults[0], outage.faults[1]);
    println!("{:-<72}", "");

    // Every client visits the dashboard service; affected ones diagnose.
    let service = world.catalog.by_name("image.cdn").expect("catalog").id;
    let mut affected = 0;
    let mut rankings = Vec::new();
    for (i, &client) in ALL_REGIONS.iter().enumerate() {
        let obs = world.observe(client, service, &outage, 4242 + i as u64);
        if !obs.label.is_faulty() {
            continue;
        }
        affected += 1;
        let ranking = model.rank_causes(&obs.features, &full);
        rankings.push(ranking.clone());
        let top = ranking.top(3);
        println!(
            "client {:>4}: PLT {:>5.2}s  diagnosis: {:<16} (then {}, {})",
            client.code(),
            obs.plt_s,
            full.feature(top[0]).name(),
            full.feature(top[1]).name(),
            full.feature(top[2]).name(),
        );
        println!(
            "             ground truth: {:<16} w_unknown = {:.2}",
            obs.label.cause().map(|c| c.name()).unwrap_or_default(),
            ranking.w_unknown
        );
    }
    println!("{:-<72}", "");
    println!(
        "{affected} of {} client regions saw degraded QoE on `image.cdn`",
        ALL_REGIONS.len()
    );
    println!("(clients near SING suffer the shaping; clients served by the GRAV CDN node suffer the loss)");

    // Fuse the individual diagnoses into a NOC-style incident map.
    let map = IncidentMap::build(&rankings, &full);
    println!(
        "
incident map (evidence fused across {} affected clients):",
        map.n_clients
    );
    for (region, evidence) in map.hotspots().into_iter().take(3) {
        println!(
            "  {:>4}: mass {:.2}, {} top votes, dominant family {}",
            region.code(),
            evidence.mass,
            evidence.top_votes,
            evidence.family.name()
        );
    }
}
