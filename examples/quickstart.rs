//! Quickstart: simulate the testbed, train DiagNet, diagnose a failure.
//!
//! ```sh
//! cargo run --release -p diagnet-examples --example quickstart
//! ```

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;

fn main() {
    // 1. A simulated multi-cloud deployment: 10 regions, 10 services,
    //    1 landmark per region (stands in for the paper's real testbed).
    let world = World::new();
    println!("deployment: 10 regions, {} services", world.catalog.len());

    // 2. Generate labelled measurements under a fault-injection schedule
    //    and split them with the paper's hidden-landmark protocol (EAST,
    //    GRAV and SEAT are never seen during training).
    let config = DatasetConfig::standard(&world, 80, 7);
    let dataset = Dataset::generate(&world, &config).expect("generate");
    println!(
        "dataset: {} samples ({} nominal, {} faulty)",
        dataset.len(),
        dataset.n_nominal(),
        dataset.n_faulty()
    );
    let split = dataset.split(0.8, 7);

    // 3. Train the DiagNet pipeline (LandPooling + MLP coarse classifier,
    //    gradient attention, score weighting, ensemble with a random
    //    forest). `fast()` keeps this example snappy; use
    //    `DiagNetConfig::paper()` for the full Table I configuration.
    let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 7).expect("training");
    println!(
        "trained general model: {} parameters, {} epochs",
        model.num_params(),
        model.history.epochs_run
    );

    // 4. Diagnose a failing test sample. At inference all ten landmarks
    //    are available — three more than the model was trained with.
    let full = FeatureSchema::full();
    let failing = split
        .test
        .samples
        .iter()
        .find(|s| s.label.is_faulty())
        .expect("a faulty sample");
    let ranking = model.rank_causes(&failing.features, &full);

    println!(
        "\nclient in {} visiting `{}` reported degraded QoE",
        failing.client_region,
        world.catalog.get(failing.service).name
    );
    println!("P(cause at an unknown landmark) = {:.2}", ranking.w_unknown);
    println!("top-5 probable root causes:");
    for (rank, idx) in ranking.top(5).into_iter().enumerate() {
        println!(
            "  {}. {:<16} score {:.3}",
            rank + 1,
            full.feature(idx).name(),
            ranking.scores[idx]
        );
    }
    println!(
        "ground truth: {}",
        failing.label.cause().map(|c| c.name()).unwrap_or_default()
    );
}
