//! Onboarding a new online service (paper §IV-F / Fig. 9): the general
//! model's convolution is reused; only the final layers are retrained on
//! the new service's samples, converging in a handful of epochs.
//!
//! ```sh
//! cargo run --release -p diagnet-examples --example service_onboarding
//! ```

use diagnet::prelude::*;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::time::Instant;

fn main() {
    let world = World::new();
    let dataset =
        Dataset::generate(&world, &DatasetConfig::standard(&world, 80, 13)).expect("generate");
    let split = dataset.split(0.8, 13);

    // The provider initially monitors eight services.
    let general_ids = world.catalog.general_ids();
    let general_data = split.train.filter_services(&general_ids);
    let t0 = Instant::now();
    let general = DiagNet::train(&DiagNetConfig::fast(), &general_data, 13).expect("training");
    let general_secs = t0.elapsed().as_secs_f64();
    println!(
        "general model: {} services, {} epochs, {:.1}s, {} trainable parameters",
        general_ids.len(),
        general.history.epochs_run,
        general_secs,
        general.num_trainable_params()
    );

    // Two new services sign up. Onboard each with a specialised model.
    let full = FeatureSchema::full();
    for &sid in &world.catalog.held_out_ids() {
        let name = world.catalog.get(sid).name;
        let service_train = split.train.filter_service(sid);
        let t1 = Instant::now();
        let special = general
            .specialize(&service_train, 13)
            .expect("specialisation");
        let secs = t1.elapsed().as_secs_f64();
        println!(
            "\nonboarded `{name}`: {} epochs, {:.1}s, {} of {} parameters retrained",
            special.history.epochs_run,
            secs,
            special.num_trainable_params(),
            special.num_params()
        );

        // Compare diagnosis quality on this service's faulty test samples.
        let scored = |model: &DiagNet| {
            let pairs: Vec<(Vec<f32>, usize)> = split
                .test
                .samples
                .iter()
                .filter(|s| s.service == sid && s.label.is_faulty())
                .map(|s| {
                    (
                        model.rank_causes(&s.features, &full).scores,
                        full.index_of(s.label.cause().unwrap()).unwrap(),
                    )
                })
                .collect();
            (diagnet_eval::recall_at_k(&pairs, 5), pairs.len())
        };
        let (general_r5, n) = scored(&general);
        let (special_r5, _) = scored(&special);
        println!(
            "  Recall@5 on {n} faulty samples: general {:.1}% → specialised {:.1}%",
            general_r5 * 100.0,
            special_r5 * 100.0
        );
    }
    println!("\nthe convolution kernel was trained once and shared — onboarding cost a few epochs per service.");
}
