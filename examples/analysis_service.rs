//! The full platform loop of the paper's Fig. 1: clients submit probes to
//! the analysis service, the service trains and publishes models (in the
//! background), and failing clients get ranked diagnoses back.
//!
//! ```sh
//! cargo run --release -p diagnet-examples --example analysis_service
//! ```

use diagnet::prelude::*;
use diagnet_platform::{AnalysisService, ServiceConfig};
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::fault::{Fault, FaultFamily};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::region::Region;
use diagnet_sim::scenario::Scenario;
use diagnet_sim::world::World;

fn main() {
    let world = World::new();
    let schema = FeatureSchema::full();

    // Stand up the analysis service with a background retraining worker
    // that fires every 5 000 submissions.
    let service = AnalysisService::new(
        ServiceConfig {
            backend: BackendKind::DiagNet,
            model: DiagNetConfig::fast(),
            buffer_capacity: 200_000,
            general_services: world.catalog.general_ids(),
            min_service_samples: 50,
            auto_retrain_every: Some(5_000),
            seed: 7,
            ..ServiceConfig::default()
        },
        schema.clone(),
    );

    // Clients around the world browse for a while, submitting probes.
    println!("clients submitting probes…");
    let data =
        Dataset::generate(&world, &DatasetConfig::standard(&world, 60, 7)).expect("generate");
    for s in data.samples {
        service.submit(s);
    }
    println!(
        "buffered {} samples; waiting for the background generation…",
        service.buffered_samples()
    );
    let report = service
        .wait_background_report()
        .expect("worker running")
        .expect("training ok");
    println!(
        "published model generation v{} in {:.1}s ({} samples, {} faulty, {} specialised services)",
        report.version,
        report.duration_secs,
        report.n_samples,
        report.n_faulty,
        report.specialized.len()
    );
    println!("service health: {}", service.health());

    // An incident strikes: packet loss near SING. A client in Tokyo using
    // image.cdn (served from SING) experiences a slow page and asks for a
    // diagnosis.
    let incident = Scenario::with_faults(
        vec![Fault::new(FaultFamily::PacketLoss, Region::Sing)],
        21.0,
    );
    let sid = world.catalog.by_name("image.cdn").unwrap().id;
    let failing = world.observe(Region::Toky, sid, &incident, 991);
    println!(
        "\nclient TOKY on `image.cdn`: PLT {:.2}s (label: {:?})",
        failing.plt_s,
        failing.label.cause().map(|c| c.name())
    );
    let diagnosis = service
        .diagnose(&failing.features, sid, &schema)
        .expect("model ready");
    println!("diagnosis (model v{}):", diagnosis.model_version);
    for (rank, idx) in diagnosis.ranking.top(3).into_iter().enumerate() {
        println!(
            "  {}. {:<16} score {:.3}",
            rank + 1,
            schema.feature(idx).name(),
            diagnosis.ranking.scores[idx]
        );
    }

    // More probes arrive; a second generation supersedes the first while
    // earlier diagnoses keep their model snapshot. (The worker fires every
    // 5 000 submissions: 6 000 initial + 4 000 here crosses 10 000.)
    let more =
        Dataset::generate(&world, &DatasetConfig::standard(&world, 40, 8)).expect("generate");
    for s in more.samples {
        service.submit(s);
    }
    if let Some(Ok(report)) = service.wait_background_report() {
        println!(
            "\nbackground rollout: now at model generation v{}",
            report.version
        );
    }

    // Operator view: dump the live metrics registry (submissions,
    // diagnoses, retrain generations, per-stage pipeline spans).
    println!("\n--- live metrics ---");
    print!("{}", service.metrics_snapshot().render_text());
}
