//! Ranked root-cause predictions.

use serde::{Deserialize, Serialize};

/// The output of a root-cause analysis: a score per candidate cause
/// (aligned with the evaluation schema's feature order), plus diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseRanking {
    /// Normalised score per candidate cause.
    pub scores: Vec<f32>,
    /// Coarse fault-family probabilities (7 classes, `Nominal` first).
    /// Empty for baseline models without a coarse stage.
    pub coarse: Vec<f32>,
    /// DiagNet's predicted probability that the cause is at an unknown
    /// landmark (`w_U` of §III-F); 0 for baselines.
    pub w_unknown: f32,
}

impl CauseRanking {
    /// A ranking from bare scores (baselines).
    pub fn from_scores(scores: Vec<f32>) -> Self {
        CauseRanking {
            scores,
            coarse: Vec::new(),
            w_unknown: 0.0,
        }
    }

    /// Indices of the top-k causes, best first.
    pub fn top(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        // `a`/`b` come from `0..scores.len()`, so `get` always hits;
        // comparing through `Option` keeps the comparator panic-free.
        idx.sort_by(|&a, &b| {
            self.scores
                .get(b)
                .partial_cmp(&self.scores.get(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// Rank (0-based) of a cause index: the number of strictly better
    /// candidates.
    pub fn rank_of(&self, cause: usize) -> usize {
        diagnet_eval::ranking::rank_of_truth(&self.scores, cause)
    }

    /// The single most probable cause (0 for an empty ranking — rankings
    /// produced by any backend are schema-width, hence non-empty).
    pub fn best(&self) -> usize {
        self.top(1).first().copied().unwrap_or(0)
    }

    /// True when every score (and the coarse probabilities plus
    /// `w_unknown`) is finite. The serving layer refuses to return a
    /// ranking that fails this check, and the publish gate refuses to
    /// publish a model that produces one.
    pub fn all_finite(&self) -> bool {
        self.scores.iter().all(|v| v.is_finite())
            && self.coarse.iter().all(|v| v.is_finite())
            && self.w_unknown.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_orders_by_score() {
        let r = CauseRanking::from_scores(vec![0.1, 0.5, 0.4]);
        assert_eq!(r.top(3), vec![1, 2, 0]);
        assert_eq!(r.top(1), vec![1]);
        assert_eq!(r.best(), 1);
    }

    #[test]
    fn rank_of_matches_eval() {
        let r = CauseRanking::from_scores(vec![0.1, 0.5, 0.4]);
        assert_eq!(r.rank_of(1), 0);
        assert_eq!(r.rank_of(2), 1);
        assert_eq!(r.rank_of(0), 2);
    }

    #[test]
    fn top_k_clamps() {
        let r = CauseRanking::from_scores(vec![0.6, 0.4]);
        assert_eq!(r.top(10).len(), 2);
    }
}
