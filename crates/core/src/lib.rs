//! # diagnet — convolutional Internet-scale root-cause analysis
//!
//! A from-scratch Rust reproduction of **DiagNet** (Bonniot, Neumann,
//! Taïani — *Towards Internet-Scale Convolutional Root-Cause Analysis with
//! DiagNet*, IPDPS 2021). DiagNet diagnoses end-user QoE problems of
//! Internet services from measurements a browser can take against
//! opportunistically deployed *landmark* servers, with three properties
//! classical approaches lack:
//!
//! 1. **Network & service agnosticism** — no topology knowledge is
//!    required; the model learns hidden dependencies from data.
//! 2. **Location agnosticism** — one model serves every client.
//! 3. **Root-cause extensibility** — landmarks may come and go; the model
//!    consumes a *variable* number of landmarks without retraining and can
//!    rank root causes at landmarks it never saw during training.
//!
//! ## Architecture (paper Fig. 2)
//!
//! * a [`LandPooling`](diagnet_nn::layer::LandPool) layer applies a shared
//!   non-overlapping convolution to each landmark's metric block and
//!   flattens the landmark dimension with a bank of global pooling
//!   operations (§III-C);
//! * fully-connected layers produce a **coarse prediction** over the seven
//!   fault families (§III-D);
//! * a gradient-based **attention mechanism** maps the coarse prediction
//!   back to individual input features — the candidate root causes
//!   (§III-E, [`attention`]);
//! * **multi-label score weighting** (Algorithm 1) boosts causes of the
//!   predicted family ([`weighting`]);
//! * **ensemble model averaging** (§III-F) blends the attention scores
//!   with an auxiliary random forest specialised in known causes,
//!   weighted by the predicted probability `w_U` that the cause lies at an
//!   unknown landmark ([`ensemble`]).
//!
//! Beyond the paper's pipeline: [`backend`] abstracts every model behind
//! one servable [`Backend`](backend::Backend) trait (training, batched
//! ranking, extension, versioned persistence via [`backend_persist`]),
//! [`persist`] serialises whole pipelines, [`perturbation`] provides the
//! black-box occlusion-attention alternative §III-E alludes to, [`explain`]
//! renders ticket-style diagnoses, [`aggregate`] fuses many clients'
//! rankings into an incident map, and [`instrument`] decorates any backend
//! with serving metrics (see `OBSERVABILITY.md` at the repo root).
//!
//! ## Quick start
//!
//! ```no_run
//! use diagnet::prelude::*;
//! use diagnet_sim::{Dataset, DatasetConfig, FeatureSchema, World};
//!
//! let world = World::new();
//! let data = Dataset::generate(&world, &DatasetConfig::small(&world, 7)).unwrap();
//! let split = data.split(0.8, 7);
//! let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 7).unwrap();
//! let test_schema = FeatureSchema::full();
//! let sample = &split.test.samples[0];
//! let ranking = model.rank_causes(&sample.features, &test_schema);
//! println!("most probable cause: {}", test_schema.feature(ranking.top(1)[0]).name());
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod attention;
pub mod backend;
pub mod backend_persist;
pub mod baselines;
pub mod config;
pub mod ensemble;
pub mod explain;
pub mod instrument;
pub mod integrity;
pub mod model;
pub mod normalize;
pub mod persist;
pub mod perturbation;
pub mod ranking;
pub mod streaming;
pub mod transfer;
pub mod weighting;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aggregate::IncidentMap;
    pub use crate::backend::{
        Backend, BackendConfig, BackendInfo, BackendKind, ExtensionInfo, ALL_BACKENDS,
    };
    pub use crate::baselines::{CauseRanker, ForestRanker, NaiveBayesRanker};
    pub use crate::config::DiagNetConfig;
    pub use crate::explain::Explanation;
    pub use crate::instrument::InstrumentedBackend;
    pub use crate::model::DiagNet;
    pub use crate::normalize::Normalizer;
    pub use crate::ranking::CauseRanking;
    pub use crate::streaming::{collect_source, StreamOptions};
    pub use crate::transfer::SpecializedModels;
}

pub use prelude::*;
