//! General → specialised transfer (paper §IV-F).
//!
//! DiagNet assumes the LandPooling weights "are shared between services,
//! as they extract global network features", while "the final layers
//! capture the behavior of each service". A general model is trained once
//! on eight services; each additional (or existing) service then gets its
//! own specialised model by retraining only the final layers — converging
//! in a handful of epochs instead of ~20 (Fig. 9).

use crate::model::DiagNet;
use diagnet_nn::error::NnError;
use diagnet_nn::train::TrainHistory;
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::Dataset;
use diagnet_sim::service::ServiceId;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// A general model plus one specialised model per service.
#[derive(Debug, Clone)]
pub struct SpecializedModels {
    /// The shared general model.
    pub general: DiagNet,
    /// Specialised models, keyed by service.
    pub models: BTreeMap<ServiceId, DiagNet>,
}

impl SpecializedModels {
    /// Specialise `general` for each service in `services`, training each
    /// on its own samples from `train_data`.
    ///
    /// Specialisations share nothing but the (read-only) general model, so
    /// they train in parallel; each derives its seed from its position in
    /// `services`, keeping every per-service model bit-identical to the
    /// former sequential schedule.
    pub fn train(
        general: DiagNet,
        train_data: &Dataset,
        services: &[ServiceId],
        seed: u64,
    ) -> Result<Self, NnError> {
        let models = services
            .par_iter()
            .enumerate()
            .map(|(i, &sid)| {
                let service_data = train_data.filter_service(sid);
                if service_data.is_empty() {
                    return Err(NnError::InvalidTrainingData(format!(
                        "no training samples for service {}",
                        sid.0
                    )));
                }
                let model =
                    general.specialize(&service_data, SplitMix64::derive(seed, i as u64))?;
                Ok((sid, model))
            })
            .collect::<Result<BTreeMap<_, _>, NnError>>()?;
        Ok(SpecializedModels { general, models })
    }

    /// The model to use for a given service: its specialised model when
    /// available, the general model otherwise.
    pub fn for_service(&self, sid: ServiceId) -> &DiagNet {
        self.models.get(&sid).unwrap_or(&self.general)
    }

    /// Training histories of all specialised models (for Fig. 9(b)).
    pub fn histories(&self) -> BTreeMap<ServiceId, &TrainHistory> {
        self.models
            .iter()
            .map(|(&sid, m)| (sid, &m.history))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiagNetConfig;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;

    #[test]
    fn specialised_suite_trains_and_dispatches() {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 31)).expect("generate");
        let split = ds.split(0.8, 31);
        // General model on the first eight services only.
        let general_ids = world.catalog.general_ids();
        let general_data = split.train.filter_services(&general_ids);
        let general = DiagNet::train(&DiagNetConfig::fast(), &general_data, 31).unwrap();
        // Specialise for two held-out services.
        let held_out = world.catalog.held_out_ids();
        let suite = SpecializedModels::train(general, &split.train, &held_out, 31).unwrap();
        assert_eq!(suite.models.len(), 2);
        for &sid in &held_out {
            let m = suite.for_service(sid);
            assert!(
                m.num_trainable_params() < m.num_params(),
                "specialised model is frozen"
            );
        }
        // A service with no specialised model falls back to the general.
        let other = general_ids[0];
        assert!(std::ptr::eq(suite.for_service(other), &suite.general));
        // Histories exposed for Fig. 9, keyed identically to the models,
        // in ascending service order (the ordered map is what keeps
        // transfer artefacts byte-stable across runs).
        let history_keys: Vec<ServiceId> = suite.histories().keys().copied().collect();
        let model_keys: Vec<ServiceId> = suite.models.keys().copied().collect();
        assert_eq!(history_keys, model_keys);
        let mut sorted = model_keys.clone();
        sorted.sort();
        assert_eq!(model_keys, sorted, "models must iterate in service order");
    }

    #[test]
    fn unknown_service_errors() {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 32)).expect("generate");
        let split = ds.split(0.8, 32);
        let general = DiagNet::train(&DiagNetConfig::fast(), &split.train, 32).unwrap();
        let bogus = ServiceId(999);
        assert!(SpecializedModels::train(general, &split.train, &[bogus], 1).is_err());
    }
}
