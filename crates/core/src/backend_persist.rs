//! Versioned persistence for any [`Backend`]: a tagged JSON envelope with a
//! format version, cross-checked kind tag, and the model payload.
//!
//! Files written before the envelope existed (bare [`DiagNet`] JSON, as
//! produced by [`DiagNet::save`]) are still accepted by the loaders — the
//! legacy shape is tried whenever the envelope parse fails.

use crate::backend::{Backend, BackendEnvelope};
use crate::integrity;
use crate::model::DiagNet;
use diagnet_nn::NnError;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serialise a backend (wrapped in its envelope) as JSON to a writer.
pub fn save_backend<W: Write>(backend: &dyn Backend, writer: W) -> Result<(), NnError> {
    serde_json::to_writer(writer, &backend.to_envelope())
        .map_err(|e| NnError::Serialization(e.to_string()))
}

/// Deserialise a backend from JSON: envelope first, then the legacy bare
/// [`DiagNet`] shape. Either way the decoded model must pass its
/// [`Backend::validate`] health check — a file that parses but holds
/// non-finite weights (bit rot, a partially overwritten artefact, a
/// diverged training run saved by an older build) is refused with a typed
/// error instead of being served.
pub fn load_backend<R: Read>(reader: R) -> Result<Box<dyn Backend>, NnError> {
    let mut buf = Vec::new();
    let mut reader = reader;
    reader
        .read_to_end(&mut buf)
        .map_err(|e| NnError::Serialization(e.to_string()))?;
    let backend = match serde_json::from_slice::<BackendEnvelope>(&buf) {
        Ok(envelope) => envelope.into_backend()?,
        Err(envelope_err) => match serde_json::from_slice::<DiagNet>(&buf) {
            Ok(model) => Box::new(model) as Box<dyn Backend>,
            Err(_) => return Err(NnError::Serialization(envelope_err.to_string())),
        },
    };
    backend
        .validate()
        .map_err(|e| NnError::Serialization(format!("loaded model failed validation: {e}")))?;
    Ok(backend)
}

/// Serialise a backend to its envelope bytes plus their
/// [`integrity::artefact_checksum`] — the unit the durable model store
/// writes (artefact file) and records (manifest row).
pub fn encode_backend(backend: &dyn Backend) -> Result<(Vec<u8>, u64), NnError> {
    let mut buf = Vec::new();
    save_backend(backend, &mut buf)?;
    let checksum = integrity::artefact_checksum(&buf);
    Ok((buf, checksum))
}

/// Decode envelope bytes after verifying them against `expected_checksum`.
/// A mismatch is reported *before* any parsing happens — torn or bit-rotted
/// artefacts fail with a checksum message, not a JSON syntax error.
pub fn decode_backend_verified(
    bytes: &[u8],
    expected_checksum: u64,
) -> Result<Box<dyn Backend>, NnError> {
    integrity::verify_checksum(bytes, expected_checksum).map_err(NnError::Serialization)?;
    load_backend(bytes)
}

/// [`save_backend`] to a filesystem path.
pub fn save_backend_to_path<P: AsRef<Path>>(backend: &dyn Backend, path: P) -> Result<(), NnError> {
    let file = File::create(path).map_err(|e| NnError::Serialization(e.to_string()))?;
    save_backend(backend, BufWriter::new(file))
}

/// [`load_backend`] from a filesystem path.
pub fn load_backend_from_path<P: AsRef<Path>>(path: P) -> Result<Box<dyn Backend>, NnError> {
    let file = File::open(path).map_err(|e| NnError::Serialization(e.to_string()))?;
    load_backend(BufReader::new(file))
}
