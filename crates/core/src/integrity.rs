//! Artefact integrity checksums.
//!
//! Model artefacts live on disk between process lifetimes; a torn write,
//! a truncated copy, or bit rot must be detected *before* a model is
//! deserialised and served. The store (platform), the persistence layer
//! ([`crate::backend_persist`]) and `diagnet info` all checksum artefact
//! bytes with the same function so a manifest written by one layer can be
//! verified by another.
//!
//! The checksum is FNV-1a/64 — an *integrity* check against accidental
//! corruption, deliberately not a cryptographic signature (the store
//! directory is operator-owned, same trust domain as the binary). The
//! rendered form is prefixed with the algorithm (`fnv1a64:…`) so a future
//! upgrade can coexist with old manifests.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Checksum `bytes` with FNV-1a/64.
pub fn artefact_checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Render a checksum in its canonical manifest form, e.g.
/// `fnv1a64:00a1b2c3d4e5f607`.
pub fn render_checksum(checksum: u64) -> String {
    format!("fnv1a64:{checksum:016x}")
}

/// Parse the canonical rendering back to the raw value. `None` when the
/// algorithm tag or the hex payload does not match.
pub fn parse_checksum(text: &str) -> Option<u64> {
    let hex = text.strip_prefix("fnv1a64:")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Verify `bytes` against an expected checksum. `Err` carries both values
/// in canonical form so the message can go straight to an operator.
pub fn verify_checksum(bytes: &[u8], expected: u64) -> Result<(), String> {
    let actual = artefact_checksum(bytes);
    if actual == expected {
        Ok(())
    } else {
        Err(format!(
            "checksum mismatch: expected {}, file is {}",
            render_checksum(expected),
            render_checksum(actual)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a/64 test vectors.
        assert_eq!(artefact_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(artefact_checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(artefact_checksum(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn render_parse_round_trip() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            let text = render_checksum(v);
            assert!(text.starts_with("fnv1a64:"));
            assert_eq!(parse_checksum(&text), Some(v));
        }
        assert_eq!(parse_checksum("md5:abc"), None);
        assert_eq!(parse_checksum("fnv1a64:xyz"), None);
        assert_eq!(parse_checksum("fnv1a64:0"), None, "fixed-width hex only");
    }

    #[test]
    fn verification_detects_single_bit_flips() {
        let original = b"generation payload".to_vec();
        let sum = artefact_checksum(&original);
        assert!(verify_checksum(&original, sum).is_ok());
        let mut torn = original.clone();
        torn[3] ^= 0x01;
        let err = verify_checksum(&torn, sum).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        let mut truncated = original;
        truncated.pop();
        assert!(verify_checksum(&truncated, sum).is_err());
    }
}
