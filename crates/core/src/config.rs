//! DiagNet hyper-parameters (paper Table I).

use diagnet_forest::ForestConfig;
use diagnet_nn::pool::PoolOp;
use serde::{Deserialize, Serialize};

/// Which optimiser trains the coarse classifier. The paper uses SGD with
/// Nesterov momentum (Table I); Adam is provided for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// SGD + Nesterov momentum + time-based decay (the paper's choice).
    SgdNesterov,
    /// Adam with default betas, using `learning_rate` as α.
    Adam,
}

/// Hyper-parameters of the full DiagNet pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiagNetConfig {
    /// Number of convolution filters `f` (paper: 24).
    pub filters: usize,
    /// The Ω global-pooling bank (paper: min, max, avg, var, p10…p90).
    pub pool_ops: Vec<PoolOp>,
    /// Hidden fully-connected layer widths (paper: 512, 128).
    pub hidden: Vec<usize>,
    /// SGD learning rate (paper: 0.05).
    pub learning_rate: f32,
    /// Nesterov momentum.
    pub momentum: f32,
    /// Time-based learning-rate decay (paper: 0.001).
    pub decay: f32,
    /// Maximum training epochs for the general model.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: Option<usize>,
    /// Fraction of the training set held out for validation.
    pub validation_fraction: f32,
    /// Auxiliary random-forest configuration (paper: Gini, 50 trees,
    /// depth 10).
    pub forest: ForestConfig,
    /// Weight the coarse loss by inverse class frequency (counters the
    /// nominal-heavy label distribution; see `balanced_class_weights`).
    pub balance_classes: bool,
    /// Optimiser choice (paper: SGD + Nesterov).
    pub optimizer: OptimizerKind,
    /// Variance-stabilise (log-transform) path metrics before z-scoring.
    /// Our reproduction's default; the `false` ablation z-scores raw
    /// values.
    pub stabilize_features: bool,
    /// Learning-rate multiplier applied when specialising (fine-tuning the
    /// final layers on a small per-service dataset is gentler than
    /// training from scratch; the paper does not specify its value).
    pub specialize_lr_factor: f32,
}

impl DiagNetConfig {
    /// The paper's Table I configuration.
    pub fn paper() -> Self {
        DiagNetConfig {
            filters: 24,
            pool_ops: PoolOp::standard_bank(),
            hidden: vec![512, 128],
            learning_rate: 0.05,
            momentum: 0.9,
            decay: 0.001,
            epochs: 40,
            batch_size: 128,
            patience: Some(5),
            validation_fraction: 0.15,
            forest: ForestConfig::default(),
            balance_classes: true,
            optimizer: OptimizerKind::SgdNesterov,
            stabilize_features: true,
            specialize_lr_factor: 0.25,
        }
    }

    /// A reduced configuration for unit tests and examples: same
    /// architecture shape, far fewer parameters and epochs.
    pub fn fast() -> Self {
        DiagNetConfig {
            filters: 8,
            pool_ops: PoolOp::small_bank(),
            hidden: vec![48, 24],
            learning_rate: 0.05,
            momentum: 0.9,
            decay: 0.001,
            epochs: 12,
            batch_size: 64,
            patience: Some(3),
            validation_fraction: 0.15,
            forest: ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
            balance_classes: true,
            optimizer: OptimizerKind::SgdNesterov,
            stabilize_features: true,
            specialize_lr_factor: 0.25,
        }
    }

    /// Width of the vector entering the first fully-connected layer:
    /// `|Ω|·f` pooled features plus the local features.
    pub fn fc_input_width(&self, n_local: usize) -> usize {
        self.pool_ops.len() * self.filters + n_local
    }
}

impl Default for DiagNetConfig {
    fn default() -> Self {
        DiagNetConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_i() {
        let c = DiagNetConfig::paper();
        assert_eq!(c.filters, 24);
        assert_eq!(c.pool_ops.len(), 13);
        assert_eq!(c.hidden, vec![512, 128]);
        assert_eq!(c.learning_rate, 0.05);
        assert_eq!(c.decay, 0.001);
        assert_eq!(c.forest.n_trees, 50);
        assert_eq!(c.forest.max_depth, 10);
        // FC input: 24 filters × 13 ops + 5 local = 317.
        assert_eq!(c.fc_input_width(5), 317);
    }

    #[test]
    fn fast_config_is_smaller() {
        let f = DiagNetConfig::fast();
        let p = DiagNetConfig::paper();
        assert!(f.filters < p.filters);
        assert!(f.fc_input_width(5) < p.fc_input_width(5));
    }
}
