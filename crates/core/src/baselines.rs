//! A common scoring interface over DiagNet and the two comparison baselines
//! (§IV-B), so evaluation code can treat all three uniformly.
//!
//! Since the backend refactor this module is a thin compatibility layer:
//! the model structs live in [`backend`](crate::backend) (as
//! [`ForestBackend`](crate::backend::ForestBackend) /
//! [`BayesBackend`](crate::backend::BayesBackend), re-exported here under
//! their historical names), and [`CauseRanker`] is blanket-implemented for
//! every [`Backend`](crate::backend::Backend), so anything servable by the
//! platform automatically works with the older scoring call sites.

use crate::backend::Backend;
use crate::ranking::CauseRanking;
use diagnet_sim::metrics::FeatureSchema;

/// The RANDOM FOREST baseline of §IV-B(a), under its pre-backend name.
pub type ForestRanker = crate::backend::ForestBackend;

/// The NAIVE BAYES baseline of §IV-B(b), under its pre-backend name.
pub type NaiveBayesRanker = crate::backend::BayesBackend;

/// Anything that can rank the candidate root causes of a sample.
///
/// Blanket-implemented for every [`Backend`]; implement `Backend` for new
/// models rather than this trait.
pub trait CauseRanker: Send + Sync {
    /// Model name as it appears in the paper's figures.
    fn name(&self) -> &'static str;
    /// Rank all candidate causes of `schema` for one raw feature vector.
    fn rank(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking;
    /// Batched ranking.
    fn rank_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking>
    where
        Self: Sized,
    {
        rows.iter().map(|r| self.rank(r, schema)).collect()
    }
}

impl<T: Backend> CauseRanker for T {
    fn name(&self) -> &'static str {
        self.describe().name
    }

    fn rank(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        Backend::rank_causes(self, features, schema)
    }

    fn rank_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        Backend::rank_causes_batch(self, rows, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_bayes::NaiveBayesConfig;
    use diagnet_forest::ForestConfig;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;

    fn data() -> (Dataset, Dataset) {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 41)).expect("generate");
        let split = ds.split(0.8, 41);
        (split.train, split.test)
    }

    #[test]
    fn forest_ranker_scores_full_space() {
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = ForestRanker::train(&ForestConfig::default(), &train, &schema, 1);
        let full = FeatureSchema::full();
        let r = ranker.rank(&test.samples[0].features, &full);
        assert_eq!(r.scores.len(), 55);
        assert!((r.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert_eq!(CauseRanker::name(&ranker), "Random Forest");
    }

    #[test]
    fn bayes_ranker_scores_full_space() {
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = NaiveBayesRanker::train(&NaiveBayesConfig::default(), &train, &schema);
        let full = FeatureSchema::full();
        let r = ranker.rank(&test.samples[0].features, &full);
        assert_eq!(r.scores.len(), 55);
        assert!((r.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert!(r.scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn forest_recalls_known_causes_well() {
        // The paper's headline for the RF baseline: near-ideal on faults at
        // KNOWN landmarks.
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = ForestRanker::train(&ForestConfig::default(), &train, &schema, 2);
        let full = FeatureSchema::full();
        let mut samples = Vec::new();
        for s in test.samples.iter() {
            if let Some(cause) = s.label.cause() {
                if s.label.is_near_hidden_landmark() == Some(false) {
                    let r = ranker.rank(&s.features, &full);
                    samples.push((r.scores, full.index_of(cause).unwrap()));
                }
            }
        }
        assert!(
            samples.len() > 20,
            "need known-landmark faulty samples, got {}",
            samples.len()
        );
        let recall5 = diagnet_eval::recall_at_k(&samples, 5);
        assert!(recall5 > 0.6, "RF Recall@5 on known causes = {recall5}");
    }

    #[test]
    fn rank_batch_matches_single() {
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = ForestRanker::train(&ForestConfig::default(), &train, &schema, 3);
        let full = FeatureSchema::full();
        let rows: Vec<Vec<f32>> = test
            .samples
            .iter()
            .take(5)
            .map(|s| s.features.clone())
            .collect();
        let batch = ranker.rank_batch(&rows, &full);
        for (row, b) in rows.iter().zip(&batch) {
            assert_eq!(&ranker.rank(row, &full), b);
        }
    }
}
