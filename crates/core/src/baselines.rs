//! A common interface over DiagNet and the two comparison baselines
//! (§IV-B), so the evaluation harness can treat all three uniformly.

use crate::model::DiagNet;
use crate::ranking::CauseRanking;
use diagnet_bayes::{ExtensibleNaiveBayes, NaiveBayesConfig};
use diagnet_forest::{ExtensibleForest, ForestConfig};
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::Dataset;
use diagnet_sim::metrics::FeatureSchema;
use rayon::prelude::*;

/// Anything that can rank the candidate root causes of a sample.
pub trait CauseRanker: Send + Sync {
    /// Model name as it appears in the paper's figures.
    fn name(&self) -> &'static str;
    /// Rank all candidate causes of `schema` for one raw feature vector.
    fn rank(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking;
    /// Batched ranking (parallel by default).
    fn rank_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking>
    where
        Self: Sized,
    {
        rows.par_iter().map(|r| self.rank(r, schema)).collect()
    }
}

impl CauseRanker for DiagNet {
    fn name(&self) -> &'static str {
        "DiagNet"
    }

    fn rank(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        self.rank_causes(features, schema)
    }
}

/// Map full-schema cause scores onto an evaluation schema and renormalise.
fn project_scores(full_scores: &[f32], full: &FeatureSchema, schema: &FeatureSchema) -> Vec<f32> {
    let mut scores: Vec<f32> = (0..schema.n_features())
        .map(|j| full_scores[full.index_of(schema.feature(j)).expect("schema ⊆ full")])
        .collect();
    let sum: f32 = scores.iter().sum();
    if sum > 0.0 {
        for s in &mut scores {
            *s /= sum;
        }
    }
    scores
}

/// The RANDOM FOREST baseline of §IV-B(a): an [`ExtensibleForest`] used
/// directly as the cause ranker.
#[derive(Debug, Clone)]
pub struct ForestRanker {
    /// The underlying extensible forest (over the full cause space).
    pub forest: ExtensibleForest,
}

impl ForestRanker {
    /// Train on `train_data` with the paper's zero-padding protocol:
    /// hidden-landmark features are dropped and re-filled with zeros.
    pub fn train(
        config: &ForestConfig,
        train_data: &Dataset,
        train_schema: &FeatureSchema,
        seed: u64,
    ) -> Self {
        let full = FeatureSchema::full();
        let n_causes = full.n_features();
        let (train_rows, _) = train_data.to_rows(train_schema, 0.0);
        let rows: Vec<Vec<f32>> = train_rows
            .iter()
            .map(|r| full.project_from(train_schema, r, 0.0))
            .collect();
        let labels: Vec<usize> = train_data
            .samples
            .iter()
            .map(|s| match s.label.cause() {
                Some(cause) => full.index_of(cause).expect("cause in full schema"),
                None => n_causes,
            })
            .collect();
        let cfg = ForestConfig {
            seed: SplitMix64::derive(seed, 40),
            ..config.clone()
        };
        ForestRanker {
            forest: ExtensibleForest::fit(&cfg, &rows, &labels, n_causes),
        }
    }
}

impl CauseRanker for ForestRanker {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn rank(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        let full = FeatureSchema::full();
        let input = full.project_from(schema, features, 0.0);
        let full_scores = self.forest.scores(&input);
        CauseRanking::from_scores(project_scores(&full_scores, &full, schema))
    }
}

/// The NAIVE BAYES baseline of §IV-B(b).
#[derive(Debug, Clone)]
pub struct NaiveBayesRanker {
    /// The underlying extensible KDE naive Bayes (over the full space).
    pub model: ExtensibleNaiveBayes,
}

impl NaiveBayesRanker {
    /// Train with the same protocol as the forest baseline; the visible
    /// feature set tells the model which features carry real measurements.
    pub fn train(
        config: &NaiveBayesConfig,
        train_data: &Dataset,
        train_schema: &FeatureSchema,
    ) -> Self {
        let full = FeatureSchema::full();
        let n_features = full.n_features();
        let (train_rows, _) = train_data.to_rows(train_schema, 0.0);
        let rows: Vec<Vec<f32>> = train_rows
            .iter()
            .map(|r| full.project_from(train_schema, r, 0.0))
            .collect();
        let labels: Vec<usize> = train_data
            .samples
            .iter()
            .map(|s| match s.label.cause() {
                Some(cause) => full.index_of(cause).expect("cause in full schema"),
                None => n_features,
            })
            .collect();
        let kinds: Vec<usize> = (0..n_features)
            .map(|j| full.feature(j).kind_index())
            .collect();
        let visible: Vec<usize> = (0..n_features)
            .filter(|&j| train_schema.index_of(full.feature(j)).is_some())
            .collect();
        NaiveBayesRanker {
            model: ExtensibleNaiveBayes::fit(config, &rows, &labels, n_features, &kinds, &visible),
        }
    }
}

impl CauseRanker for NaiveBayesRanker {
    fn name(&self) -> &'static str {
        "Naive Bayes"
    }

    fn rank(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        let full = FeatureSchema::full();
        let input = full.project_from(schema, features, 0.0);
        let full_scores = self.model.scores(&input);
        CauseRanking::from_scores(project_scores(&full_scores, &full, schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;

    fn data() -> (Dataset, Dataset) {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 41));
        let split = ds.split(0.8, 41);
        (split.train, split.test)
    }

    #[test]
    fn forest_ranker_scores_full_space() {
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = ForestRanker::train(&ForestConfig::default(), &train, &schema, 1);
        let full = FeatureSchema::full();
        let r = ranker.rank(&test.samples[0].features, &full);
        assert_eq!(r.scores.len(), 55);
        assert!((r.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert_eq!(ranker.name(), "Random Forest");
    }

    #[test]
    fn bayes_ranker_scores_full_space() {
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = NaiveBayesRanker::train(&NaiveBayesConfig::default(), &train, &schema);
        let full = FeatureSchema::full();
        let r = ranker.rank(&test.samples[0].features, &full);
        assert_eq!(r.scores.len(), 55);
        assert!((r.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert!(r.scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn forest_recalls_known_causes_well() {
        // The paper's headline for the RF baseline: near-ideal on faults at
        // KNOWN landmarks.
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = ForestRanker::train(&ForestConfig::default(), &train, &schema, 2);
        let full = FeatureSchema::full();
        let mut samples = Vec::new();
        for s in test.samples.iter() {
            if let Some(cause) = s.label.cause() {
                if s.label.is_near_hidden_landmark() == Some(false) {
                    let r = ranker.rank(&s.features, &full);
                    samples.push((r.scores, full.index_of(cause).unwrap()));
                }
            }
        }
        assert!(
            samples.len() > 20,
            "need known-landmark faulty samples, got {}",
            samples.len()
        );
        let recall5 = diagnet_eval::recall_at_k(&samples, 5);
        assert!(recall5 > 0.6, "RF Recall@5 on known causes = {recall5}");
    }

    #[test]
    fn rank_batch_matches_single() {
        let (train, test) = data();
        let schema = FeatureSchema::known();
        let ranker = ForestRanker::train(&ForestConfig::default(), &train, &schema, 3);
        let full = FeatureSchema::full();
        let rows: Vec<Vec<f32>> = test
            .samples
            .iter()
            .take(5)
            .map(|s| s.features.clone())
            .collect();
        let batch = ranker.rank_batch(&rows, &full);
        for (row, b) in rows.iter().zip(&batch) {
            assert_eq!(&ranker.rank(row, &full), b);
        }
    }
}
