//! Ensemble model averaging (paper §III-F).
//!
//! The extensible attention pipeline trades accuracy on *known* causes for
//! the ability to score *unknown* ones. To get both, DiagNet averages the
//! tuned attention γ̂′ with an auxiliary model α̂ (a random forest
//! specialised in known causes), weighted by the probability that the root
//! cause lies at an unknown landmark:
//!
//! ```text
//! final = w_U · γ̂′ + (1 − w_U) · α̂,        w_U = Σ_{j ∈ U} γ̂′_j
//! ```
//!
//! where `U` is the set of features whose landmark was not seen during
//! training. When everything is known (`U = ∅`), the forest dominates;
//! when the attention pushes mass onto unknown landmarks, it takes over.

/// Blend tuned attention scores with auxiliary-model scores.
///
/// Returns `(final_scores, w_unknown)`.
///
/// # Panics
/// Panics if lengths differ or an unknown index is out of range.
pub fn ensemble_average(
    gamma_tuned: &[f32],
    auxiliary: &[f32],
    unknown: &[usize],
) -> (Vec<f32>, f32) {
    assert_eq!(
        gamma_tuned.len(),
        auxiliary.len(),
        "ensemble_average: length mismatch"
    );
    assert!(
        unknown.iter().all(|&j| j < gamma_tuned.len()),
        "ensemble_average: unknown index out of range"
    );
    let w_u: f32 = unknown
        .iter()
        .map(|&j| gamma_tuned[j])
        .sum::<f32>()
        .clamp(0.0, 1.0);
    let scores = gamma_tuned
        .iter()
        .zip(auxiliary)
        .map(|(&g, &a)| w_u * g + (1.0 - w_u) * a)
        .collect();
    (scores, w_u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_unknown_features_means_pure_auxiliary() {
        let gamma = vec![0.5, 0.3, 0.2];
        let aux = vec![0.1, 0.8, 0.1];
        let (out, w) = ensemble_average(&gamma, &aux, &[]);
        assert_eq!(w, 0.0);
        assert_eq!(out, aux);
    }

    #[test]
    fn all_mass_on_unknown_means_pure_attention() {
        let gamma = vec![0.0, 0.0, 1.0];
        let aux = vec![0.5, 0.5, 0.0];
        let (out, w) = ensemble_average(&gamma, &aux, &[2]);
        assert_eq!(w, 1.0);
        assert_eq!(out, gamma);
    }

    #[test]
    fn blend_is_convex_and_normalised() {
        let gamma = vec![0.25, 0.25, 0.25, 0.25];
        let aux = vec![0.7, 0.1, 0.1, 0.1];
        let (out, w) = ensemble_average(&gamma, &aux, &[2, 3]);
        assert!((w - 0.5).abs() < 1e-6);
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for (i, &o) in out.iter().enumerate() {
            assert!((o - (0.5 * gamma[i] + 0.5 * aux[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn unknown_cause_still_ranked_first_when_attention_says_so() {
        // The scenario the mechanism exists for: the forest knows nothing
        // about cause 3 (uniform-ish), attention is confident.
        let gamma = vec![0.05, 0.05, 0.1, 0.8];
        let aux = vec![0.3, 0.3, 0.3, 0.1];
        let (out, w) = ensemble_average(&gamma, &aux, &[3]);
        assert!(w > 0.7);
        let best = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        ensemble_average(&[0.5], &[0.5, 0.5], &[]);
    }
}
