//! Persistence of trained DiagNet pipelines.
//!
//! In the paper's deployment the analysis service trains models centrally
//! and *shares* them with clients (Fig. 1). That requires serialising the
//! entire pipeline — coarse network, normaliser, training schema,
//! auxiliary forest and training history — not just the neural weights.
//! JSON keeps snapshots inspectable; a full paper-sized pipeline is a few
//! megabytes.

use crate::model::DiagNet;
use diagnet_nn::error::NnError;
use std::io::{Read, Write};
use std::path::Path;

impl DiagNet {
    /// Serialise the whole pipeline to a writer as JSON.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), NnError> {
        serde_json::to_writer(writer, self).map_err(|e| NnError::Serialization(e.to_string()))
    }

    /// Deserialise a pipeline from a reader.
    pub fn load<R: Read>(reader: R) -> Result<DiagNet, NnError> {
        serde_json::from_reader(reader).map_err(|e| NnError::Serialization(e.to_string()))
    }

    /// Serialise to a file path.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), NnError> {
        let file =
            std::fs::File::create(path).map_err(|e| NnError::Serialization(e.to_string()))?;
        self.save(std::io::BufWriter::new(file))
    }

    /// Deserialise from a file path.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<DiagNet, NnError> {
        let file = std::fs::File::open(path).map_err(|e| NnError::Serialization(e.to_string()))?;
        DiagNet::load(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiagNetConfig;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::metrics::FeatureSchema;
    use diagnet_sim::world::World;

    fn small_model() -> (DiagNet, Dataset) {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 61);
        cfg.n_scenarios = 15;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 61);
        let mut model_cfg = DiagNetConfig::fast();
        model_cfg.epochs = 3;
        (
            DiagNet::train(&model_cfg, &split.train, 61).unwrap(),
            split.test,
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (model, test) = small_model();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = DiagNet::load(buf.as_slice()).unwrap();
        // Network weights identical.
        assert_eq!(model.network, loaded.network);
        assert_eq!(model.normalizer, loaded.normalizer);
        assert_eq!(model.train_schema, loaded.train_schema);
        // End-to-end predictions identical — including the forest and
        // attention paths.
        let schema = FeatureSchema::full();
        for s in test.samples.iter().take(10) {
            assert_eq!(
                model.rank_causes(&s.features, &schema),
                loaded.rank_causes(&s.features, &schema)
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let (model, _) = small_model();
        let dir = std::env::temp_dir().join("diagnet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.json");
        model.save_to_path(&path).unwrap();
        let loaded = DiagNet::load_from_path(&path).unwrap();
        assert_eq!(model.network, loaded.network);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_input_is_an_error() {
        assert!(DiagNet::load(&b"{}"[..]).is_err());
        assert!(DiagNet::load(&b"garbage"[..]).is_err());
        assert!(DiagNet::load_from_path("/nonexistent/model.json").is_err());
    }
}
