//! Perturbation-based attention — the black-box alternative to gradient
//! attention.
//!
//! §III-E of the paper notes that "there exist techniques applicable to
//! any black-box model" (citing LIME) before opting for white-box
//! gradients. This module implements that alternative so the design
//! choice can be ablated: the importance of feature `j` is estimated by
//! *occluding* it (re-setting it to the training mean, i.e. a z-score of
//! zero) and measuring how much the coarse prediction's confidence in its
//! own argmax class drops:
//!
//! ```text
//! γ_j ∝ max(0, y_φ(x) − y_φ(x with x_j occluded))
//! ```
//!
//! Occlusion needs one forward pass per feature (m = 55 passes per
//! sample) versus a single backward pass for gradient attention — the
//! paper's choice is both cheaper and, as the ablation shows, no less
//! accurate.

use crate::attention::normalize_gradients;
use crate::model::DiagNet;
use diagnet_nn::loss::softmax;
use diagnet_nn::tensor::Matrix;
use diagnet_sim::metrics::FeatureSchema;

/// Occlusion-based attention scores for one raw feature row.
///
/// Returns a normalised importance vector like
/// [`attention_scores`](crate::attention::attention_scores); computes
/// `m + 1` forward passes.
pub fn occlusion_scores(model: &DiagNet, features: &[f32], schema: &FeatureSchema) -> Vec<f32> {
    assert_eq!(
        features.len(),
        schema.n_features(),
        "occlusion_scores: width mismatch"
    );
    let normalized = model.normalizer.apply(schema, features);
    let m = normalized.len();

    // Baseline prediction plus one occluded row per feature, built
    // straight into one (m+1)×m matrix and evaluated as a single batch so
    // the rayon-parallel matmuls amortise.
    let mut data = Vec::with_capacity((m + 1) * m);
    data.extend_from_slice(&normalized);
    for j in 0..m {
        data.extend_from_slice(&normalized);
        data[(j + 1) * m + j] = 0.0; // z-score 0 = "a perfectly average measurement"
    }
    let probs = softmax(&model.network.forward(&Matrix::from_vec(m + 1, m, data)));
    let phi = probs.argmax_row(0);
    let base = probs.get(0, phi);
    let drops: Vec<f32> = (0..m)
        .map(|j| (base - probs.get(j + 1, phi)).max(0.0))
        .collect();
    normalize_gradients(&drops)
}

/// Drop-in replacement for the fine-grained stage: occlusion attention
/// followed by the same Algorithm 1 weighting and ensemble averaging as
/// the full pipeline. Used by the `ablation` experiment to compare the
/// paper's gradient attention against the black-box alternative it
/// rejected.
pub fn rank_causes_occlusion(
    model: &DiagNet,
    features: &[f32],
    schema: &FeatureSchema,
) -> crate::ranking::CauseRanking {
    let coarse = model.coarse_predict(features, schema);
    let gamma = occlusion_scores(model, features, schema);
    let gamma_tuned = crate::weighting::weight_scores(&gamma, &coarse, schema);
    // Auxiliary + ensemble identical to the gradient path.
    let full = FeatureSchema::full();
    let aux_input = full.project_from(schema, features, 0.0);
    let aux_full = model.auxiliary.scores(&aux_input);
    let mut aux: Vec<f32> = (0..schema.n_features())
        .map(|j| aux_full[full.index_of(schema.feature(j)).expect("schema ⊆ full")])
        .collect();
    let sum: f32 = aux.iter().sum();
    if sum > 0.0 {
        for a in &mut aux {
            *a /= sum;
        }
    }
    let unknown = schema.unknown_relative_to(&model.train_schema);
    let (scores, w_unknown) = crate::ensemble::ensemble_average(&gamma_tuned, &aux, &unknown);
    crate::ranking::CauseRanking {
        scores,
        coarse,
        w_unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiagNetConfig;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;
    use std::sync::OnceLock;

    fn trained() -> &'static (DiagNet, Dataset) {
        static CELL: OnceLock<(DiagNet, Dataset)> = OnceLock::new();
        CELL.get_or_init(|| {
            let world = World::new();
            let mut cfg = DatasetConfig::small(&world, 45);
            cfg.n_scenarios = 30;
            let ds = Dataset::generate(&world, &cfg).expect("generate");
            let split = ds.split(0.8, 45);
            (
                DiagNet::train(&DiagNetConfig::fast(), &split.train, 45).unwrap(),
                split.test,
            )
        })
    }

    #[test]
    fn occlusion_scores_are_normalised() {
        let (model, test) = trained();
        let schema = FeatureSchema::full();
        for s in test.samples.iter().take(5) {
            let g = occlusion_scores(model, &s.features, &schema);
            assert_eq!(g.len(), 55);
            assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-3);
            assert!(g.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn occlusion_pipeline_produces_valid_rankings() {
        let (model, test) = trained();
        let schema = FeatureSchema::full();
        let s = test.samples.iter().find(|s| s.label.is_faulty()).unwrap();
        let r = rank_causes_occlusion(model, &s.features, &schema);
        assert_eq!(r.scores.len(), 55);
        assert!((r.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert_eq!(r.coarse.len(), 7);
    }

    #[test]
    fn occlusion_attention_tracks_real_causes_above_chance() {
        // The black-box path must still beat chance on faulty samples —
        // it is an *alternative*, not a strawman.
        let (model, test) = trained();
        let schema = FeatureSchema::full();
        let scored: Vec<(Vec<f32>, usize)> = test
            .samples
            .iter()
            .filter(|s| s.label.is_faulty())
            .take(120)
            .map(|s| {
                (
                    rank_causes_occlusion(model, &s.features, &schema).scores,
                    schema.index_of(s.label.cause().unwrap()).unwrap(),
                )
            })
            .collect();
        assert!(scored.len() > 30);
        let r5 = diagnet_eval::recall_at_k(&scored, 5);
        assert!(
            r5 > 0.25,
            "occlusion-pipeline Recall@5 = {r5} (chance ≈ 0.09)"
        );
    }

    #[test]
    fn gradient_and_occlusion_agree_on_strong_signals() {
        // For clearly faulty samples the two attention flavours should put
        // their top mass in overlapping regions more often than chance.
        let (model, test) = trained();
        let schema = FeatureSchema::full();
        let mut overlaps = 0;
        let mut n = 0;
        for s in test.samples.iter().filter(|s| s.label.is_faulty()).take(40) {
            let grad = model.rank_causes(&s.features, &schema);
            let occ = rank_causes_occlusion(model, &s.features, &schema);
            let g5: std::collections::HashSet<usize> = grad.top(5).into_iter().collect();
            if occ.top(5).iter().any(|i| g5.contains(i)) {
                overlaps += 1;
            }
            n += 1;
        }
        assert!(overlaps as f32 / n as f32 > 0.5, "overlap {overlaps}/{n}");
    }
}
