//! Per-metric-kind feature standardisation.
//!
//! Statistics are computed **per metric kind** (all landmarks' RTTs share
//! one mean/std, all download bandwidths another, …) rather than per
//! feature. This is what keeps the model *root-cause extensible*: a
//! landmark that never appeared during training still gets features scaled
//! exactly like its trained peers, so the shared convolution kernel sees
//! them in-distribution.

use diagnet_nn::tensor::Matrix;
use diagnet_sim::metrics::{FeatureSchema, K_LANDMARK_METRICS, N_LOCAL_METRICS};
use serde::{Deserialize, Serialize};

/// Number of distinct metric kinds (5 landmark + 5 local).
pub const N_KINDS: usize = K_LANDMARK_METRICS + N_LOCAL_METRICS;

/// Variance-stabilising transform applied *before* the z-score. Network
/// path metrics are heavy-tailed and multiplicative (congestion scales
/// RTT, Mathis couples bandwidth to `1/√loss`), so they are compressed
/// with `log1p`; packet-loss ratios are first scaled so that the 10⁻⁴–10⁻¹
/// range spreads out; client load metrics are already in `[0, 1]` and stay
/// linear.
#[inline]
// lint: no_alloc
pub fn stabilize(kind: usize, v: f32) -> f32 {
    match kind {
        // Rtt, DownBw, UpBw, Jitter, GatewayRtt, GatewayJitter.
        0 | 1 | 2 | 3 | 5 | 6 => v.max(0.0).ln_1p(),
        // LossRetrans: ratios live in [1e-4, 1e-1]; spread before log.
        4 => (v.max(0.0) * 1000.0).ln_1p(),
        // CpuLoad, MemLoad, ConnCount.
        _ => v,
    }
}

/// Clamp bound on standardised values. Training-distribution z-scores are
/// single digits; the linear kinds (CpuLoad, MemLoad, ConnCount) skip the
/// log transform, so an adversarial or corrupted raw value like 1e30 would
/// otherwise ride straight into the network and overflow `f32` inside the
/// matmuls. ±1e4 is far outside anything a sane probe produces (identity
/// for real data) while keeping activations finite for arbitrary finite
/// inputs.
pub const MAX_ABS_Z: f32 = 1e4;

/// A fitted per-kind z-score normaliser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: [f32; N_KINDS],
    std: [f32; N_KINDS],
    /// Whether the [`stabilize`] transform precedes the z-score.
    stabilized: bool,
}

impl Normalizer {
    /// Fit on training rows laid out in `schema`'s feature order, with the
    /// variance-stabilising transform enabled (the default pipeline).
    ///
    /// # Panics
    /// Panics if `rows` is empty or a row width mismatches the schema.
    pub fn fit(schema: &FeatureSchema, rows: &[Vec<f32>]) -> Self {
        Self::fit_with(schema, rows, true)
    }

    /// Fit with an explicit choice of stabilisation (the `false` variant
    /// z-scores raw metric values; used by the normalisation ablation).
    pub fn fit_with(schema: &FeatureSchema, rows: &[Vec<f32>], stabilized: bool) -> Self {
        assert!(!rows.is_empty(), "Normalizer::fit: empty training set");
        let m = schema.n_features();
        let mut sum = [0.0f64; N_KINDS];
        let mut sum_sq = [0.0f64; N_KINDS];
        let mut count = [0usize; N_KINDS];
        let transform = |kind: usize, v: f32| if stabilized { stabilize(kind, v) } else { v };
        for row in rows {
            assert_eq!(row.len(), m, "Normalizer::fit: row width mismatch");
            for (j, &v) in row.iter().enumerate() {
                let kind = schema.feature(j).kind_index();
                let t = transform(kind, v) as f64;
                sum[kind] += t;
                sum_sq[kind] += t * t;
                count[kind] += 1;
            }
        }
        let mut mean = [0.0f32; N_KINDS];
        let mut std = [1.0f32; N_KINDS];
        for k in 0..N_KINDS {
            if count[k] > 0 {
                let n = count[k] as f64;
                let mu = sum[k] / n;
                let var = (sum_sq[k] / n - mu * mu).max(0.0);
                mean[k] = mu as f32;
                // Floor keeps constant features finite after scaling.
                std[k] = (var.sqrt() as f32).max(1e-6);
            }
        }
        Normalizer {
            mean,
            std,
            stabilized,
        }
    }

    /// Incremental flavour of [`Normalizer::fit_with`] for data that never
    /// materialises: create an accumulator, feed every training row once
    /// (in any chunk grouping, as long as row order is preserved), then
    /// [`finish`](NormalizerAccumulator::finish). See
    /// [`NormalizerAccumulator`] for the bit-identity contract.
    pub fn accumulator(stabilized: bool) -> NormalizerAccumulator {
        NormalizerAccumulator {
            sum: [0.0; N_KINDS],
            sum_sq: [0.0; N_KINDS],
            count: [0; N_KINDS],
            rows: 0,
            stabilized,
        }
    }

    /// Standardise one value of a given metric kind (stabilising
    /// transform when enabled, then z-score, clamped to ±[`MAX_ABS_Z`]).
    /// NaN inputs map to the clamp bound rather than propagating.
    #[inline]
    // lint: no_alloc
    pub fn apply_value(&self, kind: usize, v: f32) -> f32 {
        let t = if self.stabilized {
            stabilize(kind, v)
        } else {
            v
        };
        let z = (t - self.mean[kind]) / self.std[kind];
        if z.is_nan() {
            MAX_ABS_Z
        } else {
            z.clamp(-MAX_ABS_Z, MAX_ABS_Z)
        }
    }

    /// Standardise a row laid out in `schema`'s order, into a new vector.
    pub fn apply(&self, schema: &FeatureSchema, row: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; row.len()];
        self.apply_into(schema, row, &mut out);
        out
    }

    /// Standardise a row into a caller-provided slice of the same length —
    /// the zero-allocation flavour of [`Normalizer::apply`], bit-identical
    /// to it.
    ///
    /// # Panics
    /// Panics if `row` or `out` mismatch the schema width.
    // lint: no_alloc
    pub fn apply_into(&self, schema: &FeatureSchema, row: &[f32], out: &mut [f32]) {
        assert_eq!(
            row.len(),
            schema.n_features(),
            "Normalizer::apply: row width mismatch"
        );
        assert_eq!(
            out.len(),
            row.len(),
            "Normalizer::apply: out width mismatch"
        );
        for (j, (o, &v)) in out.iter_mut().zip(row).enumerate() {
            *o = self.apply_value(schema.feature(j).kind_index(), v);
        }
    }

    /// Standardise many rows.
    pub fn apply_batch(&self, schema: &FeatureSchema, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.apply(schema, r)).collect()
    }

    /// Standardise many rows straight into one row-major matrix — the
    /// zero-copy entry point of the batched scoring path. Values are
    /// bit-identical to [`Normalizer::apply`] applied row by row.
    pub fn apply_matrix(&self, schema: &FeatureSchema, rows: &[Vec<f32>]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.apply_matrix_into(schema, rows, &mut out);
        out
    }

    /// Standardise many rows into a caller-provided matrix (resized as
    /// needed) — the reusable-buffer entry point of the fused scoring
    /// path. Bit-identical to [`Normalizer::apply_matrix`]; zero heap
    /// allocations once `out` has warmed up at the batch size.
    ///
    /// # Panics
    /// Panics if a row width mismatches the schema.
    // lint: no_alloc
    pub fn apply_matrix_into(&self, schema: &FeatureSchema, rows: &[Vec<f32>], out: &mut Matrix) {
        let m = schema.n_features();
        out.resize(rows.len(), m); // lint: allow(no_alloc, reason = "grows the caller's scratch once per batch size; steady-state calls reuse it")
        for (row, orow) in rows.iter().zip(out.data_mut().chunks_exact_mut(m.max(1))) {
            self.apply_into(schema, row, orow);
        }
    }

    /// Mean of a metric kind (for inspection).
    pub fn mean_of(&self, kind: usize) -> f32 {
        self.mean[kind]
    }

    /// Standard deviation of a metric kind.
    pub fn std_of(&self, kind: usize) -> f32 {
        self.std[kind]
    }
}

/// Streaming statistics for [`Normalizer::fit_with`] over rows that never
/// exist in one `Vec`.
///
/// Bit-identity contract: the per-kind `f64` sums are added in exactly the
/// order rows are fed, with the same transform as `fit_with`, so feeding
/// the training rows once in dataset order — in chunks of *any* size —
/// then calling [`finish`](Self::finish) yields a normaliser bit-identical
/// to `Normalizer::fit_with` on the materialised rows.
#[derive(Debug, Clone)]
pub struct NormalizerAccumulator {
    sum: [f64; N_KINDS],
    sum_sq: [f64; N_KINDS],
    count: [usize; N_KINDS],
    rows: usize,
    stabilized: bool,
}

impl NormalizerAccumulator {
    /// Accumulate one training row laid out in `schema`'s feature order.
    ///
    /// # Panics
    /// Panics if the row width mismatches the schema.
    pub fn add_row(&mut self, schema: &FeatureSchema, row: &[f32]) {
        assert_eq!(
            row.len(),
            schema.n_features(),
            "NormalizerAccumulator: row width mismatch"
        );
        for (j, &v) in row.iter().enumerate() {
            let kind = schema.feature(j).kind_index();
            let t = if self.stabilized {
                stabilize(kind, v)
            } else {
                v
            } as f64;
            self.sum[kind] += t;
            self.sum_sq[kind] += t * t;
            self.count[kind] += 1;
        }
        self.rows += 1;
    }

    /// Number of rows accumulated so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Finish into a fitted [`Normalizer`] (same math as
    /// [`Normalizer::fit_with`]).
    ///
    /// # Panics
    /// Panics when no rows were accumulated, mirroring `fit_with` on an
    /// empty training set.
    pub fn finish(&self) -> Normalizer {
        assert!(self.rows > 0, "NormalizerAccumulator: empty training set");
        let mut mean = [0.0f32; N_KINDS];
        let mut std = [1.0f32; N_KINDS];
        for k in 0..N_KINDS {
            if self.count[k] > 0 {
                let n = self.count[k] as f64;
                let mu = self.sum[k] / n;
                let var = (self.sum_sq[k] / n - mu * mu).max(0.0);
                mean[k] = mu as f32;
                std[k] = (var.sqrt() as f32).max(1e-6);
            }
        }
        Normalizer {
            mean,
            std,
            stabilized: self.stabilized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::{Dataset, DatasetConfig, World};

    fn sample_rows() -> (FeatureSchema, Vec<Vec<f32>>) {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 3)).expect("generate");
        let schema = FeatureSchema::known();
        let (rows, _) = ds.to_rows(&schema, 0.0);
        (schema, rows)
    }

    #[test]
    fn accumulator_matches_batch_fit_bitwise() {
        let (schema, rows) = sample_rows();
        for stabilized in [true, false] {
            let batch = Normalizer::fit_with(&schema, &rows, stabilized);
            // Any chunking of the same row order must give the same sums.
            for chunk in [1usize, 7, rows.len()] {
                let mut acc = Normalizer::accumulator(stabilized);
                for part in rows.chunks(chunk) {
                    for row in part {
                        acc.add_row(&schema, row);
                    }
                }
                assert_eq!(acc.rows(), rows.len());
                assert_eq!(acc.finish(), batch, "chunk {chunk}");
            }
        }
    }

    #[test]
    fn normalised_kinds_have_zero_mean_unit_std() {
        let (schema, rows) = sample_rows();
        let norm = Normalizer::fit(&schema, &rows);
        let out = norm.apply_batch(&schema, &rows);
        // Check the RTT kind (kind 0) aggregated over all landmarks.
        let mut vals = Vec::new();
        for row in &out {
            for (j, &v) in row.iter().enumerate() {
                if schema.feature(j).kind_index() == 0 {
                    vals.push(v);
                }
            }
        }
        let n = vals.len() as f32;
        let mean = vals.iter().sum::<f32>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        assert!(mean.abs() < 1e-3, "mean = {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var = {var}");
    }

    #[test]
    fn shared_stats_generalise_to_unseen_landmarks() {
        // Fit on the 7 known landmarks, apply to the full 10-landmark
        // schema: hidden-landmark features are scaled by kind, not left
        // raw.
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 4)).expect("generate");
        let known = FeatureSchema::known();
        let full = FeatureSchema::full();
        let (train_rows, _) = ds.to_rows(&known, 0.0);
        let norm = Normalizer::fit(&known, &train_rows);
        let (full_rows, _) = ds.to_rows(&full, 0.0);
        let out = norm.apply_batch(&full, &full_rows);
        // Hidden-landmark RTTs land in a sane standardised range.
        let unknown = full.unknown_relative_to(&known);
        for row in out.iter().take(50) {
            for &j in &unknown {
                assert!(row[j].abs() < 15.0, "feature {j} badly scaled: {}", row[j]);
            }
        }
    }

    #[test]
    fn constant_kind_does_not_blow_up() {
        let schema = FeatureSchema::known();
        let rows = vec![vec![5.0; schema.n_features()]; 10];
        let norm = Normalizer::fit(&schema, &rows);
        let out = norm.apply(&schema, &rows[0]);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn apply_is_deterministic_and_invertible_in_distribution() {
        let (schema, rows) = sample_rows();
        let norm = Normalizer::fit(&schema, &rows);
        assert_eq!(norm.apply(&schema, &rows[0]), norm.apply(&schema, &rows[0]));
        // Round-trip one value by hand (through the stabilising transform).
        let kind = schema.feature(0).kind_index();
        let z = norm.apply_value(kind, rows[0][0]);
        let back = z * norm.std_of(kind) + norm.mean_of(kind);
        assert!((back - stabilize(kind, rows[0][0])).abs() < 1e-3);
    }

    #[test]
    fn raw_variant_skips_stabilisation() {
        let (schema, rows) = sample_rows();
        let raw = Normalizer::fit_with(&schema, &rows, false);
        let kind = schema.feature(0).kind_index();
        let z = raw.apply_value(kind, rows[0][0]);
        let back = z * raw.std_of(kind) + raw.mean_of(kind);
        assert!(
            (back - rows[0][0]).abs() < 1e-2,
            "raw variant must z-score untransformed values"
        );
        assert_ne!(raw, Normalizer::fit(&schema, &rows));
    }

    #[test]
    fn apply_matrix_is_bitwise_identical_to_apply() {
        let (schema, rows) = sample_rows();
        let norm = Normalizer::fit(&schema, &rows);
        let m = norm.apply_matrix(&schema, &rows);
        assert_eq!(m.rows(), rows.len());
        assert_eq!(m.cols(), schema.n_features());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(m.row(i), norm.apply(&schema, row).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn apply_rejects_bad_width() {
        let (schema, rows) = sample_rows();
        let norm = Normalizer::fit(&schema, &rows);
        norm.apply(&schema, &[1.0, 2.0]);
    }
}
