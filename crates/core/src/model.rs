//! The DiagNet pipeline: coarse convolutional classifier + attention +
//! score weighting + ensemble averaging.

use crate::attention::{normalize_gradients_into, SaliencyWorkspace};
use crate::config::{DiagNetConfig, OptimizerKind};
use crate::ensemble::ensemble_average;
use crate::normalize::Normalizer;
use crate::ranking::CauseRanking;
use crate::weighting::weight_scores;
use diagnet_forest::ExtensibleForest;
use diagnet_nn::error::NnError;
use diagnet_nn::layer::Layer;
use diagnet_nn::loss::{ideal_label_grad_into, softmax, softmax_in_place};
use diagnet_nn::network::Network;
use diagnet_nn::optim::{Adam, SgdNesterov};
use diagnet_nn::tensor::Matrix;
use diagnet_nn::train::{train_val_split, TrainConfig, TrainHistory, Trainer};
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::Dataset;
use diagnet_sim::metrics::{FeatureSchema, K_LANDMARK_METRICS, N_LOCAL_METRICS};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Which stages of the fine-grained pipeline to run — used by the
/// ablation benchmarks (the paper notes raw attention alone is weak,
/// §III-E, and ensemble averaging is the final boost, §III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Raw Eq. 1 attention only.
    AttentionOnly,
    /// Attention + Algorithm 1 multi-label score weighting.
    AttentionWeighted,
    /// Attention + weighting + ensemble averaging (the full DiagNet).
    Full,
}

/// A trained DiagNet model (general or specialised).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiagNet {
    /// Hyper-parameters used at training time.
    pub config: DiagNetConfig,
    /// The coarse classifier (LandPooling + MLP).
    pub network: Network,
    /// Per-metric-kind standardiser fitted on the training set.
    pub normalizer: Normalizer,
    /// The schema the model was trained on (known landmarks only).
    pub train_schema: FeatureSchema,
    /// Auxiliary extensible random forest over the **full** cause space.
    pub auxiliary: ExtensibleForest,
    /// Training curves (paper Fig. 9).
    pub history: TrainHistory,
}

/// Indices of the layers shared between services: the non-overlapping
/// convolution (LandPooling) and the first fully-connected layer, frozen
/// during specialisation (§IV-F).
pub const SHARED_LAYERS: [usize; 2] = [0, 1];

/// Inverse-frequency class weights, normalised so the dataset-mean weight
/// is 1 and capped to avoid exploding gradients on near-empty classes.
/// Counters the paper's heavy nominal/faulty imbalance (≈ 7 : 1 even
/// before splitting the faulty share over six families).
pub fn balanced_class_weights(labels: &[usize], n_classes: usize) -> Vec<f32> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l] += 1;
    }
    let n = labels.len().max(1) as f32;
    // √(inverse frequency), capped: full inverse-frequency weights put
    // ≈ 25× gradients on sub-percent classes and destabilise SGD at the
    // paper's learning rate; the square root is the usual compromise.
    let mut weights: Vec<f32> = counts
        .iter()
        .map(|&c| (n / (n_classes as f32 * c.max(1) as f32)).sqrt().min(8.0))
        .collect();
    // Normalise the sample-mean weight to 1 to keep the learning rate's
    // meaning unchanged.
    let mean: f32 = labels.iter().map(|&l| weights[l]).sum::<f32>() / n;
    if mean > 0.0 {
        for w in &mut weights {
            *w /= mean;
        }
    }
    weights
}

/// Fit `network` under `config`'s training hyper-parameters (optimiser
/// choice, batching, early stopping, optional class weights).
fn fit_network(
    config: &DiagNetConfig,
    network: &mut Network,
    tx: &Matrix,
    ty: &[usize],
    validation: (&Matrix, &[usize]),
    class_weights: Option<Vec<f32>>,
    seed: u64,
) -> Result<TrainHistory, NnError> {
    let train_config = TrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        patience: config.patience,
        shuffle: true,
        restore_best: true,
        class_weights,
        shuffle_window: None,
    };
    match config.optimizer {
        OptimizerKind::SgdNesterov => Trainer::new(
            train_config,
            SgdNesterov::new(config.learning_rate, config.momentum, config.decay),
        )
        .fit(network, tx, ty, Some(validation), seed),
        OptimizerKind::Adam => Trainer::new(train_config, Adam::new(config.learning_rate)).fit(
            network,
            tx,
            ty,
            Some(validation),
            seed,
        ),
    }
}

/// Per-thread reusable buffers for the fused scoring path: one cached
/// forward's activations serve both the coarse softmax and the attention
/// backward, and every intermediate (normalised features, probabilities,
/// Eq.-1 scores) lives here — steady-state scoring performs no heap
/// allocations beyond the returned rankings.
struct ScoringWorkspace {
    saliency: SaliencyWorkspace,
    /// Normalised input features, one row per sample.
    x: Matrix,
    /// Coarse softmax probabilities, one row per sample.
    probs: Matrix,
    /// Eq.-1 attention scores, one row per sample.
    gammas: Matrix,
}

impl ScoringWorkspace {
    fn new(network: &Network) -> Self {
        ScoringWorkspace {
            saliency: SaliencyWorkspace::new(network),
            x: Matrix::zeros(0, 0),
            probs: Matrix::zeros(0, 0),
            gammas: Matrix::zeros(0, 0),
        }
    }
}

thread_local! {
    /// One scoring workspace per thread, shared by every [`DiagNet`] the
    /// thread scores with (rebuilt on architecture mismatch — see
    /// [`SaliencyWorkspace::matches`]).
    static SCORING_WS: RefCell<Option<ScoringWorkspace>> = const { RefCell::new(None) };
}

impl DiagNet {
    /// Run `f` with this thread's scoring workspace, (re)building it when
    /// the cached one was shaped for a different architecture. When the
    /// cell is already borrowed — rayon work-stealing can nest another
    /// ranking task inside this one's parallel sections — `f` runs on a
    /// fresh stack-local workspace instead of panicking on the shared one.
    fn with_scoring_ws<R>(&self, f: impl FnOnce(&mut ScoringWorkspace) -> R) -> R {
        SCORING_WS.with(|cell| match cell.try_borrow_mut() {
            Ok(mut slot) => {
                let ws = match slot.take() {
                    Some(ws) if ws.saliency.matches(&self.network) => slot.insert(ws),
                    _ => slot.insert(ScoringWorkspace::new(&self.network)),
                };
                f(ws)
            }
            Err(_) => f(&mut ScoringWorkspace::new(&self.network)),
        })
    }

    /// Build the (untrained) coarse network of Fig. 2 for a given config.
    pub fn build_network(config: &DiagNetConfig, seed: u64) -> Network {
        let mut layers = Vec::new();
        layers.push(Layer::land_pool(
            config.filters,
            K_LANDMARK_METRICS,
            N_LOCAL_METRICS,
            config.pool_ops.clone(),
            SplitMix64::derive(seed, 100),
        ));
        let mut in_dim = config.fc_input_width(N_LOCAL_METRICS);
        for (i, &h) in config.hidden.iter().enumerate() {
            layers.push(Layer::dense(
                in_dim,
                h,
                SplitMix64::derive(seed, 101 + i as u64),
            ));
            layers.push(Layer::relu());
            in_dim = h;
        }
        layers.push(Layer::dense(
            in_dim,
            diagnet_sim::metrics::ALL_FAMILIES.len(),
            SplitMix64::derive(seed, 199),
        ));
        Network::new(layers)
    }

    /// Train a **general** DiagNet on `train_data`, hiding the landmarks
    /// absent from [`FeatureSchema::known`] (the paper's protocol).
    pub fn train(config: &DiagNetConfig, train_data: &Dataset, seed: u64) -> Result<Self, NnError> {
        Self::train_with_schema(config, train_data, FeatureSchema::known(), seed)
    }

    /// Train with an explicit training schema.
    pub fn train_with_schema(
        config: &DiagNetConfig,
        train_data: &Dataset,
        train_schema: FeatureSchema,
        seed: u64,
    ) -> Result<Self, NnError> {
        if train_data.is_empty() {
            return Err(NnError::InvalidTrainingData("empty dataset".into()));
        }
        // 1. Coarse classifier on normalised, known-landmark features.
        let (raw_rows, labels) = train_data.to_rows(&train_schema, 0.0);
        let normalizer = Normalizer::fit_with(&train_schema, &raw_rows, config.stabilize_features);
        let rows = normalizer.apply_batch(&train_schema, &raw_rows);
        let x = Matrix::from_rows(&rows);
        let (tx, ty, vx, vy) = train_val_split(
            &x,
            &labels,
            config.validation_fraction,
            SplitMix64::derive(seed, 1),
        );
        let mut network = Self::build_network(config, seed);
        let class_weights = config
            .balance_classes
            .then(|| balanced_class_weights(&ty, diagnet_sim::metrics::ALL_FAMILIES.len()));
        // 2. The auxiliary forest (full cause space, hidden landmark
        //    features zeroed exactly as §IV-B(a) prescribes) shares no
        //    state with the coarse network, so both ensemble members train
        //    concurrently. Each derives its own seed, so the result is
        //    bit-identical to the former sequential schedule.
        let (history, auxiliary) = rayon::join(
            || {
                fit_network(
                    config,
                    &mut network,
                    &tx,
                    &ty,
                    (&vx, &vy),
                    class_weights,
                    SplitMix64::derive(seed, 2),
                )
            },
            || Self::train_auxiliary(config, train_data, &train_schema, seed),
        );
        let history = history?;
        let auxiliary = auxiliary?;

        Ok(DiagNet {
            config: config.clone(),
            network,
            normalizer,
            train_schema,
            auxiliary,
            history,
        })
    }

    /// Train the auxiliary extensible forest (also the paper's RANDOM
    /// FOREST baseline).
    pub fn train_auxiliary(
        config: &DiagNetConfig,
        train_data: &Dataset,
        train_schema: &FeatureSchema,
        seed: u64,
    ) -> Result<ExtensibleForest, NnError> {
        let n_causes = FeatureSchema::full().n_features();
        // Project: dataset → train schema (drops hidden measurements) →
        // full schema with zeros in the hidden slots.
        let (rows, labels) = crate::backend::training_rows_and_labels(train_data, train_schema);
        let mut forest_cfg = config.forest.clone();
        forest_cfg.seed = SplitMix64::derive(seed, 3);
        Ok(ExtensibleForest::fit(&forest_cfg, &rows, &labels, n_causes))
    }

    /// Coarse fault-family probabilities for raw feature rows laid out in
    /// `schema` (any landmark subset — this is the extensible path).
    pub fn coarse_predict(&self, features: &[f32], schema: &FeatureSchema) -> Vec<f32> {
        let row = self.normalizer.apply(schema, features);
        let logits = self.network.forward(&Matrix::from_row(row));
        softmax(&logits).row(0).to_vec()
    }

    /// Batched coarse probabilities as one matrix: normalisation, forward
    /// pass and softmax all run over the whole batch at once (one GEMM per
    /// layer instead of one GEMV per sample).
    pub fn predict_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Matrix {
        softmax(
            &self
                .network
                .forward(&self.normalizer.apply_matrix(schema, rows)),
        )
    }

    /// Batched coarse prediction (used for Fig. 7's F1 evaluation).
    pub fn coarse_predict_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<Vec<f32>> {
        let probs = self.predict_batch(rows, schema);
        (0..probs.rows()).map(|i| probs.row(i).to_vec()).collect()
    }

    /// Most probable coarse family index per row (argmax of
    /// [`DiagNet::coarse_predict_batch`]).
    pub fn coarse_classify_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<usize> {
        self.coarse_predict_batch(rows, schema)
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Rank every candidate root cause of `schema` for one raw feature
    /// vector (the full DiagNet pipeline).
    pub fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        self.rank_causes_with(features, schema, PipelineMode::Full)
    }

    /// Rank with an explicit pipeline mode (ablations).
    pub fn rank_causes_with(
        &self,
        features: &[f32],
        schema: &FeatureSchema,
        mode: PipelineMode,
    ) -> CauseRanking {
        assert_eq!(
            features.len(),
            schema.n_features(),
            "rank_causes: feature width mismatch"
        );
        let _span = diagnet_obs::span("core.rank_causes");
        // Coarse prediction + attention on normalised features, through
        // the fused one-forward workspace path (batch of one).
        let (coarse, gamma) = self.with_scoring_ws(|ws| {
            let ScoringWorkspace {
                saliency,
                x,
                probs,
                gammas,
            } = ws;
            let SaliencyWorkspace { fws, bws } = saliency;
            x.resize(1, schema.n_features());
            self.normalizer.apply_into(schema, features, x.row_mut(0));
            self.network.forward_ws(x, fws);
            probs.copy_from(fws.output());
            softmax_in_place(probs);
            ideal_label_grad_into(fws.output(), bws.grad_logits_mut());
            self.network.backward_ws(x, fws, None, bws);
            let grad = bws.input_grad();
            gammas.resize(1, grad.cols());
            normalize_gradients_into(grad.row(0), gammas.row_mut(0));
            // Extract before releasing the thread-local borrow: fine_rank
            // below may run inside rayon sections that re-enter scoring.
            (probs.row(0).to_vec(), gammas.row(0).to_vec())
        });
        self.fine_rank(features, schema, mode, coarse, gamma)
    }

    /// The fine-grained tail of the pipeline, shared verbatim between the
    /// single-sample and batched entry points so the two stay bit-identical:
    /// Algorithm 1 weighting, auxiliary-forest projection, and §III-F
    /// ensemble averaging.
    fn fine_rank(
        &self,
        features: &[f32],
        schema: &FeatureSchema,
        mode: PipelineMode,
        coarse: Vec<f32>,
        gamma: Vec<f32>,
    ) -> CauseRanking {
        if mode == PipelineMode::AttentionOnly {
            return CauseRanking {
                scores: gamma,
                coarse,
                w_unknown: 0.0,
            };
        }
        // Algorithm 1 weighting.
        let gamma_tuned = weight_scores(&gamma, &coarse, schema);
        if mode == PipelineMode::AttentionWeighted {
            return CauseRanking {
                scores: gamma_tuned,
                coarse,
                w_unknown: 0.0,
            };
        }
        // Ensemble averaging with the auxiliary forest (§III-F).
        let full = FeatureSchema::full();
        let aux_input = full.project_from(schema, features, 0.0);
        let aux_full = self.auxiliary.scores(&aux_input);
        let aux = crate::backend::project_scores(&aux_full, &full, schema);
        let unknown = schema.unknown_relative_to(&self.train_schema);
        let (scores, w_unknown) = ensemble_average(&gamma_tuned, &aux, &unknown);
        CauseRanking {
            scores,
            coarse,
            w_unknown,
        }
    }

    /// Batched ranking: one normalisation pass, **one** cached forward
    /// whose activations feed both the coarse softmax and the whole-batch
    /// attention backward, then the per-sample fine stage in parallel.
    /// Every intermediate lives in a per-thread workspace, so steady-state
    /// calls allocate nothing beyond the returned rankings. Results are
    /// identical to calling [`DiagNet::rank_causes`] per row — the batched
    /// kernels accumulate each output element in the same order as the
    /// single-row path.
    pub fn rank_causes_batch(
        &self,
        rows: &[Vec<f32>],
        schema: &FeatureSchema,
    ) -> Vec<CauseRanking> {
        self.rank_causes_batch_with(rows, schema, PipelineMode::Full)
    }

    /// Batched ranking with an explicit pipeline mode (ablations).
    pub fn rank_causes_batch_with(
        &self,
        rows: &[Vec<f32>],
        schema: &FeatureSchema,
        mode: PipelineMode,
    ) -> Vec<CauseRanking> {
        for row in rows {
            assert_eq!(
                row.len(),
                schema.n_features(),
                "rank_causes: feature width mismatch"
            );
        }
        // Per-stage tracing spans: batch-level only (one span per stage per
        // call, never per row), so the instrumentation cost stays far below
        // the 2 % budget documented in OBSERVABILITY.md.
        let _span = diagnet_obs::span("core.rank_causes_batch");
        let (probs_rows, gamma_rows) = self.with_scoring_ws(|ws| {
            let ScoringWorkspace {
                saliency,
                x,
                probs,
                gammas,
            } = ws;
            let SaliencyWorkspace { fws, bws } = saliency;
            {
                let _s = diagnet_obs::span("core.normalize");
                self.normalizer.apply_matrix_into(schema, rows, x);
            }
            {
                // One cached forward serves both the coarse softmax here
                // and the attention backward below.
                let _s = diagnet_obs::span("core.forward");
                self.network.forward_ws(x, fws);
                probs.copy_from(fws.output());
                softmax_in_place(probs);
            }
            {
                let _s = diagnet_obs::span("core.attention_backward");
                ideal_label_grad_into(fws.output(), bws.grad_logits_mut());
                self.network.backward_ws(x, fws, None, bws);
                let grad = bws.input_grad();
                gammas.resize(grad.rows(), grad.cols());
                for i in 0..grad.rows() {
                    normalize_gradients_into(grad.row(i), gammas.row_mut(i));
                }
            }
            // Per-row extraction is the output boundary (the rankings own
            // their vectors); it also releases the thread-local borrow
            // before the parallel fine stage, whose work-stealing may
            // re-enter scoring on this thread.
            let probs_rows: Vec<Vec<f32>> =
                (0..probs.rows()).map(|i| probs.row(i).to_vec()).collect();
            let gamma_rows: Vec<Vec<f32>> =
                (0..gammas.rows()).map(|i| gammas.row(i).to_vec()).collect();
            (probs_rows, gamma_rows)
        });
        let _s = diagnet_obs::span("core.fine_rank");
        rows.par_iter()
            .zip(probs_rows)
            .zip(gamma_rows)
            .map(|((row, coarse), gamma)| self.fine_rank(row, schema, mode, coarse, gamma))
            .collect()
    }

    /// Alias for [`DiagNet::rank_causes_batch`] under the benchmarking
    /// vocabulary: "score" a batch of episodes end to end.
    pub fn score_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        self.rank_causes_batch(rows, schema)
    }

    /// Create a **specialised** model for one service (§IV-F): the shared
    /// layers (LandPooling + first FC) are frozen at their general-model
    /// values and only the final layers are retrained on the service's
    /// samples. The auxiliary forest and normaliser are shared.
    pub fn specialize(&self, service_data: &Dataset, seed: u64) -> Result<DiagNet, NnError> {
        if service_data.is_empty() {
            return Err(NnError::InvalidTrainingData("empty service dataset".into()));
        }
        let (raw_rows, labels) = service_data.to_rows(&self.train_schema, 0.0);
        let rows = self.normalizer.apply_batch(&self.train_schema, &raw_rows);
        let x = Matrix::from_rows(&rows);
        let (tx, ty, vx, vy) = train_val_split(
            &x,
            &labels,
            self.config.validation_fraction,
            SplitMix64::derive(seed, 4),
        );
        let mut network = self.network.clone();
        network.freeze_only(&SHARED_LAYERS);
        let class_weights = self
            .config
            .balance_classes
            .then(|| balanced_class_weights(&ty, diagnet_sim::metrics::ALL_FAMILIES.len()));
        let mut spec_config = self.config.clone();
        spec_config.learning_rate *= self.config.specialize_lr_factor;
        let history = fit_network(
            &spec_config,
            &mut network,
            &tx,
            &ty,
            (&vx, &vy),
            class_weights,
            SplitMix64::derive(seed, 5),
        )?;
        Ok(DiagNet {
            config: self.config.clone(),
            network,
            normalizer: self.normalizer.clone(),
            train_schema: self.train_schema.clone(),
            auxiliary: self.auxiliary.clone(),
            history,
        })
    }

    /// Total network parameter count (the paper reports 215,312 for the
    /// general model at Table I's hyper-parameters).
    pub fn num_params(&self) -> usize {
        self.network.num_params()
    }

    /// Trainable parameters (65,664 + output layer for specialised models).
    pub fn num_trainable_params(&self) -> usize {
        self.network.num_trainable_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;

    /// One shared trained model for the whole test module (training the
    /// fast config still costs seconds; no test mutates it).
    fn trained_fast() -> &'static (World, Dataset, Dataset, DiagNet) {
        static CELL: std::sync::OnceLock<(World, Dataset, Dataset, DiagNet)> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let world = World::new();
            let ds =
                Dataset::generate(&world, &DatasetConfig::small(&world, 21)).expect("generate");
            let split = ds.split(0.8, 21);
            let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 21).unwrap();
            (world, split.train, split.test, model)
        })
    }

    #[test]
    fn paper_network_shape_and_params() {
        let net = DiagNet::build_network(&DiagNetConfig::paper(), 1);
        // LandPool(24×5+24) + FC(317→512) + FC(512→128) + FC(128→7).
        assert_eq!(
            net.num_params(),
            144 + (317 * 512 + 512) + (512 * 128 + 128) + (128 * 7 + 7)
        );
        // Accepts both the 7-landmark training width and the 10-landmark
        // test width.
        assert_eq!(net.out_dim(40).unwrap(), 7);
        assert_eq!(net.out_dim(55).unwrap(), 7);
    }

    #[test]
    fn training_produces_history_and_finite_predictions() {
        let (_, train, test, model) = trained_fast();
        assert!(model.history.epochs_run >= 1);
        assert!(!model.history.val_loss.is_empty());
        let schema = FeatureSchema::full();
        let ranking = model.rank_causes(&test.samples[0].features, &schema);
        assert_eq!(ranking.scores.len(), 55);
        assert!(ranking.scores.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert!((ranking.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert_eq!(ranking.coarse.len(), 7);
        let _ = train;
    }

    #[test]
    fn coarse_classifier_learns_something() {
        let (_, train, _, model) = trained_fast();
        let schema = model.train_schema.clone();
        let (rows, labels) = train.to_rows(&schema, 0.0);
        let preds = model.coarse_classify_batch(&rows, &schema);
        // The helper must agree with manual argmax of the probabilities.
        let probs = model.coarse_predict_batch(&rows, &schema);
        for (p, &cls) in probs.iter().zip(&preds).take(20) {
            let manual = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(cls, manual);
        }
        let acc = diagnet_eval::accuracy(&preds, &labels);
        // Most samples are nominal, so even the majority class gives ~0.85;
        // require clearly better than uniform-random.
        assert!(acc > 0.5, "training accuracy {acc}");
    }

    #[test]
    fn extensible_inference_on_more_landmarks_than_trained() {
        let (_, _, test, model) = trained_fast();
        // Train schema has 7 landmarks; inference on the full 10 works
        // without retraining (the paper's root-cause extensibility).
        assert_eq!(model.train_schema.n_landmarks(), 7);
        let full = FeatureSchema::full();
        for s in test.samples.iter().take(5) {
            let r = model.rank_causes(&s.features, &full);
            assert_eq!(r.scores.len(), full.n_features());
        }
    }

    #[test]
    fn w_unknown_zero_on_train_schema() {
        let (_, _, test, model) = trained_fast();
        let schema = model.train_schema.clone();
        let projected = schema.project_from(&FeatureSchema::full(), &test.samples[0].features, 0.0);
        let r = model.rank_causes(&projected, &schema);
        assert_eq!(r.w_unknown, 0.0, "no unknown landmarks → pure auxiliary");
    }

    #[test]
    fn pipeline_modes_differ() {
        let (_, _, test, model) = trained_fast();
        let full = FeatureSchema::full();
        let f = &test.samples[0].features;
        let raw = model.rank_causes_with(f, &full, PipelineMode::AttentionOnly);
        let weighted = model.rank_causes_with(f, &full, PipelineMode::AttentionWeighted);
        let fullp = model.rank_causes_with(f, &full, PipelineMode::Full);
        assert_eq!(raw.w_unknown, 0.0);
        assert!(fullp.w_unknown >= 0.0);
        // The stages genuinely transform the scores.
        assert_ne!(raw.scores, fullp.scores);
        let _ = weighted;
    }

    #[test]
    fn batch_matches_single() {
        let (_, _, test, model) = trained_fast();
        let full = FeatureSchema::full();
        let rows: Vec<Vec<f32>> = test
            .samples
            .iter()
            .take(4)
            .map(|s| s.features.clone())
            .collect();
        let batch = model.rank_causes_batch(&rows, &full);
        for (row, b) in rows.iter().zip(&batch) {
            assert_eq!(&model.rank_causes(row, &full), b);
        }
    }

    /// ISSUE 2 acceptance: batched end-to-end scoring agrees with the
    /// per-row pipeline within 1e-5 across a whole simulated test split
    /// (in fact the shared kernels keep them bit-identical, but this test
    /// pins the documented tolerance contract over many samples).
    #[test]
    fn score_batch_agrees_with_per_row_on_dataset() {
        let (_, _, test, model) = trained_fast();
        let full = FeatureSchema::full();
        let rows: Vec<Vec<f32>> = test.samples.iter().map(|s| s.features.clone()).collect();
        assert!(rows.len() > 20, "need a non-trivial batch");
        let batch = model.score_batch(&rows, &full);
        assert_eq!(batch.len(), rows.len());
        for (row, b) in rows.iter().zip(&batch) {
            let single = model.rank_causes(row, &full);
            for (s, bb) in single.scores.iter().zip(&b.scores) {
                assert!((s - bb).abs() < 1e-5, "score drifted: {s} vs {bb}");
            }
            for (s, bb) in single.coarse.iter().zip(&b.coarse) {
                assert!((s - bb).abs() < 1e-5, "coarse drifted: {s} vs {bb}");
            }
            assert!((single.w_unknown - b.w_unknown).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_modes_match_single_modes() {
        let (_, _, test, model) = trained_fast();
        let full = FeatureSchema::full();
        let rows: Vec<Vec<f32>> = test
            .samples
            .iter()
            .take(3)
            .map(|s| s.features.clone())
            .collect();
        for mode in [
            PipelineMode::AttentionOnly,
            PipelineMode::AttentionWeighted,
            PipelineMode::Full,
        ] {
            let batch = model.rank_causes_batch_with(&rows, &full, mode);
            for (row, b) in rows.iter().zip(&batch) {
                assert_eq!(&model.rank_causes_with(row, &full, mode), b);
            }
        }
    }

    #[test]
    fn predict_batch_matches_coarse_predict() {
        let (_, _, test, model) = trained_fast();
        let schema = FeatureSchema::full();
        let rows: Vec<Vec<f32>> = test
            .samples
            .iter()
            .take(6)
            .map(|s| s.features.clone())
            .collect();
        let probs = model.predict_batch(&rows, &schema);
        assert_eq!(probs.rows(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(probs.row(i), model.coarse_predict(row, &schema).as_slice());
        }
    }

    #[test]
    fn specialization_freezes_shared_layers() {
        let (world, train, _, model) = trained_fast();
        let sid = world.catalog.by_name("video.stream").unwrap().id;
        let service_data = train.filter_service(sid);
        let special = model.specialize(&service_data, 33).unwrap();
        // Shared layers keep their weights (only the frozen flag differs).
        let (Layer::LandPool(a), Layer::LandPool(b)) =
            (&special.network.layers[0], &model.network.layers[0])
        else {
            panic!("layer 0 must be LandPool")
        };
        assert_eq!(a.kernel, b.kernel, "LandPooling kernel must stay frozen");
        assert_eq!(a.bias, b.bias, "LandPooling bias must stay frozen");
        let (Layer::Dense(a), Layer::Dense(b)) =
            (&special.network.layers[1], &model.network.layers[1])
        else {
            panic!("layer 1 must be Dense")
        };
        assert_eq!(a.w, b.w, "first FC weights must stay frozen");
        assert_eq!(a.b, b.b, "first FC bias must stay frozen");
        assert!(special.num_trainable_params() < model.num_params());
    }

    #[test]
    fn training_is_deterministic() {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 5)).expect("generate");
        let split = ds.split(0.8, 5);
        let a = DiagNet::train(&DiagNetConfig::fast(), &split.train, 9).unwrap();
        let b = DiagNet::train(&DiagNetConfig::fast(), &split.train, 9).unwrap();
        assert_eq!(a.network, b.network);
    }

    #[test]
    fn rejects_empty_dataset() {
        let world = World::new();
        let empty = Dataset {
            schema: world.schema.clone(),
            samples: Vec::new(),
        };
        assert!(DiagNet::train(&DiagNetConfig::fast(), &empty, 1).is_err());
    }
}
