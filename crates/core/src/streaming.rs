//! Streaming (chunk-oriented) training: bounded-memory DiagNet fitting
//! over a [`SampleSource`] that never materialises the whole dataset.
//!
//! Two regimes, selected by [`StreamOptions::shuffle_window`]:
//!
//! * **Full window** (`None`): the source is collected into a [`Dataset`]
//!   and training delegates to [`DiagNet::train_with_schema`] — the
//!   materialised adapter, bitwise-identical to the legacy path. Use this
//!   when the data fits in RAM and reproducibility against existing golden
//!   fingerprints matters.
//! * **Bounded window** (`Some(w)`): training memory stays `O(w + chunk)`
//!   regardless of sample count. One statistics pass accumulates the
//!   normaliser (bit-identical to the batch fit, see
//!   [`NormalizerAccumulator`](crate::normalize::NormalizerAccumulator)),
//!   collects the (capped) validation split and a seed-pinned reservoir
//!   for the auxiliary forest; then the network trains via
//!   [`Trainer::fit_streaming`] with a `w`-row shuffle window. Results are
//!   deterministic in the seed and independent of the source's chunk size,
//!   but — deliberately and by construction — not bitwise-equal to the
//!   materialised path: a bounded buffer cannot reproduce a
//!   full-permutation shuffle.
//!
//! The bounded regime departs from the materialised pipeline in two
//! documented ways: validation is capped at
//! [`StreamOptions::max_validation_rows`] (an epoch-sized validation set
//! would defeat the memory bound), and the auxiliary forest fits on a
//! uniform reservoir sample of at most [`StreamOptions::aux_reservoir`]
//! samples rather than every row (forests need materialised rows).

use crate::backend::{Backend, BackendConfig, BackendKind};
use crate::config::{DiagNetConfig, OptimizerKind};
use crate::model::DiagNet;
use crate::normalize::Normalizer;
use diagnet_nn::batch::BatchSource;
use diagnet_nn::error::NnError;
use diagnet_nn::optim::{Adam, SgdNesterov};
use diagnet_nn::tensor::Matrix;
use diagnet_nn::train::{TrainConfig, TrainHistory, Trainer};
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::{Dataset, Sample};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::stream::{SampleChunk, SampleSource};

/// Knobs of the streaming training path.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Shuffle-window size for the network trainer. `None` buffers the
    /// whole pass (materialised-equivalent, unbounded memory); `Some(w)`
    /// bounds training memory to `w` rows plus one source chunk.
    pub shuffle_window: Option<usize>,
    /// Upper bound on held-out validation rows in the bounded regime (the
    /// materialised path holds out `validation_fraction` of everything,
    /// which at streaming scale would defeat the memory bound).
    pub max_validation_rows: usize,
    /// Upper bound on the seed-pinned uniform reservoir the auxiliary
    /// forest (and the baseline backends) train on in the bounded regime.
    pub aux_reservoir: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            shuffle_window: None,
            max_validation_rows: 10_000,
            aux_reservoir: 50_000,
        }
    }
}

impl StreamOptions {
    /// Bounded-memory defaults with a given shuffle window.
    pub fn bounded(window: usize) -> Self {
        StreamOptions {
            shuffle_window: Some(window),
            ..Default::default()
        }
    }
}

/// Drain `source` into a materialised [`Dataset`] (the adapter between the
/// chunked world and collect-everything consumers).
pub fn collect_source(source: &mut dyn SampleSource) -> Dataset {
    let schema = source.schema().clone();
    let mut samples = Vec::with_capacity(source.n_samples());
    source.reset();
    while let Some(chunk) = source.next_chunk() {
        samples.extend(chunk.samples);
    }
    Dataset { schema, samples }
}

/// Inverse-frequency class weights from a per-class histogram — the
/// count-based flavour of
/// [`balanced_class_weights`](crate::model::balanced_class_weights), used
/// when labels stream past instead of sitting in a slice.
fn balanced_class_weights_from_counts(counts: &[usize]) -> Vec<f32> {
    let n_classes = counts.len();
    let n = counts.iter().sum::<usize>().max(1) as f32;
    let mut weights: Vec<f32> = counts
        .iter()
        .map(|&c| (n / (n_classes as f32 * c.max(1) as f32)).sqrt().min(8.0))
        .collect();
    let mean: f32 = counts
        .iter()
        .zip(&weights)
        .map(|(&c, &w)| c as f32 * w)
        .sum::<f32>()
        / n;
    if mean > 0.0 {
        for w in &mut weights {
            *w /= mean;
        }
    }
    weights
}

/// Uniform seed-pinned reservoir (Algorithm R) over streamed samples.
struct Reservoir {
    samples: Vec<Sample>,
    cap: usize,
    seen: u64,
    rng: SplitMix64,
}

impl Reservoir {
    fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            samples: Vec::with_capacity(cap.min(4096)),
            cap,
            seen: 0,
            rng: SplitMix64::new(seed),
        }
    }

    fn offer(&mut self, sample: &Sample) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(sample.clone());
        } else {
            let j = self.rng.next_below(self.seen as usize);
            if j < self.cap {
                self.samples[j] = sample.clone();
            }
        }
    }
}

/// [`BatchSource`] adapter: pulls chunks from a [`SampleSource`], skips
/// held-out validation rows, projects features into the training schema
/// and standardises them with the fitted normaliser. Holds at most one
/// chunk at a time.
struct ProjectedBatchSource<'a> {
    source: &'a mut dyn SampleSource,
    full_schema: FeatureSchema,
    train_schema: &'a FeatureSchema,
    normalizer: &'a Normalizer,
    is_val: &'a [bool],
    width: usize,
    n_train: usize,
    chunk: Option<SampleChunk>,
    pos: usize,
}

impl<'a> ProjectedBatchSource<'a> {
    fn new(
        source: &'a mut dyn SampleSource,
        train_schema: &'a FeatureSchema,
        normalizer: &'a Normalizer,
        is_val: &'a [bool],
        n_train: usize,
    ) -> Self {
        let full_schema = source.schema().clone();
        source.reset();
        ProjectedBatchSource {
            source,
            full_schema,
            width: train_schema.n_features(),
            train_schema,
            normalizer,
            is_val,
            n_train,
            chunk: None,
            pos: 0,
        }
    }
}

impl BatchSource for ProjectedBatchSource<'_> {
    fn num_rows(&self) -> usize {
        self.n_train
    }

    fn width(&self) -> usize {
        self.width
    }

    fn reset(&mut self) {
        self.source.reset();
        self.chunk = None;
        self.pos = 0;
    }

    fn next_rows(&mut self, limit: usize, x: &mut Vec<f32>, y: &mut Vec<usize>) -> usize {
        let mut appended = 0usize;
        while appended < limit {
            let exhausted = match &self.chunk {
                Some(c) => self.pos >= c.samples.len(),
                None => true,
            };
            if exhausted {
                self.chunk = self.source.next_chunk();
                self.pos = 0;
                if self.chunk.is_none() {
                    break;
                }
            }
            let Some(chunk) = &self.chunk else { break };
            let global = chunk.start + self.pos;
            let Some(sample) = chunk.samples.get(self.pos) else {
                break;
            };
            self.pos += 1;
            if self.is_val.get(global).copied().unwrap_or(false) {
                continue;
            }
            let raw = self
                .train_schema
                .project_from(&self.full_schema, &sample.features, 0.0);
            let start = x.len();
            x.resize(start + self.width, 0.0);
            if let Some(out) = x.get_mut(start..) {
                self.normalizer.apply_into(self.train_schema, &raw, out);
            }
            y.push(sample.label.family_index());
            appended += 1;
        }
        appended
    }
}

/// Fit `network` from a streaming source under `config`'s training
/// hyper-parameters (the streaming twin of the materialised `fit_network`).
fn fit_network_streaming(
    config: &DiagNetConfig,
    network: &mut diagnet_nn::network::Network,
    source: &mut dyn BatchSource,
    validation: (&Matrix, &[usize]),
    class_weights: Option<Vec<f32>>,
    window: usize,
    seed: u64,
) -> Result<TrainHistory, NnError> {
    let train_config = TrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        patience: config.patience,
        shuffle: true,
        restore_best: true,
        class_weights,
        shuffle_window: Some(window),
    };
    match config.optimizer {
        OptimizerKind::SgdNesterov => Trainer::new(
            train_config,
            SgdNesterov::new(config.learning_rate, config.momentum, config.decay),
        )
        .fit_streaming(network, source, Some(validation), seed),
        OptimizerKind::Adam => Trainer::new(train_config, Adam::new(config.learning_rate))
            .fit_streaming(network, source, Some(validation), seed),
    }
}

impl DiagNet {
    /// Train a general DiagNet from a chunked [`SampleSource`] with the
    /// paper's hidden-landmark protocol. See the [module
    /// docs](crate::streaming) for the two regimes.
    pub fn train_streaming(
        config: &DiagNetConfig,
        source: &mut dyn SampleSource,
        options: &StreamOptions,
        seed: u64,
    ) -> Result<Self, NnError> {
        Self::train_streaming_with_schema(config, source, FeatureSchema::known(), options, seed)
    }

    /// Streaming training with an explicit training schema.
    pub fn train_streaming_with_schema(
        config: &DiagNetConfig,
        source: &mut dyn SampleSource,
        train_schema: FeatureSchema,
        options: &StreamOptions,
        seed: u64,
    ) -> Result<Self, NnError> {
        let n = source.n_samples();
        if n == 0 {
            return Err(NnError::InvalidTrainingData("empty dataset".into()));
        }
        let Some(window) = options.shuffle_window else {
            // Materialised adapter: identical to the legacy pipeline.
            let dataset = collect_source(source);
            return Self::train_with_schema(config, &dataset, train_schema, seed);
        };
        if window == 0 {
            return Err(NnError::InvalidConfig(
                "shuffle_window must be positive".into(),
            ));
        }

        // Held-out validation: the same seed-pinned index shuffle the
        // materialised split uses, capped so the held-out set cannot grow
        // with the dataset.
        let n_val = ((n as f32 * config.validation_fraction) as usize)
            .min(n.saturating_sub(1))
            .min(options.max_validation_rows);
        let mut order: Vec<usize> = (0..n).collect();
        SplitMix64::new(SplitMix64::derive(seed, 1)).shuffle(&mut order);
        let mut is_val = vec![false; n];
        for &i in order.iter().take(n_val) {
            is_val[i] = true;
        }
        drop(order);
        let n_train = n - n_val;

        // Statistics pass: normaliser moments over every row (matching the
        // materialised pipeline, which fits before splitting), raw
        // validation rows, train-label histogram, forest reservoir.
        let full_schema = source.schema().clone();
        let n_classes = diagnet_sim::metrics::ALL_FAMILIES.len();
        let mut acc = Normalizer::accumulator(config.stabilize_features);
        let mut label_counts = vec![0usize; n_classes];
        let mut val_raw: Vec<Vec<f32>> = Vec::with_capacity(n_val);
        let mut val_y: Vec<usize> = Vec::with_capacity(n_val);
        let mut reservoir =
            Reservoir::new(options.aux_reservoir.max(1), SplitMix64::derive(seed, 4));
        source.reset();
        while let Some(chunk) = source.next_chunk() {
            for (offset, sample) in chunk.samples.iter().enumerate() {
                let global = chunk.start + offset;
                let raw = train_schema.project_from(&full_schema, &sample.features, 0.0);
                acc.add_row(&train_schema, &raw);
                let label = sample.label.family_index();
                if is_val.get(global).copied().unwrap_or(false) {
                    val_raw.push(raw);
                    val_y.push(label);
                } else if let Some(slot) = label_counts.get_mut(label) {
                    *slot += 1;
                }
                reservoir.offer(sample);
            }
        }
        if acc.rows() != n {
            return Err(NnError::InvalidTrainingData(format!(
                "source promised {n} samples but yielded {}",
                acc.rows()
            )));
        }
        let normalizer = acc.finish();
        let vx = normalizer.apply_matrix(&train_schema, &val_raw);
        drop(val_raw);

        // Auxiliary forest on the reservoir (forests need materialised
        // rows; the reservoir is a uniform, seed-pinned stand-in).
        let aux_data = Dataset {
            schema: full_schema,
            samples: reservoir.samples,
        };
        let auxiliary = Self::train_auxiliary(config, &aux_data, &train_schema, seed)?;
        drop(aux_data);

        let class_weights = config
            .balance_classes
            .then(|| balanced_class_weights_from_counts(&label_counts));
        let mut network = Self::build_network(config, seed);
        let history = {
            let mut batches =
                ProjectedBatchSource::new(source, &train_schema, &normalizer, &is_val, n_train);
            fit_network_streaming(
                config,
                &mut network,
                &mut batches,
                (&vx, &val_y),
                class_weights,
                window,
                SplitMix64::derive(seed, 2),
            )?
        };

        Ok(DiagNet {
            config: config.clone(),
            network,
            normalizer,
            train_schema,
            auxiliary,
            history,
        })
    }
}

impl BackendKind {
    /// Streaming twin of [`BackendKind::train`]: fit a backend of this
    /// kind from a chunked source. DiagNet trains with bounded memory
    /// under [`StreamOptions`]; the forest and naive-Bayes baselines are
    /// inherently materialised, so in the bounded regime they fit on the
    /// seed-pinned reservoir ([`StreamOptions::aux_reservoir`] samples)
    /// and in the full-window regime on the collected dataset.
    pub fn train_streaming(
        self,
        config: &BackendConfig,
        source: &mut dyn SampleSource,
        train_schema: &FeatureSchema,
        options: &StreamOptions,
        seed: u64,
    ) -> Result<Box<dyn Backend>, NnError> {
        match self {
            BackendKind::DiagNet => Ok(Box::new(DiagNet::train_streaming_with_schema(
                &config.diagnet,
                source,
                train_schema.clone(),
                options,
                seed,
            )?)),
            BackendKind::Forest | BackendKind::NaiveBayes => {
                let dataset = match options.shuffle_window {
                    None => collect_source(source),
                    Some(_) => {
                        let mut reservoir = Reservoir::new(
                            options.aux_reservoir.max(1),
                            SplitMix64::derive(seed, 4),
                        );
                        let schema = source.schema().clone();
                        source.reset();
                        while let Some(chunk) = source.next_chunk() {
                            for sample in &chunk.samples {
                                reservoir.offer(sample);
                            }
                        }
                        Dataset {
                            schema,
                            samples: reservoir.samples,
                        }
                    }
                };
                self.train(config, &dataset, train_schema, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::stream::{DatasetStream, MaterializedSource};
    use diagnet_sim::world::World;

    fn fast_config() -> DiagNetConfig {
        DiagNetConfig::fast()
    }

    #[test]
    fn full_window_streaming_equals_materialized_training() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 61);
        cfg.n_scenarios = 10;
        let dataset = Dataset::generate(&world, &cfg).expect("generate");
        let reference = DiagNet::train(&fast_config(), &dataset, 9).expect("materialized training");
        // Generator-backed source, several chunk sizes incl. a non-divisor.
        for chunk_size in [97usize, 250, 1000] {
            let mut stream = DatasetStream::new(&world, &cfg, chunk_size).expect("stream");
            let model =
                DiagNet::train_streaming(&fast_config(), &mut stream, &StreamOptions::default(), 9)
                    .expect("streaming training");
            assert_eq!(model.network, reference.network, "chunk {chunk_size}");
            assert_eq!(model.normalizer, reference.normalizer);
            assert_eq!(model.history.train_loss, reference.history.train_loss);
        }
        // Materialised adapter source too.
        let mut source = MaterializedSource::new(&dataset, 128).expect("source");
        let model =
            DiagNet::train_streaming(&fast_config(), &mut source, &StreamOptions::default(), 9)
                .expect("streaming training");
        assert_eq!(model.network, reference.network);
    }

    #[test]
    fn bounded_window_is_chunk_size_independent() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 62);
        cfg.n_scenarios = 8;
        let options = StreamOptions {
            shuffle_window: Some(200),
            max_validation_rows: 100,
            aux_reservoir: 300,
        };
        let run = |chunk_size: usize| {
            let mut stream = DatasetStream::new(&world, &cfg, chunk_size).expect("stream");
            DiagNet::train_streaming(&fast_config(), &mut stream, &options, 13)
                .expect("streaming training")
        };
        let a = run(64);
        let b = run(97);
        let c = run(800);
        assert_eq!(a.network, b.network);
        assert_eq!(a.network, c.network);
        assert_eq!(a.normalizer, b.normalizer);
        // The normaliser sees every row in order, so it is bit-identical
        // to the materialised fit even in the bounded regime.
        let dataset = Dataset::generate(&world, &cfg).expect("generate");
        let reference = DiagNet::train(&fast_config(), &dataset, 13).expect("training");
        assert_eq!(a.normalizer, reference.normalizer);
    }

    #[test]
    fn backend_factories_stream_all_kinds() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 63);
        cfg.n_scenarios = 6;
        let dataset = Dataset::generate(&world, &cfg).expect("generate");
        let config = BackendConfig::from_diagnet(fast_config());
        let schema = FeatureSchema::known();
        for kind in [
            BackendKind::DiagNet,
            BackendKind::Forest,
            BackendKind::NaiveBayes,
        ] {
            // Full-window streaming must agree with materialised training
            // on scoring behaviour.
            let reference = kind
                .train(&config, &dataset, &schema, 5)
                .expect("materialized");
            let mut source = MaterializedSource::new(&dataset, 97).expect("source");
            let streamed = kind
                .train_streaming(&config, &mut source, &schema, &StreamOptions::default(), 5)
                .expect("streamed");
            let row = &dataset.samples[0];
            let a = reference.rank_causes(&row.features, &dataset.schema);
            let b = streamed.rank_causes(&row.features, &dataset.schema);
            assert_eq!(a.scores, b.scores, "{kind}");
            // Bounded regime trains end to end.
            let mut source = MaterializedSource::new(&dataset, 128).expect("source");
            let bounded = kind
                .train_streaming(
                    &config,
                    &mut source,
                    &schema,
                    &StreamOptions::bounded(150),
                    5,
                )
                .expect("bounded");
            assert!(!bounded
                .rank_causes(&row.features, &dataset.schema)
                .scores
                .is_empty());
        }
    }
}
