//! Human-readable diagnosis reports.
//!
//! The paper motivates DiagNet with support teams "struggling to diagnose
//! the root cause of many incidents" (§I) — the raw 55-dimensional score
//! vector is for machines; this module renders it the way a NOC ticket
//! would read: a verdict (local / remote / uplink), the implicated
//! location and metric, model confidence and the runner-up hypotheses.

use crate::ranking::CauseRanking;
use diagnet_sim::metrics::{CoarseFamily, FeatureId, FeatureSchema};

/// Where the diagnosed cause sits relative to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauseScope {
    /// The client's own device (CPU/memory/connection pressure).
    LocalDevice,
    /// The client's access link / gateway.
    Uplink,
    /// A remote location, identified by a landmark region.
    Remote,
}

/// A structured, displayable diagnosis.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Scope of the most probable cause.
    pub scope: CauseScope,
    /// The most probable cause feature.
    pub cause: FeatureId,
    /// Its coarse fault family.
    pub family: CoarseFamily,
    /// Score of the top cause (share of the total ranking mass).
    pub confidence: f32,
    /// Probability mass the model assigns to unknown-landmark causes.
    pub w_unknown: f32,
    /// The next most probable causes (feature, score), best first.
    pub alternatives: Vec<(FeatureId, f32)>,
}

impl Explanation {
    /// Build an explanation from a ranking (top cause + `n_alternatives`
    /// runners-up).
    ///
    /// # Panics
    /// Panics if the ranking width does not match the schema.
    pub fn from_ranking(
        ranking: &CauseRanking,
        schema: &FeatureSchema,
        n_alternatives: usize,
    ) -> Explanation {
        assert_eq!(
            ranking.scores.len(),
            schema.n_features(),
            "explanation: width mismatch"
        );
        let order = ranking.top(n_alternatives + 1);
        let cause = schema.feature(order[0]);
        let scope = match cause {
            FeatureId::Local(m) => match m.family() {
                CoarseFamily::UplinkLatency => CauseScope::Uplink,
                _ => CauseScope::LocalDevice,
            },
            FeatureId::Landmark(_, _) => CauseScope::Remote,
        };
        Explanation {
            scope,
            cause,
            family: cause.family(),
            confidence: ranking.scores[order[0]],
            w_unknown: ranking.w_unknown,
            alternatives: order[1..]
                .iter()
                .map(|&i| (schema.feature(i), ranking.scores[i]))
                .collect(),
        }
    }

    /// One-paragraph rendering, ticket-style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let where_ = match self.scope {
            CauseScope::LocalDevice => "on the client device".to_string(),
            CauseScope::Uplink => "on the client's access link".to_string(),
            CauseScope::Remote => match self.cause.region() {
                Some(r) => format!("in or near the {} region", r.code()),
                None => "at a remote location".to_string(),
            },
        };
        out.push_str(&format!(
            "Most probable root cause: {} ({}) {} — score {:.2}.\n",
            self.cause.name(),
            self.family.name(),
            where_,
            self.confidence
        ));
        if self.w_unknown > 0.5 {
            out.push_str(&format!(
                "Note: the model attributes {:.0}% of the probability mass to landmarks \
                 it was not trained on — treat the location as approximate.\n",
                self.w_unknown * 100.0
            ));
        }
        if !self.alternatives.is_empty() {
            out.push_str("Also consider: ");
            let alts: Vec<String> = self
                .alternatives
                .iter()
                .map(|(f, s)| format!("{} ({:.2})", f.name(), s))
                .collect();
            out.push_str(&alts.join(", "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::metrics::{LandmarkMetric, LocalMetric};
    use diagnet_sim::region::Region;

    fn ranking_with_top(schema: &FeatureSchema, top: FeatureId, w_unknown: f32) -> CauseRanking {
        let mut scores = vec![0.01f32; schema.n_features()];
        scores[schema.index_of(top).unwrap()] = 0.6;
        CauseRanking {
            scores,
            coarse: vec![0.0; 7],
            w_unknown,
        }
    }

    #[test]
    fn remote_cause_names_the_region() {
        let schema = FeatureSchema::full();
        let top = FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt);
        let e = Explanation::from_ranking(&ranking_with_top(&schema, top, 0.1), &schema, 3);
        assert_eq!(e.scope, CauseScope::Remote);
        assert_eq!(e.family, CoarseFamily::LinkLatency);
        assert_eq!(e.alternatives.len(), 3);
        let text = e.render();
        assert!(text.contains("GRAV"), "{text}");
        assert!(text.contains("Latency"), "{text}");
        assert!(!text.contains("approximate"), "low w_U must not warn");
    }

    #[test]
    fn local_and_uplink_scopes() {
        let schema = FeatureSchema::full();
        let cpu = Explanation::from_ranking(
            &ranking_with_top(&schema, FeatureId::Local(LocalMetric::CpuLoad), 0.0),
            &schema,
            2,
        );
        assert_eq!(cpu.scope, CauseScope::LocalDevice);
        assert!(cpu.render().contains("client device"));
        let gw = Explanation::from_ranking(
            &ranking_with_top(&schema, FeatureId::Local(LocalMetric::GatewayRtt), 0.0),
            &schema,
            2,
        );
        assert_eq!(gw.scope, CauseScope::Uplink);
        assert!(gw.render().contains("access link"));
    }

    #[test]
    fn unknown_landmark_warning() {
        let schema = FeatureSchema::full();
        let top = FeatureId::Landmark(Region::East, LandmarkMetric::Jitter);
        let e = Explanation::from_ranking(&ranking_with_top(&schema, top, 0.8), &schema, 1);
        assert!(e.render().contains("approximate"));
    }

    #[test]
    fn confidence_and_order() {
        let schema = FeatureSchema::full();
        let top = FeatureId::Landmark(Region::Sing, LandmarkMetric::DownBw);
        let e = Explanation::from_ranking(&ranking_with_top(&schema, top, 0.0), &schema, 5);
        assert!((e.confidence - 0.6).abs() < 1e-6);
        for pair in e.alternatives.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
