//! Metrics instrumentation for [`Backend`] call sites.
//!
//! [`InstrumentedBackend`] is a transparent decorator: it implements
//! [`Backend`] by delegating to the wrapped model while recording request
//! counters, row counters, latency histograms and batch-size distributions
//! into a [`MetricsRegistry`] (the process-wide
//! [`global`](diagnet_obs::global) one unless a private registry is
//! given). The serving layers wrap models at the edge — the CLI wraps
//! whatever `--model` loads, the platform wraps what the registry
//! publishes — so the inner scoring hot path stays untouched.
//!
//! All metric handles are resolved once at construction; per-call overhead
//! is a handful of relaxed atomic operations plus two clock reads, well
//! under the 2 % budget documented in `OBSERVABILITY.md`. With the `obs`
//! feature off, every handle is a no-op and the wrapper reduces to plain
//! delegation.

use crate::backend::{Backend, BackendEnvelope, BackendInfo, ExtensionInfo};
use crate::ranking::CauseRanking;
use diagnet_nn::NnError;
use diagnet_obs::{Counter, Histogram, MetricsRegistry, DEFAULT_SIZE_BOUNDS};
use diagnet_sim::dataset::Dataset;
use diagnet_sim::metrics::FeatureSchema;
use std::any::Any;
use std::fmt;

/// Name of the counter of ranking calls (single or batched, one each).
pub const RANK_REQUESTS_TOTAL: &str = "diagnet_rank_requests_total";
/// Name of the counter of individual rows scored.
pub const RANK_ROWS_TOTAL: &str = "diagnet_rank_rows_total";
/// Name of the ranking-latency histogram (label `call`: `single`/`batch`).
pub const RANK_LATENCY_SECONDS: &str = "diagnet_rank_latency_seconds";
/// Name of the batch-size histogram (rows per `rank_causes_batch` call).
pub const RANK_BATCH_ROWS: &str = "diagnet_rank_batch_rows";
/// Name of the counter of schema-extension checks.
pub const EXTEND_CHECKS_TOTAL: &str = "diagnet_extend_checks_total";
/// Name of the counter of specialisation requests.
pub const SPECIALIZE_TOTAL: &str = "diagnet_specialize_total";

/// A [`Backend`] decorator that records serving metrics.
pub struct InstrumentedBackend {
    inner: Box<dyn Backend>,
    requests: Counter,
    rows: Counter,
    latency_single: Histogram,
    latency_batch: Histogram,
    batch_rows: Histogram,
    extends: Counter,
    specializations: Counter,
}

impl InstrumentedBackend {
    /// Wrap `inner`, recording into the process-wide global registry.
    pub fn new(inner: Box<dyn Backend>) -> Self {
        Self::with_registry(inner, diagnet_obs::global())
    }

    /// Wrap `inner`, recording into an explicit registry (tests use a
    /// private registry for exact assertions).
    pub fn with_registry(inner: Box<dyn Backend>, registry: &MetricsRegistry) -> Self {
        let backend = inner.describe().kind.token();
        let labels: &[(&str, &str)] = &[("backend", backend)];
        InstrumentedBackend {
            requests: registry.counter(
                RANK_REQUESTS_TOTAL,
                labels,
                "ranking calls served (one per rank_causes or rank_causes_batch)",
            ),
            rows: registry.counter(RANK_ROWS_TOTAL, labels, "individual rows scored"),
            latency_single: registry.histogram(
                RANK_LATENCY_SECONDS,
                &[("backend", backend), ("call", "single")],
                "wall-clock latency of ranking calls",
            ),
            latency_batch: registry.histogram(
                RANK_LATENCY_SECONDS,
                &[("backend", backend), ("call", "batch")],
                "wall-clock latency of ranking calls",
            ),
            batch_rows: registry.histogram_with(
                RANK_BATCH_ROWS,
                labels,
                "rows per rank_causes_batch call",
                &DEFAULT_SIZE_BOUNDS,
            ),
            extends: registry.counter(EXTEND_CHECKS_TOTAL, labels, "schema extension checks"),
            specializations: registry.counter(
                SPECIALIZE_TOTAL,
                labels,
                "per-service specialisation requests",
            ),
            inner,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn Backend {
        self.inner.as_ref()
    }

    /// Unwrap, discarding the instrumentation.
    pub fn into_inner(self) -> Box<dyn Backend> {
        self.inner
    }
}

impl fmt::Debug for InstrumentedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstrumentedBackend")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl Backend for InstrumentedBackend {
    fn describe(&self) -> BackendInfo {
        self.inner.describe()
    }

    fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        let timer = self.latency_single.start_timer();
        let ranking = self.inner.rank_causes(features, schema);
        timer.stop();
        self.requests.inc();
        self.rows.inc();
        ranking
    }

    fn rank_causes_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        let timer = self.latency_batch.start_timer();
        let rankings = self.inner.rank_causes_batch(rows, schema);
        timer.stop();
        self.requests.inc();
        self.rows.add(rows.len() as u64);
        self.batch_rows.observe(rows.len() as f64);
        rankings
    }

    fn extend(&self, schema: &FeatureSchema) -> Result<ExtensionInfo, NnError> {
        let _span = diagnet_obs::span("core.extend");
        self.extends.inc();
        self.inner.extend(schema)
    }

    fn specialize_for(
        &self,
        service_data: &Dataset,
        seed: u64,
    ) -> Result<Box<dyn Backend>, NnError> {
        let _span = diagnet_obs::span("core.specialize");
        self.specializations.inc();
        self.inner.specialize_for(service_data, seed)
    }

    fn to_envelope(&self) -> BackendEnvelope {
        self.inner.to_envelope()
    }

    fn validate(&self) -> Result<(), NnError> {
        // Health probes should not skew serving metrics.
        self.inner.validate()
    }

    fn as_any(&self) -> &dyn Any {
        // Delegate so `downcast_ref::<DiagNet>()`-style consumers see the
        // wrapped model, not the wrapper.
        self.inner.as_any()
    }
}
