//! The backend abstraction: a capability-complete, object-safe interface
//! over every root-cause–ranking model in the workspace.
//!
//! [`CauseRanker`](crate::baselines::CauseRanker) (PR 1) only covered
//! scoring. Production consumers need more: the platform retrains and
//! hot-swaps models, the CLI persists them, and the bench harness batches
//! them. [`Backend`] is the superset trait all of those program against:
//!
//! * **Training** — [`BackendKind::train`] is the uniform factory; per-model
//!   hyper-parameters travel in one [`BackendConfig`].
//! * **Ranking** — [`Backend::rank_causes`] plus a mandatory batched
//!   entry point ([`Backend::rank_causes_batch`]) so the zero-allocation
//!   batch kernels of PR 2 are reachable behind the trait.
//! * **Extensibility** — [`Backend::extend`] reports (and validates) how a
//!   model copes with candidate causes that appeared after training, the
//!   paper's central claim (§III-F).
//! * **Persistence** — [`Backend::to_envelope`] wraps any backend in a
//!   versioned, tagged [`BackendEnvelope`] (serialised by
//!   [`backend_persist`](crate::backend_persist)).
//! * **Introspection** — [`Backend::describe`] returns the metadata the
//!   CLI's `info` command and the bench reports print.
//!
//! The shared zero-fill training protocol (hidden-landmark features dropped,
//! then re-filled with zeros over the full cause space) lives here as
//! [`training_rows_and_labels`] / [`project_scores`], deduplicating what
//! used to be three private copies across the DiagNet auxiliary, the forest
//! baseline and the naive-Bayes baseline.

use crate::model::DiagNet;
use crate::ranking::CauseRanking;
use diagnet_bayes::{ExtensibleNaiveBayes, NaiveBayesConfig};
use diagnet_forest::{ExtensibleForest, ForestConfig};
use diagnet_nn::NnError;
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::Dataset;
use diagnet_sim::metrics::FeatureSchema;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// Version tag written into every serialised [`BackendEnvelope`].
pub const BACKEND_FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Shared extension helpers (the zero-fill protocol).
// ---------------------------------------------------------------------------

/// Build the training matrix + cause labels over the **full** cause space
/// from a dataset observed under `train_schema` (the paper's zero-padding
/// protocol, §IV-B): hidden-landmark measurements are dropped by the schema
/// projection and re-filled with zeros, so every model trains against all
/// candidate causes while only ever seeing known-landmark evidence.
///
/// Labels index into [`FeatureSchema::full`]; nominal samples get the
/// out-of-range class `full.n_features()`.
pub fn training_rows_and_labels(
    train_data: &Dataset,
    train_schema: &FeatureSchema,
) -> (Vec<Vec<f32>>, Vec<usize>) {
    let full = FeatureSchema::full();
    let n_causes = full.n_features();
    let (train_rows, _) = train_data.to_rows(train_schema, 0.0);
    let rows: Vec<Vec<f32>> = train_rows
        .iter()
        .map(|r| full.project_from(train_schema, r, 0.0))
        .collect();
    let labels: Vec<usize> = train_data
        .samples
        .iter()
        .map(|s| match s.label.cause() {
            Some(cause) => full
                .index_of(cause)
                // lint: allow(panic, reason = "FeatureSchema::full() enumerates every FaultCause by construction; a miss is a schema bug worth aborting training over, and this helper never runs while serving")
                .expect("cause feature always exists in the full schema"),
            None => n_causes,
        })
        .collect();
    (rows, labels)
}

/// Map full-schema cause scores onto an evaluation schema and renormalise.
///
/// The inverse of the zero-fill: a model scores all 55 candidate causes, the
/// caller asked about `schema`'s subset, so the relevant slice is extracted
/// and rescaled to sum to one (when non-degenerate).
pub fn project_scores(
    full_scores: &[f32],
    full: &FeatureSchema,
    schema: &FeatureSchema,
) -> Vec<f32> {
    let mut scores: Vec<f32> = (0..schema.n_features())
        .map(|j| {
            // Every evaluation schema is a subset of the full schema and
            // `full_scores` is full-width; a miss is a caller bug, and a
            // zero contribution degrades more gracefully than a panic on
            // the serving path.
            full.index_of(schema.feature(j))
                .and_then(|i| full_scores.get(i))
                .copied()
                .unwrap_or(0.0)
        })
        .collect();
    let sum: f32 = scores.iter().sum();
    if sum > 0.0 {
        for s in &mut scores {
            *s /= sum;
        }
    }
    scores
}

// ---------------------------------------------------------------------------
// Metadata types.
// ---------------------------------------------------------------------------

/// Which backend implementation a model is. The CLI's `--backend` flag and
/// the serialised envelope both speak this vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The paper's convolutional model with auxiliary-forest ensemble.
    DiagNet,
    /// The RANDOM FOREST baseline of §IV-B(a).
    Forest,
    /// The NAIVE BAYES baseline of §IV-B(b).
    NaiveBayes,
}

/// All selectable backends, in CLI/reporting order.
pub const ALL_BACKENDS: [BackendKind; 3] = [
    BackendKind::DiagNet,
    BackendKind::Forest,
    BackendKind::NaiveBayes,
];

impl BackendKind {
    /// Parse a CLI token (`diagnet`, `forest`, `bayes`).
    pub fn parse(token: &str) -> Option<BackendKind> {
        match token {
            "diagnet" => Some(BackendKind::DiagNet),
            "forest" => Some(BackendKind::Forest),
            "bayes" | "naive-bayes" => Some(BackendKind::NaiveBayes),
            _ => None,
        }
    }

    /// The CLI token for this backend.
    pub fn token(self) -> &'static str {
        match self {
            BackendKind::DiagNet => "diagnet",
            BackendKind::Forest => "forest",
            BackendKind::NaiveBayes => "bayes",
        }
    }

    /// Model name as it appears in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::DiagNet => "DiagNet",
            BackendKind::Forest => "Random Forest",
            BackendKind::NaiveBayes => "Naive Bayes",
        }
    }

    /// Uniform training factory: fit a backend of this kind on `train_data`
    /// observed under `train_schema`, with the deterministic seed protocol
    /// each model has used since its introduction (DiagNet derives its own
    /// salts; the forest baseline salts with 40; naive Bayes is
    /// deterministic without a seed).
    pub fn train(
        self,
        config: &BackendConfig,
        train_data: &Dataset,
        train_schema: &FeatureSchema,
        seed: u64,
    ) -> Result<Box<dyn Backend>, NnError> {
        match self {
            BackendKind::DiagNet => Ok(Box::new(DiagNet::train_with_schema(
                &config.diagnet,
                train_data,
                train_schema.clone(),
                seed,
            )?)),
            BackendKind::Forest => Ok(Box::new(ForestBackend::train(
                &config.diagnet.forest,
                train_data,
                train_schema,
                seed,
            ))),
            BackendKind::NaiveBayes => Ok(Box::new(BayesBackend::train(
                &config.bayes,
                train_data,
                train_schema,
            ))),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One bundle of hyper-parameters covering every backend kind, so training
/// call sites (platform trainer, CLI, bench) carry a single config value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BackendConfig {
    /// DiagNet hyper-parameters; `diagnet.forest` doubles as the forest
    /// baseline's config, mirroring the paper's shared forest settings.
    pub diagnet: crate::config::DiagNetConfig,
    /// Naive-Bayes (KDE) hyper-parameters.
    pub bayes: NaiveBayesConfig,
}

impl BackendConfig {
    /// Wrap an existing DiagNet config, defaulting everything else.
    pub fn from_diagnet(diagnet: crate::config::DiagNetConfig) -> Self {
        BackendConfig {
            diagnet,
            bayes: NaiveBayesConfig::default(),
        }
    }
}

/// Metadata every backend reports via [`Backend::describe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendInfo {
    /// Implementation kind.
    pub kind: BackendKind,
    /// Figure label, e.g. `"Random Forest"`.
    pub name: &'static str,
    /// Model size: network weights for DiagNet, tree nodes for the forest,
    /// KDE support points for naive Bayes.
    pub n_params: usize,
    /// Whether [`Backend::specialize_for`] is implemented.
    pub supports_specialization: bool,
    /// Landmarks visible when the model was trained.
    pub n_train_landmarks: usize,
}

/// What [`Backend::extend`] reports about serving a (possibly wider)
/// candidate-cause schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtensionInfo {
    /// Candidate causes in the requested schema.
    pub n_candidates: usize,
    /// Candidates whose landmark was visible during training.
    pub n_known: usize,
    /// Candidates new since training (scored via the extensibility
    /// machinery: attention + redistribution/generic likelihoods).
    pub n_new: usize,
}

// ---------------------------------------------------------------------------
// The trait.
// ---------------------------------------------------------------------------

/// A trained, servable root-cause–analysis model.
///
/// Object safe: the platform registry stores `Arc<dyn Backend>` and swaps
/// implementations atomically on publish. All implementations must be
/// deterministic — for a fixed training seed, [`Backend::rank_causes`] and
/// [`Backend::rank_causes_batch`] return bit-identical scores.
pub trait Backend: Send + Sync + fmt::Debug {
    /// Name, size and capability metadata.
    fn describe(&self) -> BackendInfo;

    /// Rank all candidate causes of `schema` for one raw feature vector.
    fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking;

    /// Batched ranking. Must return exactly what per-row
    /// [`Backend::rank_causes`] calls would, bit for bit; implementations
    /// are expected to route through their batch kernels where they exist.
    fn rank_causes_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking>;

    /// Check that this model can serve `schema` (every candidate must exist
    /// in the full cause space) and report how much of it is new relative
    /// to the training schema.
    fn extend(&self, schema: &FeatureSchema) -> Result<ExtensionInfo, NnError>;

    /// Derive a service-specialised variant (§IV-F). Backends without
    /// transfer learning return an error.
    fn specialize_for(
        &self,
        service_data: &Dataset,
        seed: u64,
    ) -> Result<Box<dyn Backend>, NnError> {
        let _ = (service_data, seed);
        Err(NnError::InvalidConfig(format!(
            "backend `{}` does not support specialisation",
            self.describe().kind
        )))
    }

    /// Wrap a copy of this model in the versioned persistence envelope.
    fn to_envelope(&self) -> BackendEnvelope;

    /// Health check: verify the model is servable — parameters finite and
    /// a probe row scores to finite values. Called after deserialisation
    /// (never load a corrupted model) and before a registry publish (never
    /// serve a diverged generation). The default scores one all-zero probe
    /// row over the full cause space through [`Backend::rank_causes`];
    /// implementations with direct parameter access should check those
    /// too.
    fn validate(&self) -> Result<(), NnError> {
        validate_probe_scores(self)
    }

    /// Downcasting hook (e.g. the registry's DiagNet-specific consumers).
    fn as_any(&self) -> &dyn Any;
}

/// Shared tail of [`Backend::validate`]: score one all-zero probe row over
/// the full cause space and require every output to be finite. Callable
/// from `validate` overrides after their own parameter checks.
pub fn validate_probe_scores<B: Backend + ?Sized>(backend: &B) -> Result<(), NnError> {
    let full = FeatureSchema::full();
    let probe = vec![0.0f32; full.n_features()];
    let ranking = backend.rank_causes(&probe, &full);
    if ranking.scores.len() != full.n_features() {
        return Err(NnError::InvalidConfig(format!(
            "model health check failed: probe row produced {} scores for {} candidates",
            ranking.scores.len(),
            full.n_features()
        )));
    }
    if !ranking.all_finite() {
        return Err(NnError::InvalidConfig(
            "model health check failed: probe row produced non-finite scores".into(),
        ));
    }
    Ok(())
}

/// Shared `extend` logic: validate `schema` against the full cause space
/// and count what is new relative to `train_schema`.
fn extension_info(
    train_schema: &FeatureSchema,
    schema: &FeatureSchema,
) -> Result<ExtensionInfo, NnError> {
    let full = FeatureSchema::full();
    for j in 0..schema.n_features() {
        let fid = schema.feature(j);
        if full.index_of(fid).is_none() {
            return Err(NnError::InvalidConfig(format!(
                "cannot extend to feature `{}`: not in the full cause space",
                fid.name()
            )));
        }
    }
    let n_candidates = schema.n_features();
    let n_new = schema.unknown_relative_to(train_schema).len();
    Ok(ExtensionInfo {
        n_candidates,
        n_known: n_candidates - n_new,
        n_new,
    })
}

// ---------------------------------------------------------------------------
// DiagNet as a backend.
// ---------------------------------------------------------------------------

impl Backend for DiagNet {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::DiagNet,
            name: BackendKind::DiagNet.label(),
            n_params: self.num_params(),
            supports_specialization: true,
            n_train_landmarks: self.train_schema.n_landmarks(),
        }
    }

    fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        DiagNet::rank_causes(self, features, schema)
    }

    fn rank_causes_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        DiagNet::rank_causes_batch(self, rows, schema)
    }

    fn extend(&self, schema: &FeatureSchema) -> Result<ExtensionInfo, NnError> {
        extension_info(&self.train_schema, schema)
    }

    fn specialize_for(
        &self,
        service_data: &Dataset,
        seed: u64,
    ) -> Result<Box<dyn Backend>, NnError> {
        Ok(Box::new(self.specialize(service_data, seed)?))
    }

    fn to_envelope(&self) -> BackendEnvelope {
        BackendEnvelope {
            format_version: BACKEND_FORMAT_VERSION,
            kind: BackendKind::DiagNet,
            payload: BackendPayload::DiagNet(Box::new(self.clone())),
        }
    }

    fn validate(&self) -> Result<(), NnError> {
        if !self.network.params_finite() {
            return Err(NnError::InvalidConfig(
                "model health check failed: network holds non-finite weights".into(),
            ));
        }
        let stats_finite = (0..crate::normalize::N_KINDS).all(|k| {
            self.normalizer.mean_of(k).is_finite() && self.normalizer.std_of(k).is_finite()
        });
        if !stats_finite {
            return Err(NnError::InvalidConfig(
                "model health check failed: normaliser statistics are non-finite".into(),
            ));
        }
        validate_probe_scores(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// The forest baseline as a backend.
// ---------------------------------------------------------------------------

/// The RANDOM FOREST baseline of §IV-B(a): an [`ExtensibleForest`] used
/// directly as the cause ranker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestBackend {
    /// The underlying extensible forest (over the full cause space).
    pub forest: ExtensibleForest,
    /// Landmarks visible during training.
    pub train_schema: FeatureSchema,
}

impl ForestBackend {
    /// Train on `train_data` with the paper's zero-padding protocol:
    /// hidden-landmark features are dropped and re-filled with zeros.
    pub fn train(
        config: &ForestConfig,
        train_data: &Dataset,
        train_schema: &FeatureSchema,
        seed: u64,
    ) -> Self {
        let n_causes = FeatureSchema::full().n_features();
        let (rows, labels) = training_rows_and_labels(train_data, train_schema);
        let cfg = ForestConfig {
            seed: SplitMix64::derive(seed, 40),
            ..config.clone()
        };
        ForestBackend {
            forest: ExtensibleForest::fit(&cfg, &rows, &labels, n_causes),
            train_schema: train_schema.clone(),
        }
    }
}

impl Backend for ForestBackend {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::Forest,
            name: BackendKind::Forest.label(),
            n_params: self.forest.forest().n_nodes(),
            supports_specialization: false,
            n_train_landmarks: self.train_schema.n_landmarks(),
        }
    }

    fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        let full = FeatureSchema::full();
        let input = full.project_from(schema, features, 0.0);
        let full_scores = self.forest.scores(&input);
        CauseRanking::from_scores(project_scores(&full_scores, &full, schema))
    }

    fn rank_causes_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        let full = FeatureSchema::full();
        let inputs: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| full.project_from(schema, r, 0.0))
            .collect();
        self.forest
            .scores_batch(&inputs)
            .par_iter()
            .map(|full_scores| {
                CauseRanking::from_scores(project_scores(full_scores, &full, schema))
            })
            .collect()
    }

    fn extend(&self, schema: &FeatureSchema) -> Result<ExtensionInfo, NnError> {
        extension_info(&self.train_schema, schema)
    }

    fn to_envelope(&self) -> BackendEnvelope {
        BackendEnvelope {
            format_version: BACKEND_FORMAT_VERSION,
            kind: BackendKind::Forest,
            payload: BackendPayload::Forest(self.clone()),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// The naive-Bayes baseline as a backend.
// ---------------------------------------------------------------------------

/// The NAIVE BAYES baseline of §IV-B(b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesBackend {
    /// The underlying extensible KDE naive Bayes (over the full space).
    pub model: ExtensibleNaiveBayes,
    /// Landmarks visible during training.
    pub train_schema: FeatureSchema,
}

impl BayesBackend {
    /// Train with the same protocol as the forest baseline; the visible
    /// feature set tells the model which features carry real measurements.
    pub fn train(
        config: &NaiveBayesConfig,
        train_data: &Dataset,
        train_schema: &FeatureSchema,
    ) -> Self {
        let full = FeatureSchema::full();
        let n_features = full.n_features();
        let (rows, labels) = training_rows_and_labels(train_data, train_schema);
        let kinds: Vec<usize> = (0..n_features)
            .map(|j| full.feature(j).kind_index())
            .collect();
        let visible: Vec<usize> = (0..n_features)
            .filter(|&j| train_schema.index_of(full.feature(j)).is_some())
            .collect();
        BayesBackend {
            model: ExtensibleNaiveBayes::fit(config, &rows, &labels, n_features, &kinds, &visible),
            train_schema: train_schema.clone(),
        }
    }
}

impl Backend for BayesBackend {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::NaiveBayes,
            name: BackendKind::NaiveBayes.label(),
            n_params: self.model.n_support_points(),
            supports_specialization: false,
            n_train_landmarks: self.train_schema.n_landmarks(),
        }
    }

    fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        let full = FeatureSchema::full();
        let input = full.project_from(schema, features, 0.0);
        let full_scores = self.model.scores(&input);
        CauseRanking::from_scores(project_scores(&full_scores, &full, schema))
    }

    fn rank_causes_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        let full = FeatureSchema::full();
        let inputs: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| full.project_from(schema, r, 0.0))
            .collect();
        self.model
            .scores_batch(&inputs)
            .par_iter()
            .map(|full_scores| {
                CauseRanking::from_scores(project_scores(full_scores, &full, schema))
            })
            .collect()
    }

    fn extend(&self, schema: &FeatureSchema) -> Result<ExtensionInfo, NnError> {
        extension_info(&self.train_schema, schema)
    }

    fn to_envelope(&self) -> BackendEnvelope {
        BackendEnvelope {
            format_version: BACKEND_FORMAT_VERSION,
            kind: BackendKind::NaiveBayes,
            payload: BackendPayload::NaiveBayes(self.clone()),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Versioned persistence envelope.
// ---------------------------------------------------------------------------

/// The serialised form of any backend: a format version, a kind tag, and the
/// model payload. [`backend_persist`](crate::backend_persist) writes/reads
/// this as JSON; old bare-`DiagNet` files (pre-envelope) are still accepted
/// on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackendEnvelope {
    /// Format revision, currently [`BACKEND_FORMAT_VERSION`].
    pub format_version: u32,
    /// Which implementation the payload holds (redundant with the payload
    /// tag, and cross-checked against it on load).
    pub kind: BackendKind,
    /// The model itself.
    pub payload: BackendPayload,
}

/// The model inside a [`BackendEnvelope`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum BackendPayload {
    /// A full DiagNet (network + auxiliary forest).
    DiagNet(Box<DiagNet>),
    /// The forest baseline.
    Forest(ForestBackend),
    /// The naive-Bayes baseline.
    NaiveBayes(BayesBackend),
}

impl BackendPayload {
    fn kind(&self) -> BackendKind {
        match self {
            BackendPayload::DiagNet(_) => BackendKind::DiagNet,
            BackendPayload::Forest(_) => BackendKind::Forest,
            BackendPayload::NaiveBayes(_) => BackendKind::NaiveBayes,
        }
    }
}

impl BackendEnvelope {
    /// Check version and kind/payload agreement.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.format_version != BACKEND_FORMAT_VERSION {
            return Err(NnError::Serialization(format!(
                "unsupported backend format version {} (expected {BACKEND_FORMAT_VERSION})",
                self.format_version
            )));
        }
        if self.kind != self.payload.kind() {
            return Err(NnError::Serialization(format!(
                "backend envelope kind `{}` does not match payload `{}`",
                self.kind,
                self.payload.kind()
            )));
        }
        Ok(())
    }

    /// Validate and unwrap into a servable backend.
    pub fn into_backend(self) -> Result<Box<dyn Backend>, NnError> {
        self.validate()?;
        Ok(match self.payload {
            BackendPayload::DiagNet(m) => m,
            BackendPayload::Forest(m) => Box::new(m),
            BackendPayload::NaiveBayes(m) => Box::new(m),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;

    fn data() -> (Dataset, Dataset) {
        let world = World::new();
        let ds = Dataset::generate(&world, &DatasetConfig::small(&world, 41)).expect("generate");
        let split = ds.split(0.8, 41);
        (split.train, split.test)
    }

    #[test]
    fn project_scores_renormalises() {
        let full = FeatureSchema::full();
        let known = FeatureSchema::known();
        let mut full_scores = vec![0.0f32; full.n_features()];
        // Put mass on the first two known features and one hidden feature.
        let a = full.index_of(known.feature(0)).unwrap();
        let b = full.index_of(known.feature(1)).unwrap();
        full_scores[a] = 0.2;
        full_scores[b] = 0.2;
        let hidden = full.unknown_relative_to(&known)[0];
        full_scores[hidden] = 0.6;
        let projected = project_scores(&full_scores, &full, &known);
        assert_eq!(projected.len(), known.n_features());
        assert!((projected.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((projected[0] - 0.5).abs() < 1e-6);
        assert!((projected[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn project_scores_identity_on_full_schema() {
        let full = FeatureSchema::full();
        let scores: Vec<f32> = (0..full.n_features()).map(|i| (i + 1) as f32).collect();
        let sum: f32 = scores.iter().sum();
        let projected = project_scores(&scores, &full, &full);
        for (p, s) in projected.iter().zip(&scores) {
            assert!((p - s / sum).abs() < 1e-6);
        }
    }

    #[test]
    fn training_rows_use_full_space_with_zero_fill() {
        let (train, _) = data();
        let known = FeatureSchema::known();
        let full = FeatureSchema::full();
        let (rows, labels) = training_rows_and_labels(&train, &known);
        assert_eq!(rows.len(), train.samples.len());
        assert_eq!(labels.len(), train.samples.len());
        let hidden = full.unknown_relative_to(&known);
        for row in &rows {
            assert_eq!(row.len(), full.n_features());
            for &j in &hidden {
                assert_eq!(row[j], 0.0, "hidden features must be zero-filled");
            }
        }
        // Labels are full-space cause indices or the nominal class.
        for &l in &labels {
            assert!(l <= full.n_features());
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in ALL_BACKENDS {
            assert_eq!(BackendKind::parse(kind.token()), Some(kind));
        }
        assert_eq!(
            BackendKind::parse("naive-bayes"),
            Some(BackendKind::NaiveBayes)
        );
        assert_eq!(BackendKind::parse("svm"), None);
    }

    #[test]
    fn extend_rejects_foreign_schema() {
        let (train, _) = data();
        let backend =
            ForestBackend::train(&ForestConfig::default(), &train, &FeatureSchema::known(), 1);
        // A one-landmark schema is a subset of full: accepted.
        let sub = FeatureSchema::new(vec![FeatureSchema::full().landmarks()[0]]);
        let info = Backend::extend(&backend, &sub).unwrap();
        assert_eq!(info.n_candidates, sub.n_features());
    }

    #[test]
    fn envelope_validation_catches_mismatches() {
        let (train, _) = data();
        let backend =
            ForestBackend::train(&ForestConfig::default(), &train, &FeatureSchema::known(), 1);
        let mut env = backend.to_envelope();
        assert!(env.validate().is_ok());
        env.kind = BackendKind::DiagNet;
        assert!(env.validate().is_err());
        let mut env2 = backend.to_envelope();
        env2.format_version = 99;
        assert!(env2.validate().is_err());
    }
}
