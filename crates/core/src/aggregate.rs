//! Cross-client incident aggregation.
//!
//! A single client's diagnosis is noisy; the paper's platform collects
//! probes "from multiple vantage points" (§V's crowd-sourcing discussion)
//! precisely because agreement across clients is what separates a real
//! regional incident from one user's bad Wi-Fi. This module fuses many
//! per-client cause rankings into one *incident map*: total evidence per
//! remote region and per local/uplink bucket.

use crate::ranking::CauseRanking;
use diagnet_sim::metrics::{CoarseFamily, FeatureId, FeatureSchema};
use diagnet_sim::region::Region;
use std::collections::BTreeMap;

/// Aggregated evidence for one candidate incident location.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentEvidence {
    /// Total score mass clients assigned to this location.
    pub mass: f32,
    /// Number of clients whose *top* cause points here.
    pub top_votes: usize,
    /// The dominant fault family among contributions.
    pub family: CoarseFamily,
}

/// A fused view over many clients' rankings.
#[derive(Debug, Clone, Default)]
pub struct IncidentMap {
    /// Evidence per remote region.
    pub remote: BTreeMap<Region, IncidentEvidence>,
    /// Evidence that causes are client-local (device or uplink).
    pub local_mass: f32,
    /// Number of rankings aggregated.
    pub n_clients: usize,
}

impl IncidentMap {
    /// Fuse rankings from many clients (all expressed in `schema`).
    ///
    /// # Panics
    /// Panics if a ranking's width mismatches the schema.
    pub fn build(rankings: &[CauseRanking], schema: &FeatureSchema) -> IncidentMap {
        let mut remote: BTreeMap<Region, (f32, usize, BTreeMap<CoarseFamily, f32>)> =
            BTreeMap::new();
        let mut local_mass = 0.0f32;
        for ranking in rankings {
            assert_eq!(
                ranking.scores.len(),
                schema.n_features(),
                "IncidentMap: ranking width mismatch"
            );
            let top = ranking.best();
            for (j, &score) in ranking.scores.iter().enumerate() {
                match schema.feature(j) {
                    FeatureId::Landmark(region, metric) => {
                        let entry = remote.entry(region).or_insert((0.0, 0, BTreeMap::new()));
                        entry.0 += score;
                        if j == top {
                            entry.1 += 1;
                        }
                        *entry.2.entry(metric.family()).or_insert(0.0) += score;
                    }
                    FeatureId::Local(_) => local_mass += score,
                }
            }
        }
        let remote = remote
            .into_iter()
            .map(|(region, (mass, top_votes, families))| {
                let family = families
                    .into_iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(f, _)| f)
                    .unwrap_or(CoarseFamily::Nominal);
                (
                    region,
                    IncidentEvidence {
                        mass,
                        top_votes,
                        family,
                    },
                )
            })
            .collect();
        IncidentMap {
            remote,
            local_mass,
            n_clients: rankings.len(),
        }
    }

    /// Regions ranked by evidence mass, strongest first.
    pub fn hotspots(&self) -> Vec<(Region, &IncidentEvidence)> {
        let mut entries: Vec<(Region, &IncidentEvidence)> =
            self.remote.iter().map(|(&r, e)| (r, e)).collect();
        entries.sort_by(|a, b| {
            b.1.mass
                .partial_cmp(&a.1.mass)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        entries
    }

    /// The single most implicated region, if any evidence exists.
    pub fn primary_suspect(&self) -> Option<(Region, &IncidentEvidence)> {
        self.hotspots().into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::metrics::{LandmarkMetric, LocalMetric};

    /// A ranking concentrating `weight` on one remote feature, the rest
    /// uniform.
    fn ranking_towards(
        schema: &FeatureSchema,
        region: Region,
        metric: LandmarkMetric,
        weight: f32,
    ) -> CauseRanking {
        let m = schema.n_features();
        let mut scores = vec![(1.0 - weight) / (m - 1) as f32; m];
        scores[schema
            .index_of(FeatureId::Landmark(region, metric))
            .unwrap()] = weight;
        CauseRanking {
            scores,
            coarse: vec![0.0; 7],
            w_unknown: 0.0,
        }
    }

    #[test]
    fn agreement_across_clients_concentrates_evidence() {
        let schema = FeatureSchema::full();
        let rankings: Vec<CauseRanking> = (0..10)
            .map(|_| ranking_towards(&schema, Region::Grav, LandmarkMetric::LossRetrans, 0.5))
            .collect();
        let map = IncidentMap::build(&rankings, &schema);
        assert_eq!(map.n_clients, 10);
        let (region, evidence) = map.primary_suspect().unwrap();
        assert_eq!(region, Region::Grav);
        assert_eq!(evidence.top_votes, 10);
        assert_eq!(evidence.family, CoarseFamily::LinkLoss);
        // GRAV's mass dwarfs every other region's.
        for (r, e) in map.hotspots().into_iter().skip(1) {
            assert!(evidence.mass > e.mass * 3.0, "region {r} too strong");
        }
    }

    #[test]
    fn disagreement_spreads_evidence() {
        let schema = FeatureSchema::full();
        let rankings = vec![
            ranking_towards(&schema, Region::Grav, LandmarkMetric::Rtt, 0.5),
            ranking_towards(&schema, Region::Sing, LandmarkMetric::Rtt, 0.5),
        ];
        let map = IncidentMap::build(&rankings, &schema);
        let hotspots = map.hotspots();
        assert_eq!(hotspots[0].1.top_votes, 1);
        assert_eq!(hotspots[1].1.top_votes, 1);
        assert!((hotspots[0].1.mass - hotspots[1].1.mass).abs() < 1e-4);
    }

    #[test]
    fn local_mass_accumulates() {
        let schema = FeatureSchema::full();
        // A uniform ranking has 5/55 of its mass on local features.
        let m = schema.n_features();
        let uniform = CauseRanking {
            scores: vec![1.0 / m as f32; m],
            coarse: vec![0.0; 7],
            w_unknown: 0.0,
        };
        let map = IncidentMap::build(&[uniform], &schema);
        assert!((map.local_mass - 5.0 / 55.0).abs() < 1e-5);
    }

    /// Golden rows: dyadic scores make every sum exact in f32, so the
    /// fused evidence is asserted bitwise, and fusing the same clients in
    /// a different order must produce the identical map. Guards the
    /// ordered-map conversion — any return to iteration-order-dependent
    /// aggregation breaks this, not a downstream report.
    #[test]
    fn golden_rows_are_bitwise_stable() {
        let schema = FeatureSchema::full();
        let m = schema.n_features();
        let idx = |f| schema.index_of(f).unwrap();
        let mk = |scores| CauseRanking {
            scores,
            coarse: vec![0.0; 7],
            w_unknown: 0.0,
        };
        let mut s1 = vec![0.0f32; m];
        s1[idx(FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt))] = 0.5;
        s1[idx(FeatureId::Landmark(
            Region::Grav,
            LandmarkMetric::LossRetrans,
        ))] = 0.25;
        s1[idx(FeatureId::Local(LocalMetric::CpuLoad))] = 0.25;
        let mut s2 = vec![0.0f32; m];
        s2[idx(FeatureId::Landmark(
            Region::Sing,
            LandmarkMetric::LossRetrans,
        ))] = 0.5;
        s2[idx(FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt))] = 0.25;
        s2[idx(FeatureId::Local(LocalMetric::CpuLoad))] = 0.25;
        let rankings = vec![mk(s1), mk(s2)];

        let map = IncidentMap::build(&rankings, &schema);
        assert_eq!(map.n_clients, 2);
        assert_eq!(map.local_mass, 0.5);
        let rows: Vec<(Region, IncidentEvidence)> = map
            .remote
            .iter()
            .filter(|(_, e)| e.mass > 0.0)
            .map(|(&r, e)| (r, e.clone()))
            .collect();
        assert_eq!(
            rows,
            vec![
                (
                    Region::Grav,
                    IncidentEvidence {
                        mass: 1.0,
                        top_votes: 1,
                        family: CoarseFamily::LinkLatency,
                    }
                ),
                (
                    Region::Sing,
                    IncidentEvidence {
                        mass: 0.5,
                        top_votes: 1,
                        family: CoarseFamily::LinkLoss,
                    }
                ),
            ]
        );

        let permuted = IncidentMap::build(&[rankings[1].clone(), rankings[0].clone()], &schema);
        assert_eq!(permuted.remote, map.remote);
        assert_eq!(permuted.local_mass, map.local_mass);
    }

    /// Equal family masses must resolve the same way every run: ordered
    /// iteration plus `max_by` (which keeps the *last* maximum) picks the
    /// largest tied family in enum order.
    #[test]
    fn family_tie_breaks_deterministically() {
        let schema = FeatureSchema::full();
        let m = schema.n_features();
        let mut s = vec![0.0f32; m];
        s[schema
            .index_of(FeatureId::Landmark(Region::Sing, LandmarkMetric::Rtt))
            .unwrap()] = 0.25;
        s[schema
            .index_of(FeatureId::Landmark(
                Region::Sing,
                LandmarkMetric::LossRetrans,
            ))
            .unwrap()] = 0.25;
        let map = IncidentMap::build(
            &[CauseRanking {
                scores: s,
                coarse: vec![0.0; 7],
                w_unknown: 0.0,
            }],
            &schema,
        );
        let evidence = &map.remote[&Region::Sing];
        assert_eq!(evidence.mass, 0.5);
        assert_eq!(
            evidence.family,
            CoarseFamily::LinkLatency.max(CoarseFamily::LinkLoss)
        );
    }

    #[test]
    fn empty_input_is_empty_map() {
        let schema = FeatureSchema::full();
        let map = IncidentMap::build(&[], &schema);
        assert!(map.primary_suspect().is_none());
        assert_eq!(map.n_clients, 0);
    }
}
