//! Cross-client incident aggregation.
//!
//! A single client's diagnosis is noisy; the paper's platform collects
//! probes "from multiple vantage points" (§V's crowd-sourcing discussion)
//! precisely because agreement across clients is what separates a real
//! regional incident from one user's bad Wi-Fi. This module fuses many
//! per-client cause rankings into one *incident map*: total evidence per
//! remote region and per local/uplink bucket.

use crate::ranking::CauseRanking;
use diagnet_sim::metrics::{CoarseFamily, FeatureId, FeatureSchema};
use diagnet_sim::region::Region;
use std::collections::HashMap;

/// Aggregated evidence for one candidate incident location.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentEvidence {
    /// Total score mass clients assigned to this location.
    pub mass: f32,
    /// Number of clients whose *top* cause points here.
    pub top_votes: usize,
    /// The dominant fault family among contributions.
    pub family: CoarseFamily,
}

/// A fused view over many clients' rankings.
#[derive(Debug, Clone, Default)]
pub struct IncidentMap {
    /// Evidence per remote region.
    pub remote: HashMap<Region, IncidentEvidence>,
    /// Evidence that causes are client-local (device or uplink).
    pub local_mass: f32,
    /// Number of rankings aggregated.
    pub n_clients: usize,
}

impl IncidentMap {
    /// Fuse rankings from many clients (all expressed in `schema`).
    ///
    /// # Panics
    /// Panics if a ranking's width mismatches the schema.
    pub fn build(rankings: &[CauseRanking], schema: &FeatureSchema) -> IncidentMap {
        let mut remote: HashMap<Region, (f32, usize, HashMap<CoarseFamily, f32>)> = HashMap::new();
        let mut local_mass = 0.0f32;
        for ranking in rankings {
            assert_eq!(
                ranking.scores.len(),
                schema.n_features(),
                "IncidentMap: ranking width mismatch"
            );
            let top = ranking.best();
            for (j, &score) in ranking.scores.iter().enumerate() {
                match schema.feature(j) {
                    FeatureId::Landmark(region, metric) => {
                        let entry = remote.entry(region).or_insert((0.0, 0, HashMap::new()));
                        entry.0 += score;
                        if j == top {
                            entry.1 += 1;
                        }
                        *entry.2.entry(metric.family()).or_insert(0.0) += score;
                    }
                    FeatureId::Local(_) => local_mass += score,
                }
            }
        }
        let remote = remote
            .into_iter()
            .map(|(region, (mass, top_votes, families))| {
                let family = families
                    .into_iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(f, _)| f)
                    .unwrap_or(CoarseFamily::Nominal);
                (
                    region,
                    IncidentEvidence {
                        mass,
                        top_votes,
                        family,
                    },
                )
            })
            .collect();
        IncidentMap {
            remote,
            local_mass,
            n_clients: rankings.len(),
        }
    }

    /// Regions ranked by evidence mass, strongest first.
    pub fn hotspots(&self) -> Vec<(Region, &IncidentEvidence)> {
        let mut entries: Vec<(Region, &IncidentEvidence)> =
            self.remote.iter().map(|(&r, e)| (r, e)).collect();
        entries.sort_by(|a, b| {
            b.1.mass
                .partial_cmp(&a.1.mass)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        entries
    }

    /// The single most implicated region, if any evidence exists.
    pub fn primary_suspect(&self) -> Option<(Region, &IncidentEvidence)> {
        self.hotspots().into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::metrics::LandmarkMetric;

    /// A ranking concentrating `weight` on one remote feature, the rest
    /// uniform.
    fn ranking_towards(
        schema: &FeatureSchema,
        region: Region,
        metric: LandmarkMetric,
        weight: f32,
    ) -> CauseRanking {
        let m = schema.n_features();
        let mut scores = vec![(1.0 - weight) / (m - 1) as f32; m];
        scores[schema
            .index_of(FeatureId::Landmark(region, metric))
            .unwrap()] = weight;
        CauseRanking {
            scores,
            coarse: vec![0.0; 7],
            w_unknown: 0.0,
        }
    }

    #[test]
    fn agreement_across_clients_concentrates_evidence() {
        let schema = FeatureSchema::full();
        let rankings: Vec<CauseRanking> = (0..10)
            .map(|_| ranking_towards(&schema, Region::Grav, LandmarkMetric::LossRetrans, 0.5))
            .collect();
        let map = IncidentMap::build(&rankings, &schema);
        assert_eq!(map.n_clients, 10);
        let (region, evidence) = map.primary_suspect().unwrap();
        assert_eq!(region, Region::Grav);
        assert_eq!(evidence.top_votes, 10);
        assert_eq!(evidence.family, CoarseFamily::LinkLoss);
        // GRAV's mass dwarfs every other region's.
        for (r, e) in map.hotspots().into_iter().skip(1) {
            assert!(evidence.mass > e.mass * 3.0, "region {r} too strong");
        }
    }

    #[test]
    fn disagreement_spreads_evidence() {
        let schema = FeatureSchema::full();
        let rankings = vec![
            ranking_towards(&schema, Region::Grav, LandmarkMetric::Rtt, 0.5),
            ranking_towards(&schema, Region::Sing, LandmarkMetric::Rtt, 0.5),
        ];
        let map = IncidentMap::build(&rankings, &schema);
        let hotspots = map.hotspots();
        assert_eq!(hotspots[0].1.top_votes, 1);
        assert_eq!(hotspots[1].1.top_votes, 1);
        assert!((hotspots[0].1.mass - hotspots[1].1.mass).abs() < 1e-4);
    }

    #[test]
    fn local_mass_accumulates() {
        let schema = FeatureSchema::full();
        // A uniform ranking has 5/55 of its mass on local features.
        let m = schema.n_features();
        let uniform = CauseRanking {
            scores: vec![1.0 / m as f32; m],
            coarse: vec![0.0; 7],
            w_unknown: 0.0,
        };
        let map = IncidentMap::build(&[uniform], &schema);
        assert!((map.local_mass - 5.0 / 55.0).abs() < 1e-5);
    }

    #[test]
    fn empty_input_is_empty_map() {
        let schema = FeatureSchema::full();
        let map = IncidentMap::build(&[], &schema);
        assert!(map.primary_suspect().is_none());
        assert_eq!(map.n_clients, 0);
    }
}
