//! Gradient-based attention (paper §III-E).
//!
//! DiagNet returns from the coarse fault-family prediction to the input
//! feature space by backpropagating the *ideal-label* cross-entropy loss
//! `L* = −log y_argmax(y)` down to the input features and normalising the
//! absolute partial derivatives (Eq. 1):
//!
//! ```text
//! γ̂_j = |∇_j| / Σ_k |∇_k|,     ∇_j = ∂L*/∂x_j
//! ```
//!
//! A large `γ̂_j` means feature `j` strongly influences the model's most
//! confident coarse prediction — the white-box analogue of Grad-CAM-style
//! saliency, exploiting full knowledge of the network's weights.

use diagnet_nn::loss::{ideal_label_grad, ideal_label_grad_into};
use diagnet_nn::network::Network;
use diagnet_nn::tensor::Matrix;
use diagnet_nn::workspace::{BackwardWorkspace, ForwardWorkspace};

/// Eq. 1: normalised absolute gradients. Falls back to uniform when all
/// gradients vanish (a perfectly confident prediction). Allocating wrapper
/// around [`normalize_gradients_into`].
pub fn normalize_gradients(grads: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; grads.len()];
    normalize_gradients_into(grads, &mut out);
    out
}

/// Eq. 1 into a caller-provided slice of the same length — bit-identical
/// to [`normalize_gradients`], zero allocations.
///
/// # Panics
/// Panics if `out.len() != grads.len()`.
// lint: no_alloc
pub fn normalize_gradients_into(grads: &[f32], out: &mut [f32]) {
    assert_eq!(
        out.len(),
        grads.len(),
        "normalize_gradients: length mismatch"
    );
    let total: f32 = grads.iter().map(|g| g.abs()).sum();
    if total <= 0.0 || !total.is_finite() {
        out.fill(1.0 / grads.len() as f32);
        return;
    }
    for (o, g) in out.iter_mut().zip(grads) {
        *o = g.abs() / total;
    }
}

/// Reusable buffers for the fused saliency backward: the forward pass's
/// activations serve both the caller's coarse-probability read (via
/// [`SaliencyWorkspace::logits`]) and the ideal-label backward, and every
/// intermediate lives in the workspace — steady-state scoring never
/// touches the allocator. Create once per thread (or scoring session) and
/// pass to [`attention_scores_batch_ws`].
#[derive(Debug)]
pub struct SaliencyWorkspace {
    pub(crate) fws: ForwardWorkspace,
    pub(crate) bws: BackwardWorkspace,
}

impl SaliencyWorkspace {
    /// An empty workspace shaped for `network` (buffers grow on first use).
    pub fn new(network: &Network) -> Self {
        SaliencyWorkspace {
            fws: ForwardWorkspace::new(network),
            bws: BackwardWorkspace::new(network),
        }
    }

    /// Whether this workspace was shaped for `network`'s architecture.
    /// Long-lived holders use this to rebuild after a model swap.
    pub fn matches(&self, network: &Network) -> bool {
        self.fws.matches(network)
    }

    /// The logits of the last [`attention_scores_batch_ws`] forward pass
    /// (the backward only reads the forward state, so these stay valid).
    pub fn logits(&self) -> &Matrix {
        self.fws.output()
    }

    /// The raw input gradient of the last backward pass, one row per
    /// sample (before Eq. 1 normalisation).
    pub fn input_grad(&self) -> &Matrix {
        self.bws.input_grad()
    }
}

/// Attention scores `γ̂` for one (already normalised) input row.
pub fn attention_scores(network: &Network, normalized_row: &[f32]) -> Vec<f32> {
    let x = Matrix::from_row(normalized_row.to_vec());
    let grad = network.input_gradient(&x, ideal_label_grad);
    normalize_gradients(grad.row(0))
}

/// Attention scores for a batch of rows (one γ̂ vector per row). The
/// backward pass runs over the whole batch at once; per-row gradients are
/// then normalised independently. Allocating wrapper around
/// [`attention_scores_batch_ws`].
pub fn attention_scores_batch(network: &Network, rows: &Matrix) -> Vec<Vec<f32>> {
    let mut ws = SaliencyWorkspace::new(network);
    let mut gammas = Matrix::zeros(0, 0);
    attention_scores_batch_ws(network, rows, &mut ws, &mut gammas);
    (0..gammas.rows()).map(|i| gammas.row(i).to_vec()).collect()
}

/// Fused batched attention: **one** cached forward pass feeds both the
/// logits (readable afterwards via [`SaliencyWorkspace::logits`], e.g. for
/// the coarse softmax) and the ideal-label backward; `gammas` receives one
/// Eq.-1-normalised row per sample. Zero heap allocations once `ws` and
/// `gammas` are warm. Scores are bit-identical to
/// [`attention_scores_batch`].
// lint: no_alloc
pub fn attention_scores_batch_ws(
    network: &Network,
    rows: &Matrix,
    ws: &mut SaliencyWorkspace,
    gammas: &mut Matrix,
) {
    network.input_gradient_ws(rows, &mut ws.fws, &mut ws.bws, ideal_label_grad_into);
    let grad = ws.bws.input_grad();
    gammas.resize(grad.rows(), grad.cols()); // lint: allow(no_alloc, reason = "grows the caller's scratch once per batch size; steady-state calls reuse it")
    for i in 0..grad.rows() {
        normalize_gradients_into(grad.row(i), gammas.row_mut(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_nn::layer::Layer;
    use diagnet_nn::optim::SgdNesterov;
    use diagnet_nn::train::{TrainConfig, Trainer};
    use diagnet_rng::SplitMix64;

    #[test]
    fn normalisation_sums_to_one_and_uses_abs() {
        let g = normalize_gradients(&[-2.0, 1.0, 1.0]);
        assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((g[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_gradients_fall_back_to_uniform() {
        let g = normalize_gradients(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(g, vec![0.25; 4]);
    }

    /// Train a classifier where only feature 0 carries signal; attention
    /// must concentrate on it.
    #[test]
    fn attention_finds_the_informative_feature() {
        let mut rng = SplitMix64::new(1);
        let n = 300;
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let signal = if cls == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                rng.normal_with(signal, 0.3),
                rng.normal_with(0.0, 1.0),
                rng.normal_with(0.0, 1.0),
            ]);
            y.push(cls);
        }
        let x = Matrix::from_rows(&rows);
        let mut net = Network::new(vec![
            Layer::dense(3, 16, 1),
            Layer::relu(),
            Layer::dense(16, 2, 2),
        ]);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };
        Trainer::new(cfg, SgdNesterov::new(0.1, 0.9, 0.0))
            .fit(&mut net, &x, &y, None, 5)
            .unwrap();
        // Average attention over many samples.
        let mut mean = vec![0.0f32; 3];
        for row in rows.iter().take(100) {
            let a = attention_scores(&net, row);
            for (m, v) in mean.iter_mut().zip(&a) {
                *m += v;
            }
        }
        assert!(
            mean[0] > mean[1] * 2.0 && mean[0] > mean[2] * 2.0,
            "attention should focus on feature 0: {mean:?}"
        );
    }

    #[test]
    fn workspace_reuse_is_bitwise_stable_across_batches() {
        let net = Network::new(vec![
            Layer::dense(4, 8, 3),
            Layer::relu(),
            Layer::dense(8, 3, 4),
        ]);
        let mut rng = SplitMix64::new(11);
        let mut mk = |n: usize| {
            Matrix::from_rows(
                &(0..n)
                    .map(|_| (0..4).map(|_| rng.normal()).collect())
                    .collect::<Vec<Vec<f32>>>(),
            )
        };
        let (a, b) = (mk(5), mk(3));
        let mut ws = SaliencyWorkspace::new(&net);
        assert!(ws.matches(&net));
        let mut gammas = Matrix::zeros(0, 0);
        // Warm (and dirty) the buffers on a larger batch, then shrink.
        attention_scores_batch_ws(&net, &a, &mut ws, &mut gammas);
        attention_scores_batch_ws(&net, &b, &mut ws, &mut gammas);
        let fresh = attention_scores_batch(&net, &b);
        assert_eq!(gammas.rows(), fresh.len());
        for (i, row) in fresh.iter().enumerate() {
            assert_eq!(gammas.row(i), row.as_slice());
        }
        // The fused forward's logits must match a plain forward pass.
        assert_eq!(ws.logits().data(), net.forward(&b).data());
    }

    #[test]
    fn batch_matches_single() {
        let net = Network::new(vec![
            Layer::dense(4, 8, 3),
            Layer::relu(),
            Layer::dense(8, 3, 4),
        ]);
        let mut rng = SplitMix64::new(9);
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..4).map(|_| rng.normal()).collect())
            .collect();
        let batch = attention_scores_batch(&net, &Matrix::from_rows(&rows));
        for (row, b) in rows.iter().zip(&batch) {
            let single = attention_scores(&net, row);
            for (s, bb) in single.iter().zip(b) {
                assert!((s - bb).abs() < 1e-5);
            }
        }
    }
}
