//! Gradient-based attention (paper §III-E).
//!
//! DiagNet returns from the coarse fault-family prediction to the input
//! feature space by backpropagating the *ideal-label* cross-entropy loss
//! `L* = −log y_argmax(y)` down to the input features and normalising the
//! absolute partial derivatives (Eq. 1):
//!
//! ```text
//! γ̂_j = |∇_j| / Σ_k |∇_k|,     ∇_j = ∂L*/∂x_j
//! ```
//!
//! A large `γ̂_j` means feature `j` strongly influences the model's most
//! confident coarse prediction — the white-box analogue of Grad-CAM-style
//! saliency, exploiting full knowledge of the network's weights.

use diagnet_nn::loss::ideal_label_grad;
use diagnet_nn::network::Network;
use diagnet_nn::tensor::Matrix;

/// Eq. 1: normalised absolute gradients. Falls back to uniform when all
/// gradients vanish (a perfectly confident prediction).
pub fn normalize_gradients(grads: &[f32]) -> Vec<f32> {
    let total: f32 = grads.iter().map(|g| g.abs()).sum();
    if total <= 0.0 || !total.is_finite() {
        return vec![1.0 / grads.len() as f32; grads.len()];
    }
    grads.iter().map(|g| g.abs() / total).collect()
}

/// Attention scores `γ̂` for one (already normalised) input row.
pub fn attention_scores(network: &Network, normalized_row: &[f32]) -> Vec<f32> {
    let x = Matrix::from_row(normalized_row.to_vec());
    let grad = network.input_gradient(&x, ideal_label_grad);
    normalize_gradients(grad.row(0))
}

/// Attention scores for a batch of rows (one γ̂ vector per row). The
/// backward pass runs over the whole batch at once; per-row gradients are
/// then normalised independently.
pub fn attention_scores_batch(network: &Network, rows: &Matrix) -> Vec<Vec<f32>> {
    let grad = network.input_gradient(rows, ideal_label_grad);
    (0..grad.rows())
        .map(|i| normalize_gradients(grad.row(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_nn::layer::Layer;
    use diagnet_nn::optim::SgdNesterov;
    use diagnet_nn::train::{TrainConfig, Trainer};
    use diagnet_rng::SplitMix64;

    #[test]
    fn normalisation_sums_to_one_and_uses_abs() {
        let g = normalize_gradients(&[-2.0, 1.0, 1.0]);
        assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((g[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_gradients_fall_back_to_uniform() {
        let g = normalize_gradients(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(g, vec![0.25; 4]);
    }

    /// Train a classifier where only feature 0 carries signal; attention
    /// must concentrate on it.
    #[test]
    fn attention_finds_the_informative_feature() {
        let mut rng = SplitMix64::new(1);
        let n = 300;
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let signal = if cls == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                rng.normal_with(signal, 0.3),
                rng.normal_with(0.0, 1.0),
                rng.normal_with(0.0, 1.0),
            ]);
            y.push(cls);
        }
        let x = Matrix::from_rows(&rows);
        let mut net = Network::new(vec![
            Layer::dense(3, 16, 1),
            Layer::relu(),
            Layer::dense(16, 2, 2),
        ]);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };
        Trainer::new(cfg, SgdNesterov::new(0.1, 0.9, 0.0))
            .fit(&mut net, &x, &y, None, 5)
            .unwrap();
        // Average attention over many samples.
        let mut mean = vec![0.0f32; 3];
        for row in rows.iter().take(100) {
            let a = attention_scores(&net, row);
            for (m, v) in mean.iter_mut().zip(&a) {
                *m += v;
            }
        }
        assert!(
            mean[0] > mean[1] * 2.0 && mean[0] > mean[2] * 2.0,
            "attention should focus on feature 0: {mean:?}"
        );
    }

    #[test]
    fn batch_matches_single() {
        let net = Network::new(vec![
            Layer::dense(4, 8, 3),
            Layer::relu(),
            Layer::dense(8, 3, 4),
        ]);
        let mut rng = SplitMix64::new(9);
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..4).map(|_| rng.normal()).collect())
            .collect();
        let batch = attention_scores_batch(&net, &Matrix::from_rows(&rows));
        for (row, b) in rows.iter().zip(&batch) {
            let single = attention_scores(&net, row);
            for (s, bb) in single.iter().zip(b) {
                assert!((s - bb).abs() < 1e-5);
            }
        }
    }
}
