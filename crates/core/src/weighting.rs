//! Multi-label score weighting (paper Algorithm 1).
//!
//! Raw gradient attention alone "gave inaccurate results" (§III-E) because
//! it does not fully exploit the coarse classifier's verdict. Algorithm 1
//! fixes this: features belonging to the same fault family as the most
//! probable coarse class receive a *bonus* (their collective mass is
//! raised to the model's confidence `w`), everything else a *penalty*
//! (scaled to `1 − w`). By construction the result stays normalised.

use diagnet_sim::metrics::{CoarseFamily, FeatureSchema};

/// Tolerance for the "extreme case" guard of Algorithm 1 line 4.
const EXTREME_EPS: f32 = 1e-6;

/// Apply Algorithm 1.
///
/// * `gamma` — normalised attention scores γ̂ (one per feature of
///   `schema`);
/// * `coarse` — the coarse prediction y (probabilities over the 7 coarse
///   families, `Nominal` first).
///
/// Returns the tuned scores γ̂′.
///
/// # Panics
/// Panics if `gamma.len() != schema.n_features()` or `coarse` is empty.
pub fn weight_scores(gamma: &[f32], coarse: &[f32], schema: &FeatureSchema) -> Vec<f32> {
    assert_eq!(
        gamma.len(),
        schema.n_features(),
        "weight_scores: gamma width mismatch"
    );
    assert!(!coarse.is_empty(), "weight_scores: empty coarse prediction");

    // Line 1: isolate the best coarse prediction.
    let phi = coarse
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("non-empty coarse");
    // Line 2: features of the same family as φ.
    let family = CoarseFamily::from_index(phi);
    let p = schema.indices_of_family(family);
    if p.is_empty() {
        // φ = Nominal (no feature maps to it): nothing to boost.
        return gamma.to_vec();
    }
    // Line 3: relative weight w and related-features mass s.
    let coarse_sum: f32 = coarse.iter().sum();
    if coarse_sum <= 0.0 {
        return gamma.to_vec();
    }
    let w = coarse[phi] / coarse_sum;
    let s: f32 = p.iter().map(|&j| gamma[j]).sum();
    // Line 4: extreme cases — nothing to redistribute.
    if s <= EXTREME_EPS || s >= 1.0 - EXTREME_EPS {
        return gamma.to_vec();
    }
    // Lines 6–7: bonus for family members, penalty for the rest.
    let bonus = w / s;
    let penalty = (1.0 - w) / (1.0 - s);
    let mut in_family = vec![false; gamma.len()];
    for &j in &p {
        in_family[j] = true;
    }
    gamma
        .iter()
        .zip(&in_family)
        .map(|(&g, &fam)| if fam { g * bonus } else { g * penalty })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::metrics::{FeatureId, LandmarkMetric};
    use diagnet_sim::region::Region;

    fn uniform_gamma(schema: &FeatureSchema) -> Vec<f32> {
        vec![1.0 / schema.n_features() as f32; schema.n_features()]
    }

    /// Coarse vector with probability `p` on `family` and the rest spread.
    fn coarse_for(family: CoarseFamily, p: f32) -> Vec<f32> {
        let mut y = vec![(1.0 - p) / 6.0; 7];
        y[family.index()] = p;
        y
    }

    #[test]
    fn output_stays_normalised() {
        let schema = FeatureSchema::full();
        let gamma = uniform_gamma(&schema);
        let y = coarse_for(CoarseFamily::LinkLatency, 0.8);
        let tuned = weight_scores(&gamma, &y, &schema);
        assert!((tuned.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn family_features_boosted_others_penalised() {
        let schema = FeatureSchema::full();
        let gamma = uniform_gamma(&schema);
        let y = coarse_for(CoarseFamily::LinkLatency, 0.9);
        let tuned = weight_scores(&gamma, &y, &schema);
        let rtt = schema
            .index_of(FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt))
            .unwrap();
        let bw = schema
            .index_of(FeatureId::Landmark(Region::Grav, LandmarkMetric::DownBw))
            .unwrap();
        assert!(tuned[rtt] > gamma[rtt], "latency feature must gain");
        assert!(tuned[bw] < gamma[bw], "bandwidth feature must lose");
    }

    #[test]
    fn family_mass_equals_model_confidence() {
        // After weighting, the family's collective mass is exactly w.
        let schema = FeatureSchema::full();
        let gamma = uniform_gamma(&schema);
        let y = coarse_for(CoarseFamily::LinkLoss, 0.7);
        let tuned = weight_scores(&gamma, &y, &schema);
        let mass: f32 = schema
            .indices_of_family(CoarseFamily::LinkLoss)
            .iter()
            .map(|&j| tuned[j])
            .sum();
        assert!((mass - 0.7).abs() < 1e-4, "family mass = {mass}");
    }

    #[test]
    fn nominal_prediction_leaves_gamma_unchanged() {
        let schema = FeatureSchema::full();
        let gamma = uniform_gamma(&schema);
        let y = coarse_for(CoarseFamily::Nominal, 0.95);
        assert_eq!(weight_scores(&gamma, &y, &schema), gamma);
    }

    #[test]
    fn extreme_s_zero_short_circuits() {
        let schema = FeatureSchema::full();
        // All attention on local features; predicted family = LinkJitter
        // whose features carry zero mass.
        let mut gamma = vec![0.0f32; schema.n_features()];
        let local = schema
            .index_of(FeatureId::Local(diagnet_sim::LocalMetric::CpuLoad))
            .unwrap();
        gamma[local] = 1.0;
        let y = coarse_for(CoarseFamily::LinkJitter, 0.8);
        assert_eq!(weight_scores(&gamma, &y, &schema), gamma);
    }

    #[test]
    fn extreme_s_one_short_circuits() {
        let schema = FeatureSchema::full();
        // All attention inside the predicted family.
        let mut gamma = vec![0.0f32; schema.n_features()];
        let fam = schema.indices_of_family(CoarseFamily::LinkLatency);
        for &j in &fam {
            gamma[j] = 1.0 / fam.len() as f32;
        }
        let y = coarse_for(CoarseFamily::LinkLatency, 0.6);
        assert_eq!(weight_scores(&gamma, &y, &schema), gamma);
    }

    #[test]
    fn low_confidence_softens_the_boost() {
        let schema = FeatureSchema::full();
        let gamma = uniform_gamma(&schema);
        let confident = weight_scores(&gamma, &coarse_for(CoarseFamily::LinkJitter, 0.9), &schema);
        let hesitant = weight_scores(&gamma, &coarse_for(CoarseFamily::LinkJitter, 0.4), &schema);
        let j = schema.indices_of_family(CoarseFamily::LinkJitter)[0];
        assert!(confident[j] > hesitant[j]);
    }

    #[test]
    fn works_on_reduced_schema() {
        let schema = FeatureSchema::known();
        let gamma = uniform_gamma(&schema);
        let y = coarse_for(CoarseFamily::LinkBandwidth, 0.75);
        let tuned = weight_scores(&gamma, &y, &schema);
        assert_eq!(tuned.len(), 40);
        assert!((tuned.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "gamma width mismatch")]
    fn rejects_bad_width() {
        let schema = FeatureSchema::full();
        weight_scores(
            &[0.1, 0.9],
            &coarse_for(CoarseFamily::LinkLoss, 0.5),
            &schema,
        );
    }
}
