//! Property-based tests of DiagNet's pipeline stages: Algorithm 1's
//! normalisation guarantee, ensemble convexity and attention
//! normalisation, over arbitrary inputs.

use diagnet::attention::normalize_gradients;
use diagnet::ensemble::ensemble_average;
use diagnet::model::balanced_class_weights;
use diagnet::normalize::stabilize;
use diagnet::weighting::weight_scores;
use diagnet_sim::metrics::FeatureSchema;
use proptest::prelude::*;

/// A normalised attention vector over the full 55-feature schema.
fn gamma() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..1.0, 55).prop_map(|mut v| {
        let sum: f32 = v.iter().sum();
        if sum > 0.0 {
            for x in &mut v {
                *x /= sum;
            }
        } else {
            v = vec![1.0 / 55.0; 55];
        }
        v
    })
}

/// A coarse probability vector over the 7 families.
fn coarse() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.01f32..1.0, 7).prop_map(|mut v| {
        let sum: f32 = v.iter().sum();
        for x in &mut v {
            *x /= sum;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 always returns a normalised vector ("By construction,
    /// Algorithm 1 always returns a normalized vector").
    #[test]
    fn weighting_preserves_normalisation(g in gamma(), y in coarse()) {
        let schema = FeatureSchema::full();
        let tuned = weight_scores(&g, &y, &schema);
        prop_assert_eq!(tuned.len(), 55);
        prop_assert!(tuned.iter().all(|&v| v >= 0.0));
        let sum: f32 = tuned.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    /// Algorithm 1 never moves mass *into* a family beyond the model's
    /// confidence, and the relative order within the boosted family is
    /// preserved.
    #[test]
    fn weighting_order_preserved_within_family(g in gamma(), y in coarse()) {
        let schema = FeatureSchema::full();
        let tuned = weight_scores(&g, &y, &schema);
        let phi = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let family = diagnet_sim::metrics::CoarseFamily::from_index(phi);
        let members = schema.indices_of_family(family);
        for pair in members.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // Same multiplicative factor → order among members preserved.
            prop_assert_eq!(g[a] > g[b], tuned[a] > tuned[b]);
        }
    }

    /// The ensemble is a convex combination: bounded by min/max of its
    /// inputs per coordinate.
    #[test]
    fn ensemble_convexity(g in gamma(), a in gamma(), unknown_mask in 0u64..(1 << 16)) {
        let unknown: Vec<usize> =
            (0..16).filter(|i| unknown_mask & (1 << i) != 0).map(|i| i * 3).collect();
        let (out, w) = ensemble_average(&g, &a, &unknown);
        prop_assert!((0.0..=1.0).contains(&w));
        for i in 0..55 {
            let lo = g[i].min(a[i]) - 1e-6;
            let hi = g[i].max(a[i]) + 1e-6;
            prop_assert!(out[i] >= lo && out[i] <= hi);
        }
        // Blended distributions stay normalised.
        let sum: f32 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
    }

    /// Attention normalisation: output sums to 1 and is scale-invariant in
    /// the gradients.
    #[test]
    fn attention_normalisation(grads in prop::collection::vec(-5.0f32..5.0, 1..60), scale in 0.1f32..100.0) {
        let n1 = normalize_gradients(&grads);
        prop_assert!((n1.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        let scaled: Vec<f32> = grads.iter().map(|g| g * scale).collect();
        let n2 = normalize_gradients(&scaled);
        for (a, b) in n1.iter().zip(&n2) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Class weights: positive, sample-mean ≈ 1, rarer classes weigh more.
    #[test]
    fn class_weights_sane(labels in prop::collection::vec(0usize..7, 10..300)) {
        let w = balanced_class_weights(&labels, 7);
        prop_assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
        let mean: f32 =
            labels.iter().map(|&l| w[l]).sum::<f32>() / labels.len() as f32;
        prop_assert!((mean - 1.0).abs() < 1e-3, "mean {mean}");
        // Monotone: if class a occurs more often than class b (both
        // present), then weight(a) <= weight(b).
        let mut counts = [0usize; 7];
        for &l in &labels {
            counts[l] += 1;
        }
        for a in 0..7 {
            for b in 0..7 {
                if counts[a] > counts[b] && counts[b] > 0 {
                    prop_assert!(w[a] <= w[b] + 1e-6);
                }
            }
        }
    }

    /// The stabilising transform is monotone per kind (order-preserving,
    /// so rankings of raw values survive normalisation).
    #[test]
    fn stabilize_monotone(kind in 0usize..10, a in 0.0f32..1000.0, b in 0.0f32..1000.0) {
        let (fa, fb) = (stabilize(kind, a), stabilize(kind, b));
        if a < b {
            prop_assert!(fa <= fb);
        }
        prop_assert!(fa.is_finite());
    }
}
