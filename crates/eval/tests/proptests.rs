//! Property-based tests of the evaluation metrics.

use diagnet_eval::ranking::rank_of_truth;
use diagnet_eval::{
    accuracy, accuracy_with_ci, grouped_recall_at_k, recall_at_k, recall_curve, ConfusionMatrix,
};
use proptest::prelude::*;

/// Samples: score vectors with a designated truth index.
fn ranked_samples() -> impl Strategy<Value = Vec<(Vec<f32>, usize)>> {
    prop::collection::vec(
        (prop::collection::vec(0.0f32..1.0, 2..12), 0usize..100).prop_map(|(scores, t)| {
            let truth = t % scores.len();
            (scores, truth)
        }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recall is within [0, 1], non-decreasing in k, and reaches 1 at
    /// k = n_causes.
    #[test]
    fn recall_bounds_and_monotonicity(samples in ranked_samples()) {
        let max_causes = samples.iter().map(|(s, _)| s.len()).max().unwrap();
        let curve = recall_curve(&samples, max_causes);
        prop_assert!(curve.iter().all(|&r| (0.0..=1.0).contains(&r)));
        for w in curve.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // At k = width every truth is found (for uniform-width samples).
        if samples.iter().all(|(s, _)| s.len() == max_causes) {
            prop_assert_eq!(*curve.last().unwrap(), 1.0);
        }
        // Point queries agree with the curve.
        for k in 1..=max_causes {
            prop_assert_eq!(curve[k - 1], recall_at_k(&samples, k));
        }
    }

    /// The rank of the truth is a valid index and improves when its score
    /// is raised above everything.
    #[test]
    fn rank_bounds_and_improvement(mut scores in prop::collection::vec(0.0f32..1.0, 2..12), pick in 0usize..12) {
        let truth = pick % scores.len();
        let rank = rank_of_truth(&scores, truth);
        prop_assert!(rank < scores.len());
        scores[truth] = 2.0; // strictly above everything
        prop_assert_eq!(rank_of_truth(&scores, truth), 0);
    }

    /// Accuracy is symmetric in permutation of the sample order.
    #[test]
    fn accuracy_order_invariant(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..50)) {
        let preds: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let truths: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let a1 = accuracy(&preds, &truths);
        let mut rev_p = preds.clone();
        rev_p.reverse();
        let mut rev_t = truths.clone();
        rev_t.reverse();
        prop_assert_eq!(a1, accuracy(&rev_p, &rev_t));
        let (acc, ci) = accuracy_with_ci(&preds, &truths);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((0.0..=1.0).contains(&ci));
    }

    /// Confusion-matrix marginals: per-class precision/recall/F1 in
    /// [0, 1], trace/total = accuracy.
    #[test]
    fn confusion_matrix_consistent(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..60)) {
        let preds: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let truths: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let cm = ConfusionMatrix::from_predictions(&preds, &truths, 4);
        prop_assert_eq!(cm.total(), pairs.len());
        prop_assert!((cm.accuracy() - accuracy(&preds, &truths)).abs() < 1e-6);
        for c in 0..4 {
            for v in [cm.precision(c), cm.recall(c), cm.f1(c)] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
    }

    /// Grouped recall aggregates exactly like per-group filtering.
    #[test]
    fn grouped_recall_matches_manual_grouping(samples in ranked_samples(), k in 1usize..5) {
        let grouped: Vec<(u8, Vec<f32>, usize)> = samples
            .iter()
            .enumerate()
            .map(|(i, (s, t))| ((i % 3) as u8, s.clone(), *t))
            .collect();
        let result = grouped_recall_at_k(&grouped, k);
        for g in 0u8..3 {
            let manual: Vec<(Vec<f32>, usize)> = grouped
                .iter()
                .filter(|(gg, _, _)| *gg == g)
                .map(|(_, s, t)| (s.clone(), *t))
                .collect();
            if manual.is_empty() {
                prop_assert!(!result.contains_key(&g));
            } else {
                let (r, n) = result[&g];
                prop_assert_eq!(n, manual.len());
                prop_assert!((r - recall_at_k(&manual, k)).abs() < 1e-6);
            }
        }
    }
}
