//! # diagnet-eval — evaluation metrics for root-cause analysis
//!
//! Implements every metric the paper reports:
//!
//! * [`ranking`] — **Recall@k** (§IV-C): given a ranked list of candidate
//!   causes and the true cause, the fraction of samples whose true cause
//!   appears within the first k predictions. Used for Figs. 5, 6, 8, 10
//!   and the headline 73.9 % Recall@1.
//! * [`classify`] — accuracy with a normal-approximation confidence
//!   interval (Fig. 7 reports 0.85 ± 0.005 / 0.70 ± 0.013), confusion
//!   matrices, and per-class precision / recall / **F1** (Fig. 7).
//! * [`breakdown`] — grouped recall (per fault family, per region, per
//!   service — the slices of Figs. 6 and 10).
//! * [`calibration`] — Brier score and expected calibration error for the
//!   coarse classifier, whose confidences drive Algorithm 1 and `w_U`.

pub mod breakdown;
pub mod calibration;
pub mod classify;
pub mod ranking;

pub use breakdown::grouped_recall_at_k;
pub use calibration::{brier_score, expected_calibration_error};
pub use classify::{accuracy, accuracy_with_ci, ConfusionMatrix};
pub use ranking::{mean_reciprocal_rank, rank_of_truth, recall_at_k, recall_curve, spearman_rho};
