//! Probability-calibration metrics for the coarse classifier.
//!
//! The attention mechanism consumes the coarse classifier's *confidence*
//! (Algorithm 1's `w`), and ensemble averaging consumes `w_U` — both are
//! only meaningful if predicted probabilities track empirical accuracy.
//! These metrics quantify that:
//!
//! * **Brier score** — mean squared error between the predicted
//!   distribution and the one-hot truth (lower is better; 0 is perfect);
//! * **Expected calibration error (ECE)** — the confidence-weighted gap
//!   between predicted confidence and empirical accuracy over equal-width
//!   confidence bins.

/// Mean multi-class Brier score.
///
/// # Panics
/// Panics if shapes are inconsistent or a truth index is out of range.
pub fn brier_score(probs: &[Vec<f32>], truths: &[usize]) -> f32 {
    assert_eq!(probs.len(), truths.len(), "brier_score: length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    for (p, &t) in probs.iter().zip(truths) {
        assert!(t < p.len(), "brier_score: truth {t} out of range");
        for (j, &pj) in p.iter().enumerate() {
            let target = if j == t { 1.0 } else { 0.0 };
            total += (pj - target) * (pj - target);
        }
    }
    total / probs.len() as f32
}

/// Expected calibration error with `n_bins` equal-width confidence bins.
///
/// # Panics
/// Panics on inconsistent shapes or `n_bins == 0`.
pub fn expected_calibration_error(probs: &[Vec<f32>], truths: &[usize], n_bins: usize) -> f32 {
    assert_eq!(probs.len(), truths.len(), "ece: length mismatch");
    assert!(n_bins > 0, "ece: need at least one bin");
    if probs.is_empty() {
        return 0.0;
    }
    // Per bin: (count, confidence sum, correct count).
    let mut bins = vec![(0usize, 0.0f32, 0usize); n_bins];
    for (p, &t) in probs.iter().zip(truths) {
        assert!(t < p.len(), "ece: truth {t} out of range");
        let (pred, conf) = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &v)| (i, v))
            .expect("non-empty row");
        let bin = ((conf * n_bins as f32) as usize).min(n_bins - 1);
        bins[bin].0 += 1;
        bins[bin].1 += conf;
        bins[bin].2 += usize::from(pred == t);
    }
    let n = probs.len() as f32;
    bins.iter()
        .filter(|(count, _, _)| *count > 0)
        .map(|&(count, conf_sum, correct)| {
            let avg_conf = conf_sum / count as f32;
            let accuracy = correct as f32 / count as f32;
            (count as f32 / n) * (avg_conf - accuracy).abs()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brier_perfect_is_zero() {
        let probs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(brier_score(&probs, &[0, 1]), 0.0);
    }

    #[test]
    fn brier_worst_case() {
        // Fully confident and always wrong: (1-0)² + (0-1)² = 2.
        let probs = vec![vec![1.0, 0.0]];
        assert_eq!(brier_score(&probs, &[1]), 2.0);
    }

    #[test]
    fn brier_uniform_two_classes() {
        let probs = vec![vec![0.5, 0.5]];
        assert!((brier_score(&probs, &[0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ece_perfectly_calibrated() {
        // 70 %-confident predictions correct exactly 70 % of the time.
        let mut probs = Vec::new();
        let mut truths = Vec::new();
        for i in 0..100 {
            probs.push(vec![0.7, 0.3]);
            truths.push(if i < 70 { 0 } else { 1 });
        }
        assert!(expected_calibration_error(&probs, &truths, 10) < 1e-3);
    }

    #[test]
    fn ece_detects_overconfidence() {
        // Always 99 % confident, only 50 % correct → ECE ≈ 0.49.
        let probs = vec![vec![0.99, 0.01]; 100];
        let truths: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let ece = expected_calibration_error(&probs, &truths, 10);
        assert!((ece - 0.49).abs() < 0.02, "ece = {ece}");
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(brier_score(&[], &[]), 0.0);
        assert_eq!(expected_calibration_error(&[], &[], 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn brier_rejects_bad_truth() {
        brier_score(&[vec![0.5, 0.5]], &[7]);
    }
}
