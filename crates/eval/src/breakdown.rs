//! Grouped recall — the per-family / per-region / per-service slices of the
//! paper's Figs. 6 and 10.

use crate::ranking::rank_of_truth;
use std::collections::BTreeMap;

/// Recall@k per group. Input samples are `(group, scores, true_cause)`
/// triples; output maps each group to its Recall@k (and sample count).
/// The map is ordered so iteration (reports, artefact JSON) is stable.
pub fn grouped_recall_at_k<K: Ord + Clone>(
    samples: &[(K, Vec<f32>, usize)],
    k: usize,
) -> BTreeMap<K, (f32, usize)> {
    assert!(k >= 1, "grouped_recall_at_k: k must be >= 1");
    let mut hits: BTreeMap<K, (usize, usize)> = BTreeMap::new();
    for (group, scores, truth) in samples {
        let entry = hits.entry(group.clone()).or_insert((0, 0));
        entry.1 += 1;
        if rank_of_truth(scores, *truth) < k {
            entry.0 += 1;
        }
    }
    hits.into_iter()
        .map(|(g, (h, n))| (g, (h as f32 / n as f32, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_computed_independently() {
        let samples = vec![
            ("a", vec![0.9, 0.1], 0),
            ("a", vec![0.9, 0.1], 1),
            ("b", vec![0.2, 0.8], 1),
        ];
        let r = grouped_recall_at_k(&samples, 1);
        assert_eq!(r["a"], (0.5, 2));
        assert_eq!(r["b"], (1.0, 1));
    }

    #[test]
    fn empty_input_empty_output() {
        let r = grouped_recall_at_k::<&str>(&[], 1);
        assert!(r.is_empty());
    }

    #[test]
    fn k_widens_recall() {
        let samples = vec![("g", vec![0.5, 0.3, 0.2], 2)];
        assert_eq!(grouped_recall_at_k(&samples, 1)["g"].0, 0.0);
        assert_eq!(grouped_recall_at_k(&samples, 3)["g"].0, 1.0);
    }

    /// Golden rows: exact fractions *and* sorted key order, asserted as a
    /// whole. Guards the ordered-map contract — a switch back to an
    /// unordered map (or any float-path change) shows up as a diff here,
    /// not as a flaky report downstream.
    #[test]
    fn golden_rows_and_key_order_are_stable() {
        // Groups arrive shuffled; counts are powers of two so every
        // recall fraction is exactly representable in f32.
        let samples = vec![
            (7u8, vec![0.9, 0.1], 0),
            (3u8, vec![0.1, 0.9], 0),
            (7u8, vec![0.2, 0.8], 0),
            (3u8, vec![0.9, 0.1], 0),
            (3u8, vec![0.8, 0.2], 0),
            (3u8, vec![0.3, 0.7], 0),
            (5u8, vec![0.9, 0.1], 0),
        ];
        let rows: Vec<(u8, (f32, usize))> = grouped_recall_at_k(&samples, 1).into_iter().collect();
        assert_eq!(rows, vec![(3, (0.5, 4)), (5, (1.0, 1)), (7, (0.5, 2))]);
    }
}
