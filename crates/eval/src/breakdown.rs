//! Grouped recall — the per-family / per-region / per-service slices of the
//! paper's Figs. 6 and 10.

use crate::ranking::rank_of_truth;
use std::collections::HashMap;
use std::hash::Hash;

/// Recall@k per group. Input samples are `(group, scores, true_cause)`
/// triples; output maps each group to its Recall@k (and sample count).
pub fn grouped_recall_at_k<K: Eq + Hash + Clone>(
    samples: &[(K, Vec<f32>, usize)],
    k: usize,
) -> HashMap<K, (f32, usize)> {
    assert!(k >= 1, "grouped_recall_at_k: k must be >= 1");
    let mut hits: HashMap<K, (usize, usize)> = HashMap::new();
    for (group, scores, truth) in samples {
        let entry = hits.entry(group.clone()).or_insert((0, 0));
        entry.1 += 1;
        if rank_of_truth(scores, *truth) < k {
            entry.0 += 1;
        }
    }
    hits.into_iter()
        .map(|(g, (h, n))| (g, (h as f32 / n as f32, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_computed_independently() {
        let samples = vec![
            ("a", vec![0.9, 0.1], 0),
            ("a", vec![0.9, 0.1], 1),
            ("b", vec![0.2, 0.8], 1),
        ];
        let r = grouped_recall_at_k(&samples, 1);
        assert_eq!(r["a"], (0.5, 2));
        assert_eq!(r["b"], (1.0, 1));
    }

    #[test]
    fn empty_input_empty_output() {
        let r = grouped_recall_at_k::<&str>(&[], 1);
        assert!(r.is_empty());
    }

    #[test]
    fn k_widens_recall() {
        let samples = vec![("g", vec![0.5, 0.3, 0.2], 2)];
        assert_eq!(grouped_recall_at_k(&samples, 1)["g"].0, 0.0);
        assert_eq!(grouped_recall_at_k(&samples, 3)["g"].0, 1.0);
    }
}
