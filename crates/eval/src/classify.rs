//! Classification metrics: accuracy (± CI), confusion matrices, F1.

/// Fraction of samples where `pred == truth`.
///
/// # Panics
/// Panics if lengths differ.
pub fn accuracy(preds: &[usize], truths: &[usize]) -> f32 {
    assert_eq!(preds.len(), truths.len(), "accuracy: length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let hits = preds.iter().zip(truths).filter(|(p, t)| p == t).count();
    hits as f32 / preds.len() as f32
}

/// Accuracy plus a 95 % normal-approximation confidence half-width
/// (`1.96·√(p(1−p)/n)`), matching the paper's "0.70 ± 0.013" notation.
pub fn accuracy_with_ci(preds: &[usize], truths: &[usize]) -> (f32, f32) {
    let p = accuracy(preds, truths);
    let n = preds.len().max(1) as f32;
    (p, 1.96 * (p * (1.0 - p) / n).sqrt())
}

/// A confusion matrix over `n_classes` classes.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// Row-major counts: `counts[truth * n_classes + pred]`.
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "ConfusionMatrix: need at least one class");
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Build from prediction/truth pairs.
    pub fn from_predictions(preds: &[usize], truths: &[usize], n_classes: usize) -> Self {
        assert_eq!(
            preds.len(),
            truths.len(),
            "ConfusionMatrix: length mismatch"
        );
        let mut m = ConfusionMatrix::new(n_classes);
        for (&p, &t) in preds.iter().zip(truths) {
            m.add(t, p);
        }
        m
    }

    /// Record one (truth, prediction) pair.
    pub fn add(&mut self, truth: usize, pred: usize) {
        assert!(
            truth < self.n_classes && pred < self.n_classes,
            "class out of range"
        );
        self.counts[truth * self.n_classes + pred] += 1;
    }

    /// Count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.n_classes + pred]
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Per-class precision: TP / (TP + FP). 0 when the class was never
    /// predicted.
    pub fn precision(&self, class: usize) -> f32 {
        let tp = self.get(class, class);
        let predicted: usize = (0..self.n_classes).map(|t| self.get(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f32 / predicted as f32
        }
    }

    /// Per-class recall: TP / (TP + FN). 0 when the class never occurred.
    pub fn recall(&self, class: usize) -> f32 {
        let tp = self.get(class, class);
        let actual: usize = (0..self.n_classes).map(|p| self.get(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f32 / actual as f32
        }
    }

    /// Per-class F1: harmonic mean of precision and recall.
    pub fn f1(&self, class: usize) -> f32 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over classes that actually occur.
    pub fn macro_f1(&self) -> f32 {
        let classes: Vec<usize> = (0..self.n_classes)
            .filter(|&c| (0..self.n_classes).any(|p| self.get(c, p) > 0))
            .collect();
        if classes.is_empty() {
            return 0.0;
        }
        classes.iter().map(|&c| self.f1(c)).sum::<f32>() / classes.len() as f32
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let trace: usize = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        trace as f32 / total as f32
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let large: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        let (_, ci_small) = accuracy_with_ci(&small, &[0; 20]);
        let (_, ci_large) = accuracy_with_ci(&large, &[0; 2000]);
        assert!(ci_large < ci_small);
    }

    #[test]
    fn ci_zero_for_perfect() {
        let (p, ci) = accuracy_with_ci(&[1, 1, 1], &[1, 1, 1]);
        assert_eq!(p, 1.0);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 1), 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.accuracy(), 0.75);
    }

    #[test]
    fn precision_recall_f1() {
        // truth: [0,0,0,1,1]; pred: [0,0,1,1,0]
        let m = ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 0], &[0, 0, 0, 1, 1], 2);
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.f1(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.precision(1) - 0.5).abs() < 1e-6);
        assert!((m.recall(1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn f1_zero_when_never_predicted_or_present() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(m.f1(2), 0.0);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 5);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn perfect_classifier_macro_f1_one() {
        let truths: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let m = ConfusionMatrix::from_predictions(&truths, &truths, 3);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn add_rejects_out_of_range() {
        ConfusionMatrix::new(2).add(0, 5);
    }
}
