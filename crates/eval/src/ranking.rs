//! Recall@k over ranked root-cause predictions.
//!
//! Paper §IV-C: *"for a set of known real causes and a ranking method, the
//! Recall@k is the number of correctly predicted causes within the first
//! k ≥ 1 causes divided by the total number of causes."*

/// Rank (0-based) of the true cause in a score vector: the number of
/// candidates with strictly higher scores, plus half the candidates tied
/// with it (the expected rank under random tie-breaking — ties neither
/// favour nor punish the truth).
pub fn rank_of_truth(scores: &[f32], truth: usize) -> usize {
    assert!(
        truth < scores.len(),
        "rank_of_truth: truth index out of range"
    );
    let t = scores[truth];
    let greater = scores.iter().filter(|&&s| s > t).count();
    let tied_others = scores.iter().filter(|&&s| s == t).count() - 1;
    greater + tied_others / 2
}

/// Recall@k for a set of samples, each a `(scores, true_cause)` pair.
///
/// Returns 0.0 for an empty set (no causes to recall).
///
/// ```
/// use diagnet_eval::recall_at_k;
/// let samples = vec![
///     (vec![0.7, 0.2, 0.1], 0), // truth ranked first
///     (vec![0.2, 0.3, 0.5], 1), // truth ranked second
/// ];
/// assert_eq!(recall_at_k(&samples, 1), 0.5);
/// assert_eq!(recall_at_k(&samples, 2), 1.0);
/// ```
pub fn recall_at_k(samples: &[(Vec<f32>, usize)], k: usize) -> f32 {
    assert!(k >= 1, "recall_at_k: k must be >= 1");
    if samples.is_empty() {
        return 0.0;
    }
    let hits = samples
        .iter()
        .filter(|(scores, truth)| rank_of_truth(scores, *truth) < k)
        .count();
    hits as f32 / samples.len() as f32
}

/// Recall@k for every k in `1..=max_k` — one pass per sample.
pub fn recall_curve(samples: &[(Vec<f32>, usize)], max_k: usize) -> Vec<f32> {
    assert!(max_k >= 1, "recall_curve: max_k must be >= 1");
    let mut hits = vec![0usize; max_k];
    for (scores, truth) in samples {
        let rank = rank_of_truth(scores, *truth);
        if rank < max_k {
            hits[rank] += 1;
        }
    }
    // Cumulative: recall@k = Σ_{r < k} hits[r] / n.
    let n = samples.len().max(1) as f32;
    let mut curve = Vec::with_capacity(max_k);
    let mut acc = 0usize;
    for h in hits {
        acc += h;
        curve.push(acc as f32 / n);
    }
    curve
}

/// Mean reciprocal rank: the average of `1 / (rank + 1)` over samples —
/// a scalar summary of the whole ranking quality (1.0 = always first).
pub fn mean_reciprocal_rank(samples: &[(Vec<f32>, usize)]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let total: f32 = samples
        .iter()
        .map(|(scores, truth)| 1.0 / (rank_of_truth(scores, *truth) + 1) as f32)
        .sum();
    total / samples.len() as f32
}

/// Spearman rank correlation between two equally long score vectors
/// (ties get their average rank). Returns 0 for degenerate inputs
/// (length < 2 or zero variance).
pub fn spearman_rho(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "spearman_rho: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ranks = |xs: &[f32]| -> Vec<f32> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| {
            xs[i]
                .partial_cmp(&xs[j])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out = vec![0.0f32; xs.len()];
        let mut i = 0;
        while i < idx.len() {
            // Group ties and assign the average rank.
            let mut j = i;
            while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f32 / 2.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    };
    let (ra, rb) = (ranks(a), ranks(b));
    let mean = (n as f32 - 1.0) / 2.0;
    let mut cov = 0.0f32;
    let mut var_a = 0.0f32;
    let mut var_b = 0.0f32;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        var_a += (x - mean) * (x - mean);
        var_b += (y - mean) * (y - mean);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_is_count_of_strictly_better() {
        assert_eq!(rank_of_truth(&[0.5, 0.3, 0.2], 0), 0);
        assert_eq!(rank_of_truth(&[0.5, 0.3, 0.2], 1), 1);
        assert_eq!(rank_of_truth(&[0.5, 0.3, 0.2], 2), 2);
    }

    #[test]
    fn ties_take_expected_rank() {
        // One other candidate tied: expected rank 0.5 → floor 0.
        assert_eq!(rank_of_truth(&[0.4, 0.4, 0.2], 1), 0);
        // Three others tied: expected rank 1.5 → floor 1.
        assert_eq!(rank_of_truth(&[0.4, 0.4, 0.4, 0.4], 2), 1);
    }

    #[test]
    fn recall_at_1_exact_top() {
        let samples = vec![
            (vec![0.9, 0.1], 0), // hit
            (vec![0.2, 0.8], 0), // miss
        ];
        assert_eq!(recall_at_k(&samples, 1), 0.5);
        assert_eq!(recall_at_k(&samples, 2), 1.0);
    }

    #[test]
    fn curve_is_monotone_and_matches_pointwise() {
        let samples = vec![
            (vec![0.1, 0.2, 0.7], 2),
            (vec![0.5, 0.3, 0.2], 2),
            (vec![0.3, 0.4, 0.3], 1),
            (vec![0.6, 0.3, 0.1], 1),
        ];
        let curve = recall_curve(&samples, 3);
        for k in 1..=3 {
            assert_eq!(curve[k - 1], recall_at_k(&samples, k), "k = {k}");
        }
        for w in curve.windows(2) {
            assert!(w[0] <= w[1], "recall must be non-decreasing in k");
        }
        assert_eq!(curve[2], 1.0);
    }

    #[test]
    fn empty_set_is_zero() {
        assert_eq!(recall_at_k(&[], 1), 0.0);
        assert_eq!(recall_curve(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        recall_at_k(&[(vec![1.0], 0)], 0);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [10.0f32, 20.0, 30.0, 40.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-5);
        let c = [4.0f32, 3.0, 2.0, 1.0];
        assert!((spearman_rho(&a, &c) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn spearman_handles_ties_and_degenerates() {
        let a = [1.0f32, 1.0, 2.0, 2.0];
        let b = [1.0f32, 1.0, 2.0, 2.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-5);
        assert_eq!(spearman_rho(&[1.0], &[2.0]), 0.0);
        assert_eq!(
            spearman_rho(&[1.0, 1.0], &[1.0, 2.0]),
            0.0,
            "zero variance side"
        );
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone nonlinear transform must not change ρ.
        let a = [0.1f32, 0.5, 0.9, 2.0, 7.0];
        let b: Vec<f32> = a.iter().map(|v| v.powi(3)).collect();
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mrr_perfect_and_mixed() {
        let perfect = vec![(vec![0.9, 0.1], 0), (vec![0.1, 0.9], 1)];
        assert_eq!(mean_reciprocal_rank(&perfect), 1.0);
        // Ranks 0 and 1 → (1 + 0.5) / 2.
        let mixed = vec![(vec![0.9, 0.1], 0), (vec![0.9, 0.1], 1)];
        assert!((mean_reciprocal_rank(&mixed) - 0.75).abs() < 1e-6);
        assert_eq!(mean_reciprocal_rank(&[]), 0.0);
    }

    #[test]
    fn mrr_bounded_by_recall_at_1() {
        // MRR ≥ Recall@1 always (reciprocal rank is 1 exactly on R@1 hits).
        let samples = vec![
            (vec![0.5, 0.3, 0.2], 1),
            (vec![0.1, 0.2, 0.7], 2),
            (vec![0.4, 0.4, 0.2], 0),
        ];
        assert!(mean_reciprocal_rank(&samples) >= recall_at_k(&samples, 1));
    }
}
