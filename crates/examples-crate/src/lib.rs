//! Host crate for the repository-level `examples/` directory.
//!
//! Cargo requires examples to belong to a package; this crate exists only
//! to anchor the runnable binaries in `/examples` (see each file's header
//! for what it demonstrates):
//!
//! * `quickstart` — train and diagnose in ~40 lines;
//! * `multi_cloud_outage` — two simultaneous incidents disentangled per
//!   client;
//! * `fleet_rotation` — one model serving shrinking and growing landmark
//!   fleets without retraining;
//! * `service_onboarding` — specialising the general model to new
//!   services in a few epochs;
//! * `baseline_shootout` — DiagNet vs Random Forest vs Naive Bayes.
