//! Property-based tests of KDE and the extensible naive Bayes.

use diagnet_bayes::{ExtensibleNaiveBayes, Kde, NaiveBayesConfig};
use diagnet_rng::SplitMix64;
use proptest::prelude::*;

fn sample_values() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Densities are non-negative and finite everywhere.
    #[test]
    fn kde_density_sane(values in sample_values(), x in -200.0f32..200.0) {
        let kde = Kde::fit(&values);
        let d = kde.density(x);
        prop_assert!(d.is_finite() && d >= 0.0);
        prop_assert!(kde.log_density(x).is_finite());
    }

    /// The density is highest near the data: max over support points
    /// beats a faraway probe.
    #[test]
    fn kde_mass_near_data(values in sample_values()) {
        let kde = Kde::fit(&values);
        let near = values.iter().map(|&v| kde.density(v)).fold(0.0f32, f32::max);
        let span = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let far = kde.density(span * 10.0 + 1e4);
        prop_assert!(near >= far);
    }

    /// Widening the bandwidth never sharpens the peak.
    #[test]
    fn bandwidth_scaling_flattens(values in sample_values(), factor in 1.5f32..10.0) {
        let kde = Kde::fit(&values);
        let flat = kde.with_bandwidth_scale(factor);
        let peak = values.iter().map(|&v| kde.density(v)).fold(0.0f32, f32::max);
        let flat_peak = values.iter().map(|&v| flat.density(v)).fold(0.0f32, f32::max);
        prop_assert!(flat_peak <= peak + 1e-6);
    }

    /// Subsampling respects the cap but keeps at least one point.
    #[test]
    fn kde_cap_respected(values in sample_values(), cap in 1usize..64) {
        let kde = Kde::fit_with_cap(&values, cap);
        prop_assert!(kde.n_points() <= cap.max(1));
        prop_assert!(kde.n_points() >= 1);
    }

    /// NB scores are probability distributions over causes for arbitrary
    /// test rows, including ones far outside the training range.
    #[test]
    fn nb_scores_are_distributions(seed in 0u64..1000, probe_scale in 0.1f32..50.0) {
        let n_features = 6;
        let kinds: Vec<usize> = (0..n_features).map(|j| j % 2).collect();
        let visible: Vec<usize> = (0..4).collect();
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Vec<f32>> = (0..80)
            .map(|i| {
                let mut row: Vec<f32> =
                    (0..n_features).map(|_| rng.normal_with(10.0, 2.0)).collect();
                if i % 2 == 0 {
                    row[i % 4] += 20.0;
                }
                row
            })
            .collect();
        let labels: Vec<usize> =
            (0..80).map(|i| if i % 2 == 0 { i % 4 } else { n_features }).collect();
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(), &rows, &labels, n_features, &kinds, &visible,
        );
        let probe: Vec<f32> = (0..n_features).map(|j| j as f32 * probe_scale).collect();
        let scores = model.scores(&probe);
        prop_assert_eq!(scores.len(), n_features);
        prop_assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        prop_assert!(scores.iter().all(|&v| v.is_finite() && v >= 0.0));
    }

    /// Scoring is deterministic.
    #[test]
    fn nb_deterministic(seed in 0u64..500) {
        let kinds = vec![0usize, 1, 0, 1];
        let visible = vec![0usize, 1, 2, 3];
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Vec<f32>> =
            (0..40).map(|_| (0..4).map(|_| rng.normal()).collect()).collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 5).collect(); // causes 0-3 + nominal 4
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(), &rows, &labels, 4, &kinds, &visible,
        );
        prop_assert_eq!(model.scores(&rows[0]), model.scores(&rows[0]));
    }
}
