//! # diagnet-bayes — the Extensible Naive Bayes baseline
//!
//! Implements the second comparison baseline of the DiagNet paper
//! (§IV-B(b)): a naive Bayes classifier over root causes whose likelihoods
//! are kernel density estimates (KDE), adapted for extensibility:
//!
//! * **uniform priors** — `P(C_k) = 1` for every cause, since priors of
//!   never-seen causes are unknowable (this also cancels dataset
//!   imbalance);
//! * **KDE likelihoods** — per (cause, feature) Gaussian-kernel densities
//!   instead of parametric Gaussians, for expressivity;
//! * **generic merged likelihoods** — for each *measure family* (RTT,
//!   download bandwidth, …) a fallback KDE built from the union of every
//!   training landmark's measurements, used whenever no specific
//!   likelihood exists for a feature or class (i.e. for landmarks or
//!   causes unseen during training).
//!
//! The paper observes (and our reproduction of Fig. 5/6 confirms) that the
//! merged KDEs flatten as client diversity grows, biasing the model toward
//! unknown features — exactly the failure mode this baseline documents.

pub mod kde;
pub mod naive_bayes;

pub use kde::Kde;
pub use naive_bayes::{generic_cause_adjustment, ExtensibleNaiveBayes, NaiveBayesConfig};
