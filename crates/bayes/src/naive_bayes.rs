//! The Extensible Naive Bayes classifier (paper §IV-B(b)).
//!
//! Classes are root causes — one per feature of the maximum feature space —
//! plus a nominal class. Per Bayes with the naive independence assumption:
//!
//! ```text
//! P(C_k | x) ∝ P(C_k) · ∏_j P(x_j | C_k),       P(C_k) = 1  (uniform)
//! ```
//!
//! Likelihoods `P(x_j | C_k)` are KDEs fitted per (class, feature) on the
//! training set. Extensibility comes from *generic aggregate likelihoods*:
//! for each measure family (metric kind) we build
//!
//! * a **background** KDE — the union of every training landmark's values
//!   of that kind, used for features whose landmark was never seen;
//! * a **cause** KDE — the union of the values a cause feature takes *when
//!   it is the root cause*, used for candidate causes never seen in
//!   training.
//!
//! Scores are computed in log space and normalised with a softmax so the
//! output is a proper distribution over causes, ready for Recall@k ranking.

use crate::kde::Kde;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the extensible naive Bayes model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayesConfig {
    /// Minimum training samples of a class required to fit its specific
    /// KDEs; rarer classes fall back to the generic likelihoods.
    pub min_class_samples: usize,
    /// Support-point cap per KDE.
    pub kde_cap: usize,
    /// Bandwidth multiplier for the *generic* (merged) likelihoods. The
    /// paper observes that merging every landmark's measurements flattens
    /// the KDEs ("merged KDEs are 'flattened' and converge to uniform
    /// distributions", §IV-E); this factor reproduces that flattening.
    pub generic_bandwidth_scale: f32,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        NaiveBayesConfig {
            min_class_samples: 5,
            kde_cap: crate::kde::MAX_KDE_POINTS,
            generic_bandwidth_scale: 4.0,
        }
    }
}

/// The fitted model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensibleNaiveBayes {
    n_features: usize,
    /// Metric kind of each feature (shared across landmarks).
    feature_kinds: Vec<usize>,
    /// Features whose landmark was available during training.
    visible: Vec<bool>,
    /// Specific likelihoods: class (cause feature index, or `n_features`
    /// for nominal) → per-visible-feature KDE.
    specific: BTreeMap<usize, Vec<Option<Kde>>>,
    /// Generic background likelihood per metric kind.
    generic_background: BTreeMap<usize, Kde>,
    /// Generic "this feature is the cause" likelihood per metric kind.
    generic_cause: BTreeMap<usize, Kde>,
}

impl ExtensibleNaiveBayes {
    /// Class index used for nominal samples in `labels`.
    pub fn nominal_class(n_features: usize) -> usize {
        n_features
    }

    /// Fit the model.
    ///
    /// * `rows` — training samples in the **maximum** feature dimension;
    ///   only the entries whose index is in `visible_features` are real
    ///   measurements (others are ignored).
    /// * `labels` — cause feature index per sample, or `n_features` for
    ///   nominal samples.
    /// * `feature_kinds` — metric kind of each feature (e.g. all RTT
    ///   features across landmarks share a kind).
    ///
    /// # Panics
    /// Panics on inconsistent inputs.
    pub fn fit(
        config: &NaiveBayesConfig,
        rows: &[Vec<f32>],
        labels: &[usize],
        n_features: usize,
        feature_kinds: &[usize],
        visible_features: &[usize],
    ) -> Self {
        assert!(
            !rows.is_empty(),
            "ExtensibleNaiveBayes::fit: empty training set"
        );
        assert_eq!(rows.len(), labels.len(), "row/label mismatch");
        assert_eq!(
            feature_kinds.len(),
            n_features,
            "feature_kinds length mismatch"
        );
        assert!(
            rows.iter().all(|r| r.len() == n_features),
            "rows must have n_features entries"
        );
        assert!(
            labels.iter().all(|&l| l <= n_features),
            "label out of range"
        );

        let mut visible = vec![false; n_features];
        for &j in visible_features {
            visible[j] = true;
        }

        // Group sample indices by class.
        let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, &label) in labels.iter().enumerate() {
            by_class.entry(label).or_default().push(i);
        }

        // Specific KDEs per sufficiently populated class × visible feature.
        let classes: Vec<(usize, Vec<usize>)> = by_class
            .iter()
            .filter(|(_, idx)| idx.len() >= config.min_class_samples)
            .map(|(&c, idx)| (c, idx.clone()))
            .collect();
        let specific: BTreeMap<usize, Vec<Option<Kde>>> = classes
            .par_iter()
            .map(|(class, idx)| {
                let kdes: Vec<Option<Kde>> = (0..n_features)
                    .map(|j| {
                        if !visible[j] {
                            return None;
                        }
                        let values: Vec<f32> = idx.iter().map(|&i| rows[i][j]).collect();
                        Some(Kde::fit_with_cap(&values, config.kde_cap))
                    })
                    .collect();
                (*class, kdes)
            })
            .collect();

        // Generic background: union over landmarks (and classes) per kind.
        let mut kind_values: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
        for row in rows {
            for j in 0..n_features {
                if visible[j] {
                    kind_values
                        .entry(feature_kinds[j])
                        .or_default()
                        .push(row[j]);
                }
            }
        }
        let generic_background: BTreeMap<usize, Kde> = kind_values
            .iter()
            .map(|(&kind, vals)| {
                let kde = Kde::fit_with_cap(vals, config.kde_cap * 4)
                    .with_bandwidth_scale(config.generic_bandwidth_scale);
                (kind, kde)
            })
            .collect();

        // Generic cause: values of the cause feature under its own fault.
        let mut cause_values: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
        for (i, &label) in labels.iter().enumerate() {
            if label < n_features && visible[label] {
                cause_values
                    .entry(feature_kinds[label])
                    .or_default()
                    .push(rows[i][label]);
            }
        }
        let generic_cause: BTreeMap<usize, Kde> = cause_values
            .iter()
            .filter(|(_, vals)| vals.len() >= config.min_class_samples)
            .map(|(&kind, vals)| {
                let kde = Kde::fit_with_cap(vals, config.kde_cap * 2)
                    .with_bandwidth_scale(config.generic_bandwidth_scale);
                (kind, kde)
            })
            .collect();

        ExtensibleNaiveBayes {
            n_features,
            feature_kinds: feature_kinds.to_vec(),
            visible,
            specific,
            generic_background,
            generic_cause,
        }
    }

    /// Log-likelihood of `row` under cause class `k` (`k == n_features`
    /// for nominal), combining specific and generic likelihoods.
    fn class_log_likelihood(&self, row: &[f32], k: usize, bg: &[f32]) -> f32 {
        let mut score = 0.0f32;
        match self.specific.get(&k) {
            Some(kdes) => {
                for j in 0..self.n_features {
                    score += match &kdes[j] {
                        Some(kde) => kde.log_density(row[j]),
                        None => bg[j], // unknown landmark feature → generic
                    };
                }
            }
            None => {
                // Unseen class: background everywhere except the candidate
                // cause feature itself, which uses the *generic* cause
                // likelihood. Following the paper, the generic likelihood
                // is built from the union of every training landmark's
                // measurements — merging flattens it, so it is a mixture of
                // the fault-conditioned KDE and the background KDE rather
                // than a sharp detector (this is precisely the mechanism
                // behind the paper's "bias towards new features").
                score = bg.iter().sum();
                if k < self.n_features {
                    let kind = self.feature_kinds[k];
                    if let Some(kde) = self.generic_cause.get(&kind) {
                        score += generic_cause_adjustment(kde.density(row[k]), bg[k]);
                    }
                }
            }
        }
        score
    }

    /// Per-feature generic background log-likelihoods for a row.
    fn background_logs(&self, row: &[f32]) -> Vec<f32> {
        (0..self.n_features)
            .map(
                |j| match self.generic_background.get(&self.feature_kinds[j]) {
                    Some(kde) => kde.log_density(row[j]),
                    None => (1e-30f32).ln(),
                },
            )
            .collect()
    }

    /// Normalised scores over the `n_features` candidate causes for one
    /// sample (softmax over class log-likelihoods; uniform priors).
    pub fn scores(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        let bg = self.background_logs(row);
        let logs: Vec<f32> = (0..self.n_features)
            .map(|k| self.class_log_likelihood(row, k, &bg))
            .collect();
        let max = logs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logs.iter().map(|&l| ((l - max).max(-60.0)).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }

    /// Batch scores, parallelised over samples.
    pub fn scores_batch(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.par_iter().map(|r| self.scores(r)).collect()
    }

    /// Log-likelihood that the sample is nominal (for diagnostics).
    pub fn nominal_log_likelihood(&self, row: &[f32]) -> f32 {
        let bg = self.background_logs(row);
        self.class_log_likelihood(row, self.n_features, &bg)
    }

    /// Number of classes with specific likelihoods (trained classes).
    pub fn n_trained_classes(&self) -> usize {
        self.specific.len()
    }

    /// Number of features / candidate causes.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total KDE support points across specific and generic likelihoods
    /// (the model's "parameter count" in model-size comparisons).
    pub fn n_support_points(&self) -> usize {
        let specific: usize = self
            .specific
            .values()
            .flat_map(|kdes| kdes.iter())
            .filter_map(|k| k.as_ref())
            .map(Kde::n_points)
            .sum();
        let background: usize = self.generic_background.values().map(Kde::n_points).sum();
        let cause: usize = self.generic_cause.values().map(Kde::n_points).sum();
        specific + background + cause
    }
}

/// Log-likelihood adjustment for an *unseen* candidate-cause class at its
/// own feature (§IV-B(b)): replace the background log-likelihood `bg_log`
/// with a 50/50 mixture of the generic fault-conditioned density
/// `cause_density` and the background density. The mixture (rather than the
/// raw cause KDE) is what makes merged likelihoods "flattened", the paper's
/// documented bias toward new features.
///
/// This is the naive-Bayes half of the shared "unknown score" logic — the
/// forest counterpart is `diagnet_forest::spread_nominal_mass`.
pub fn generic_cause_adjustment(cause_density: f32, bg_log: f32) -> f32 {
    let bg_density = bg_log.exp();
    let mixed = 0.5 * cause_density + 0.5 * bg_density;
    mixed.max(1e-30).ln() - bg_log
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_rng::SplitMix64;

    /// Synthetic root-cause data over 8 features of 2 metric kinds
    /// (even features kind 0 "latency-like", odd kind 1 "load-like").
    /// Cause j lifts feature j by a large margin. Features >= `visible`
    /// are hidden during training.
    fn cause_data(
        n: usize,
        visible: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<usize>, Vec<usize>, Vec<usize>) {
        let n_features = 8;
        let kinds: Vec<usize> = (0..n_features).map(|j| j % 2).collect();
        let mut rng = SplitMix64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<f32> = (0..n_features)
                .map(|j| rng.normal_with(10.0 + j as f32, 1.0))
                .collect();
            let label = if i % 4 == 0 {
                n_features
            } else {
                let cause = i % visible;
                row[cause] += 25.0;
                cause
            };
            rows.push(row);
            labels.push(label);
        }
        let visible_features: Vec<usize> = (0..visible).collect();
        (rows, labels, kinds, visible_features)
    }

    fn argmax(xs: &[f32]) -> usize {
        xs.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    }

    #[test]
    fn identifies_known_causes() {
        let (rows, labels, kinds, vis) = cause_data(400, 8, 1);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        let mut top1 = 0;
        let mut total = 0;
        for (row, &label) in rows.iter().zip(&labels) {
            if label == 8 {
                continue;
            }
            total += 1;
            if argmax(&model.scores(row)) == label {
                top1 += 1;
            }
        }
        assert!(top1 as f32 / total as f32 > 0.85, "top-1 = {top1}/{total}");
    }

    #[test]
    fn scores_normalised() {
        let (rows, labels, kinds, vis) = cause_data(200, 8, 2);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        for row in rows.iter().take(20) {
            let s = model.scores(row);
            assert_eq!(s.len(), 8);
            assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(s.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn unseen_cause_scored_via_generic_likelihood() {
        // Features 6, 7 hidden during training.
        let (rows, labels, kinds, vis) = cause_data(400, 6, 3);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        // Test sample whose cause is unseen feature 6 (kind 0, like the
        // trained even-feature causes): the generic cause KDE should rank
        // it above ordinary background features.
        let mut rng = SplitMix64::new(9);
        let mut hits = 0;
        for _ in 0..30 {
            let mut row: Vec<f32> = (0..8)
                .map(|j| rng.normal_with(10.0 + j as f32, 1.0))
                .collect();
            row[6] += 25.0;
            let scores = model.scores(&row);
            // Top-3 containment is enough: the paper's NB is biased but
            // usable at moderate k for new causes.
            let mut order: Vec<usize> = (0..8).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
            if order[..3].contains(&6) {
                hits += 1;
            }
        }
        assert!(hits >= 20, "unseen cause in top-3 only {hits}/30 times");
    }

    #[test]
    fn trained_class_count_reflects_min_samples() {
        let (rows, labels, kinds, vis) = cause_data(400, 6, 4);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        // 6 visible causes + nominal.
        assert_eq!(model.n_trained_classes(), 7);
    }

    #[test]
    fn nominal_likelihood_higher_for_clean_samples() {
        let (rows, labels, kinds, vis) = cause_data(400, 8, 5);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        let mut rng = SplitMix64::new(11);
        let clean: Vec<f32> = (0..8)
            .map(|j| rng.normal_with(10.0 + j as f32, 1.0))
            .collect();
        let mut faulty = clean.clone();
        faulty[3] += 25.0;
        assert!(model.nominal_log_likelihood(&clean) > model.nominal_log_likelihood(&faulty));
        let _ = (rows, labels); // silence unused in this scenario
    }

    #[test]
    fn batch_matches_single() {
        let (rows, labels, kinds, vis) = cause_data(100, 8, 6);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        let batch = model.scores_batch(&rows[..10]);
        for (r, b) in rows[..10].iter().zip(&batch) {
            assert_eq!(&model.scores(r), b);
        }
    }

    #[test]
    fn generic_cause_adjustment_pins_mixture_arithmetic() {
        // bg_log = 0 ⇒ bg_density = 1: adjustment is ln(0.5·d + 0.5).
        let adj = generic_cause_adjustment(3.0, 0.0);
        assert!((adj - 2.0f32.ln()).abs() < 1e-6, "got {adj}");
        // d = 1 with bg_density = 1 mixes to 1: no adjustment.
        assert!(generic_cause_adjustment(1.0, 0.0).abs() < 1e-6);
        // Vanishing densities hit the 1e-30 clamp before the log.
        let clamped = generic_cause_adjustment(0.0, -200.0);
        assert!((clamped - ((1e-30f32).ln() + 200.0)).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let (rows, labels, kinds, vis) = cause_data(50, 8, 7);
        let model = ExtensibleNaiveBayes::fit(
            &NaiveBayesConfig::default(),
            &rows,
            &labels,
            8,
            &kinds,
            &vis,
        );
        model.scores(&[1.0, 2.0]);
    }
}
