//! Gaussian kernel density estimation (Rosenblatt 1956).
//!
//! Bandwidth follows Silverman's rule of thumb. To keep likelihood
//! evaluation affordable inside the naive-Bayes product (which evaluates
//! thousands of densities per sample), fitted KDEs subsample their support
//! to a bounded number of points with a deterministic stride.

use serde::{Deserialize, Serialize};

/// Maximum number of support points a KDE keeps (deterministic stride
/// subsampling beyond this).
pub const MAX_KDE_POINTS: usize = 128;

/// A one-dimensional Gaussian-kernel density estimate.
///
/// ```
/// use diagnet_bayes::Kde;
/// let kde = Kde::fit(&[10.0, 11.0, 9.5, 10.2, 10.8]);
/// assert!(kde.density(10.0) > kde.density(30.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde {
    points: Vec<f32>,
    bandwidth: f32,
}

impl Kde {
    /// Fit a KDE on `values` with Silverman's bandwidth, keeping at most
    /// [`MAX_KDE_POINTS`] support points.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn fit(values: &[f32]) -> Kde {
        Kde::fit_with_cap(values, MAX_KDE_POINTS)
    }

    /// Fit with an explicit support-point cap.
    ///
    /// # Panics
    /// Panics if `values` is empty or `cap == 0`.
    pub fn fit_with_cap(values: &[f32], cap: usize) -> Kde {
        assert!(!values.is_empty(), "Kde::fit: empty sample");
        assert!(cap > 0, "Kde::fit: cap must be positive");
        let n = values.len() as f64;
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = values
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let std = var.sqrt() as f32;
        // Silverman: h = 1.06 σ n^{-1/5}; floor keeps degenerate samples
        // (all-equal values) well-defined.
        let bandwidth = (1.06 * std * (n as f32).powf(-0.2)).max(1e-3 * (std + 1.0));
        let points = if values.len() <= cap {
            values.to_vec()
        } else {
            // Deterministic stride subsample preserving the spread.
            let stride = values.len() as f64 / cap as f64;
            (0..cap)
                .map(|i| values[(i as f64 * stride) as usize])
                .collect()
        };
        Kde { points, bandwidth }
    }

    /// Merge several KDEs into a *union* KDE (the paper's generic
    /// aggregate likelihood): pools support points, re-fits the bandwidth.
    ///
    /// # Panics
    /// Panics if `kdes` is empty.
    pub fn merge(kdes: &[&Kde]) -> Kde {
        assert!(!kdes.is_empty(), "Kde::merge: nothing to merge");
        let all: Vec<f32> = kdes.iter().flat_map(|k| k.points.iter().copied()).collect();
        Kde::fit(&all)
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f32) -> f32 {
        let inv_h = 1.0 / self.bandwidth;
        let norm = inv_h / (self.points.len() as f32 * (2.0 * std::f32::consts::PI).sqrt());
        let mut acc = 0.0f32;
        for &p in &self.points {
            let z = (x - p) * inv_h;
            // Beyond 6σ the kernel contributes < 1e-8 of its peak.
            if z.abs() < 6.0 {
                acc += (-0.5 * z * z).exp();
            }
        }
        acc * norm
    }

    /// Natural log of the density, floored to stay finite in products.
    pub fn log_density(&self, x: f32) -> f32 {
        self.density(x).max(1e-30).ln()
    }

    /// Bandwidth in use.
    pub fn bandwidth(&self) -> f32 {
        self.bandwidth
    }

    /// A copy with the bandwidth multiplied by `factor` — used to emulate
    /// the paper's *flattened* merged likelihoods: pooling many diverse
    /// landmarks' distributions smears the density toward uniform.
    ///
    /// # Panics
    /// Panics if `factor <= 0`.
    pub fn with_bandwidth_scale(&self, factor: f32) -> Kde {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        Kde {
            points: self.points.clone(),
            bandwidth: self.bandwidth * factor,
        }
    }

    /// Number of support points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_rng::SplitMix64;

    #[test]
    fn density_peaks_near_data() {
        let kde = Kde::fit(&[10.0, 10.5, 9.5, 10.2]);
        assert!(kde.density(10.0) > kde.density(20.0) * 100.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut rng = SplitMix64::new(1);
        let values: Vec<f32> = (0..200).map(|_| rng.normal_with(5.0, 2.0)).collect();
        let kde = Kde::fit(&values);
        // Trapezoidal integral over a wide window.
        let (lo, hi, steps) = (-10.0f32, 20.0f32, 3000);
        let dx = (hi - lo) / steps as f32;
        let integral: f32 = (0..steps)
            .map(|i| kde.density(lo + (i as f32 + 0.5) * dx) * dx)
            .sum();
        assert!((integral - 1.0).abs() < 0.02, "integral = {integral}");
    }

    #[test]
    fn recovers_gaussian_shape() {
        let mut rng = SplitMix64::new(2);
        let values: Vec<f32> = (0..2000).map(|_| rng.normal_with(0.0, 1.0)).collect();
        let kde = Kde::fit_with_cap(&values, 512);
        let at0 = kde.density(0.0);
        let at2 = kde.density(2.0);
        // N(0,1): φ(0)/φ(2) ≈ 7.39.
        let ratio = at0 / at2;
        assert!((4.0..12.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn degenerate_sample_is_finite() {
        let kde = Kde::fit(&[3.0, 3.0, 3.0]);
        assert!(kde.density(3.0).is_finite());
        assert!(kde.density(3.0) > kde.density(4.0));
        assert!(kde.log_density(1e6).is_finite());
    }

    #[test]
    fn subsampling_caps_points() {
        let values: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let kde = Kde::fit(&values);
        assert_eq!(kde.n_points(), MAX_KDE_POINTS);
        // Subsample still spans the range.
        assert!(kde.density(9000.0) > 0.0);
        assert!(kde.density(500.0) > 0.0);
    }

    #[test]
    fn merge_pools_support() {
        let mut rng = SplitMix64::new(7);
        let av: Vec<f32> = (0..100).map(|_| rng.normal_with(0.0, 0.5)).collect();
        let bv: Vec<f32> = (0..100).map(|_| rng.normal_with(10.0, 0.5)).collect();
        let a = Kde::fit(&av);
        let b = Kde::fit(&bv);
        let merged = Kde::merge(&[&a, &b]);
        // Bimodal: density at both modes well above the valley.
        assert!(merged.density(0.0) > merged.density(5.0) * 3.0);
        assert!(merged.density(10.0) > merged.density(5.0) * 3.0);
    }

    #[test]
    fn merged_kde_flattens() {
        // The paper's observation: merging many landmarks' distributions
        // flattens the density toward uniform — peak density drops.
        let mut rng = SplitMix64::new(3);
        let single: Vec<f32> = (0..300).map(|_| rng.normal_with(50.0, 3.0)).collect();
        let kde_single = Kde::fit(&single);
        let kdes: Vec<Kde> = (0..8)
            .map(|i| {
                let center = 30.0 + 20.0 * i as f32;
                let vals: Vec<f32> = (0..300).map(|_| rng.normal_with(center, 3.0)).collect();
                Kde::fit(&vals)
            })
            .collect();
        let refs: Vec<&Kde> = kdes.iter().collect();
        let merged = Kde::merge(&refs);
        assert!(merged.density(50.0) < kde_single.density(50.0) / 3.0);
    }

    #[test]
    fn log_density_floor() {
        let kde = Kde::fit(&[0.0]);
        let ld = kde.log_density(1e9);
        assert!(ld.is_finite());
        assert!(ld <= (1e-30f32).ln() + 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_fit_panics() {
        Kde::fit(&[]);
    }
}
