//! The `diagnet serve` and `diagnet bench` subcommands: the network
//! serving edge and the load generator that drives it (operator guide:
//! `SERVING.md`).
//!
//! `serve` stands up an [`AnalysisService`] behind `diagnet-server`'s
//! HTTP edge. The model comes from `--model FILE` (a trained artefact,
//! published through the same validation gate trained generations pass)
//! or — the default — from a seeded in-process bootstrap: generate
//! `--scenarios` worth of simulator data, submit it through admission,
//! and train one generation before binding workers to traffic.
//!
//! `bench` wraps `diagnet-bencher`: closed- or open-loop load with a
//! seeded probe mix, summarised to stdout and optionally written as the
//! `BENCH_serving.json` document (`--out`; field reference in
//! `EXPERIMENTS.md`).

use crate::args::Args;
use crate::error::CliError;
use diagnet::backend::BackendKind;
use diagnet::config::DiagNetConfig;
use diagnet::integrity::render_checksum;
use diagnet_bencher::{BenchConfig, BenchError, Mix, Mode};
use diagnet_platform::service::{AnalysisService, ServiceConfig};
use diagnet_platform::{JsonCodec, ModelStore, RolloutConfig};
use diagnet_server::{AppState, Server, ServerConfig};
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::world::World;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Serving-model hyper-parameters for `serve --config ...`. On top of the
/// repo-wide `paper`/`fast`, `smoke` is a seconds-not-minutes bootstrap
/// (2 epochs, 5 trees) for CI smoke jobs and tests.
fn serve_model_config(args: &Args) -> Result<DiagNetConfig, CliError> {
    match args.get("config").unwrap_or("fast") {
        "paper" => Ok(DiagNetConfig::paper()),
        "fast" => Ok(DiagNetConfig::fast()),
        "smoke" => {
            let mut c = DiagNetConfig::fast();
            c.epochs = 2;
            c.forest.n_trees = 5;
            Ok(c)
        }
        other => Err(CliError::usage(format!(
            "unknown config `{other}` (expected `paper`, `fast` or `smoke`)"
        ))),
    }
}

fn server_config(args: &Args) -> Result<ServerConfig, CliError> {
    let defaults = ServerConfig::default();
    let workers: usize = args.get_or("workers", defaults.workers)?;
    let backlog: usize = args.get_or("backlog", defaults.backlog)?;
    let timeout_ms: u64 = args.get_or("timeout-ms", 5000)?;
    if workers == 0 {
        return Err(CliError::usage("`--workers` must be at least 1"));
    }
    if backlog == 0 {
        return Err(CliError::usage("`--backlog` must be at least 1"));
    }
    if timeout_ms == 0 {
        return Err(CliError::usage("`--timeout-ms` must be positive"));
    }
    Ok(ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        workers,
        backlog,
        read_timeout: Duration::from_millis(timeout_ms),
        write_timeout: Duration::from_millis(timeout_ms),
        ..defaults
    })
}

/// The `--canary-frac` / `--canary-window` knobs, when canarying is on
/// (`--canary-frac` > 0; the default 0 keeps the classic direct-publish
/// path).
fn rollout_config(args: &Args) -> Result<Option<RolloutConfig>, CliError> {
    let canary_frac: f32 = args.get_or("canary-frac", 0.0)?;
    if !(canary_frac.is_finite() && (0.0..=1.0).contains(&canary_frac)) {
        return Err(CliError::usage("`--canary-frac` must be within 0..=1"));
    }
    let canary_window: u64 = args.get_or("canary-window", 50)?;
    if canary_window == 0 {
        return Err(CliError::usage("`--canary-window` must be at least 1"));
    }
    Ok((canary_frac > 0.0).then(|| RolloutConfig {
        canary_frac,
        window: canary_window,
        ..RolloutConfig::default()
    }))
}

/// Build and warm the analysis service behind the edge: recover the last
/// active generation from `--state-dir`, publish `--model`, or bootstrap
/// from `--scenarios` of simulated traffic.
fn build_state(args: &Args) -> Result<(AppState, String), CliError> {
    let world = World::new();
    let n_services = world.catalog.len();
    let seed: u64 = args.get_or("seed", 42)?;
    let kind = crate::commands::backend_flag(args)?.unwrap_or(BackendKind::DiagNet);
    let service_config = ServiceConfig {
        backend: kind,
        model: serve_model_config(args)?,
        seed,
        rollout: rollout_config(args)?,
        // The edge serves the general model: per-service specialisation
        // would multiply bootstrap time by the catalog size, and operators
        // can publish specialised artefacts via `--model` instead.
        min_service_samples: usize::MAX,
        general_services: world.catalog.all_ids(),
        ..ServiceConfig::default()
    };
    let service = match args.get("state-dir") {
        Some(dir) => {
            let store = ModelStore::open(dir, Arc::new(JsonCodec)).map_err(|e| CliError::Data {
                action: "open",
                path: dir.to_string(),
                detail: e.to_string(),
            })?;
            Arc::new(AnalysisService::with_store(
                service_config,
                world.schema.clone(),
                Arc::new(store),
            ))
        }
        None => Arc::new(AnalysisService::new(service_config, world.schema.clone())),
    };

    let provenance = if let Some(path) = args.get("model") {
        let backend = crate::io::load_backend_file(path)?;
        let version = service
            .publish_external(Arc::from(backend))
            .map_err(CliError::Model)?;
        format!("model loaded from {path} (registry v{version})")
    } else if let Some(record) = service.recovered_generation().cloned() {
        // A SIGKILL'd replica restarts serving the exact artefact it last
        // published — no retraining, bit-identical diagnoses.
        format!(
            "recovered generation {} ({} backend, {}) from {} (registry v{})",
            record.generation,
            record.backend,
            render_checksum(record.checksum),
            args.get("state-dir").unwrap_or("the state dir"),
            service.model_version()
        )
    } else {
        let scenarios: usize = args.get_or("scenarios", 20)?;
        let dataset = Dataset::generate(&world, &DatasetConfig::standard(&world, scenarios, seed))?;
        let n = dataset.samples.len();
        for sample in dataset.samples {
            service.submit(sample);
        }
        let report = service.retrain_now().map_err(|e| CliError::Data {
            action: "bootstrap",
            path: "in-memory training set".to_string(),
            detail: e.to_string(),
        })?;
        format!(
            "bootstrapped from {n} simulated samples ({} scenarios, seed {seed}): \
             trained in {:.1}s (registry v{})",
            scenarios, report.duration_secs, report.version
        )
    };
    let state = AppState {
        service,
        schema: world.schema,
        n_services,
    };
    Ok((state, provenance))
}

/// `diagnet serve`: train-or-load, bind, serve until killed (or for
/// `--run-for-s` seconds, then drain gracefully).
pub fn serve(args: &Args) -> Result<String, CliError> {
    let config = server_config(args)?;
    let run_for_s: Option<f64> = match args.get("run-for-s") {
        None => None,
        Some(_) => Some(args.get_or("run-for-s", 0.0)?),
    };
    if let Some(s) = run_for_s {
        if !(s.is_finite() && s > 0.0) {
            return Err(CliError::usage("`--run-for-s` must be a positive number"));
        }
    }

    let (state, provenance) = build_state(args)?;
    let health = state.service.health();
    let mut server = Server::start(config.clone(), state).map_err(|e| CliError::Io {
        action: "bind",
        path: config.addr.clone(),
        source: e,
    })?;
    let addr = server.local_addr();

    // The banner goes straight to stdout: the command blocks from here on
    // and scripts (CI's serving-smoke job) wait for this line.
    println!(
        "diagnet-server listening on {addr} ({} workers, backlog {})",
        config.workers, config.backlog
    );
    println!("  {provenance}");
    println!("  health: {health}");
    if let Some(dir) = args.get("state-dir") {
        println!("  state dir: {dir} (crash-safe generation store)");
    }
    if let Ok(Some(rollout)) = rollout_config(args) {
        println!(
            "  canary: {:.0}% of diagnose traffic, {}-request window",
            f64::from(rollout.canary_frac) * 100.0,
            rollout.window
        );
    }
    println!(
        "  routes: POST /v1/submit, POST /v1/diagnose, GET /healthz, GET /metrics, \
         GET /v1/generations"
    );

    match run_for_s {
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some(seconds) => {
            std::thread::sleep(Duration::from_secs_f64(seconds));
            server.shutdown();
            let snapshot = diagnet_obs::global().snapshot();
            let served: u64 = snapshot
                .metrics
                .iter()
                .filter(|m| m.name == diagnet_server::router::HTTP_REQUESTS_TOTAL)
                .map(|m| match &m.value {
                    diagnet_obs::MetricValue::Counter(n) => *n,
                    _ => 0,
                })
                .sum();
            Ok(format!(
                "served for {seconds}s on {addr}: {served} requests, drained cleanly\n"
            ))
        }
    }
}

/// `diagnet bench`: drive a serving edge over TCP and summarise.
pub fn bench(args: &Args) -> Result<String, CliError> {
    let addr = args
        .get("url")
        .unwrap_or("127.0.0.1:8080")
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    let mode = match (args.get("mode").unwrap_or("closed"), args.get("rate")) {
        ("closed", None) => Mode::Closed,
        ("closed", Some(_)) => {
            return Err(CliError::usage("`--rate` only applies to `--mode open`"));
        }
        ("open", _) => Mode::Open {
            rate: args.get_or("rate", 0.0)?,
        },
        (other, _) => {
            return Err(CliError::usage(format!(
                "unknown mode `{other}` (expected `closed` or `open`)"
            )));
        }
    };
    let config = BenchConfig {
        addr,
        mode,
        concurrency: args.get_or("concurrency", 4)?,
        duration: Duration::from_secs_f64(args.get_or("duration-s", 10.0)?),
        warmup: Duration::from_secs_f64(args.get_or("warmup-s", 2.0)?),
        mix: Mix {
            diagnose_frac: args.get_or("diagnose-frac", 0.5)?,
            batch_frac: args.get_or("batch-frac", 0.1)?,
            corrupt_frac: args.get_or("corrupt-frac", 0.02)?,
        },
        batch_size: args.get_or("batch-size", 16)?,
        seed: args.get_or("seed", 42)?,
        scenarios: args.get_or("scenarios", 10)?,
        connect_timeout: Duration::from_secs_f64(args.get_or("connect-timeout-s", 10.0)?),
        request_timeout: Duration::from_secs(10),
    };
    let report = diagnet_bencher::run(&config).map_err(|e| match e {
        BenchError::Config(msg) => CliError::usage(msg),
        BenchError::Sim(sim) => CliError::from(sim),
        BenchError::Connect(msg) => CliError::Data {
            action: "reach",
            path: config.addr.clone(),
            detail: msg,
        },
    })?;

    let mut out = report.summary();
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.json.render_pretty()).map_err(|e| CliError::Io {
            action: "create",
            path: path.to_string(),
            source: e,
        })?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(parts: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        crate::commands::run(&parse(&raw).unwrap())
    }

    #[test]
    fn serve_flag_validation() {
        for bad in [
            vec!["serve", "--workers", "0"],
            vec!["serve", "--backlog", "0"],
            vec!["serve", "--timeout-ms", "0"],
            vec!["serve", "--run-for-s", "-1"],
            vec!["serve", "--config", "warp"],
            vec!["serve", "--backend", "svm"],
            vec!["serve", "--canary-frac", "1.5"],
            vec!["serve", "--canary-frac", "-0.1"],
            vec!["serve", "--canary-frac", "NaN"],
            vec!["serve", "--canary-window", "0"],
        ] {
            let err = run_line(&bad).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?} should be a usage error");
        }
    }

    #[test]
    fn bench_flag_validation() {
        for bad in [
            vec!["bench", "--mode", "sideways"],
            vec!["bench", "--mode", "open"], // rate missing → 0.0 → invalid
            vec!["bench", "--rate", "100"],  // rate without open mode
            vec!["bench", "--concurrency", "0"],
            vec!["bench", "--diagnose-frac", "1.5"],
            vec!["bench", "--duration-s", "0"],
        ] {
            let err = run_line(&bad).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?} should be a usage error");
        }
    }

    #[test]
    fn bench_against_dead_port_is_an_environment_error() {
        // Port 1 on localhost: nothing listens there.
        let err = run_line(&[
            "bench",
            "--url",
            "127.0.0.1:1",
            "--duration-s",
            "0.2",
            "--warmup-s",
            "0",
            "--connect-timeout-s",
            "0.2",
            "--scenarios",
            "1",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err}");
        assert!(err.to_string().contains("cannot reach"), "{err}");
    }

    /// Full in-process serve → bench round trip over a real TCP socket:
    /// the CLI's own end-to-end smoke (the deeper protocol assertions
    /// live in `crates/server/tests/e2e.rs`).
    #[test]
    fn serve_and_bench_end_to_end() {
        // Ephemeral port: bind the edge directly (the `serve` command's
        // own plumbing is covered by `server_config` + `build_state`).
        let args = parse(
            &[
                "serve",
                "--scenarios",
                "4",
                "--config",
                "smoke",
                "--seed",
                "7",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let (state, provenance) = build_state(&args).unwrap();
        assert!(provenance.contains("bootstrapped from"), "{provenance}");
        let mut config = server_config(&args).unwrap();
        config.addr = "127.0.0.1:0".to_string();
        let mut server = Server::start(config, state).unwrap();
        let addr = server.local_addr().to_string();

        let out = run_line(&[
            "bench",
            "--url",
            &addr,
            "--duration-s",
            "1",
            "--warmup-s",
            "0.2",
            "--concurrency",
            "2",
            "--scenarios",
            "2",
            "--corrupt-frac",
            "0.2",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("requests in the measured window"), "{out}");
        assert!(out.contains("p99"), "{out}");
        server.shutdown();
    }
}
