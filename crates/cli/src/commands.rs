//! Command implementations. Each returns its output as a `String` so the
//! logic is unit-testable without capturing stdout.
//!
//! Model-facing commands are backend-generic: `train` fits whichever
//! [`BackendKind`] `--backend` names (default `diagnet`), `diagnose` /
//! `evaluate` / `info` work on any loaded [`Backend`] and use `--backend`
//! only to assert the artefact's kind. `specialize` is the one
//! DiagNet-only command, because only the paper's model supports
//! per-service transfer learning.

use crate::args::{Args, Command, USAGE};
use crate::error::CliError;
use crate::io;
use diagnet::backend::{Backend, BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet::instrument::InstrumentedBackend;
use diagnet::integrity::{artefact_checksum, render_checksum, verify_checksum};
use diagnet::model::DiagNet;
use diagnet::streaming::StreamOptions;
use diagnet_platform::store;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::service::ServiceCatalog;
use diagnet_sim::stream::{DatasetStream, SampleSource, DEFAULT_CHUNK_SIZE};
use diagnet_sim::world::World;
use std::fmt::Write as _;

/// Execute a parsed command line.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Simulate => simulate(args),
        Command::Campaign => campaign(args),
        Command::Train => train(args),
        Command::Specialize => specialize(args),
        Command::Diagnose => diagnose(args),
        Command::Evaluate => evaluate(args),
        Command::Export => export(args),
        Command::Info => info(args),
        Command::Metrics => metrics(args),
        Command::Serve => crate::serve::serve(args),
        Command::Bench => crate::serve::bench(args),
    }
}

fn model_config(args: &Args) -> Result<DiagNetConfig, CliError> {
    match args.get("config").unwrap_or("paper") {
        "paper" => Ok(DiagNetConfig::paper()),
        "fast" => Ok(DiagNetConfig::fast()),
        other => Err(CliError::usage(format!(
            "unknown config `{other}` (expected `paper` or `fast`)"
        ))),
    }
}

/// The `--backend` flag, when given. Unknown tokens are usage errors.
pub(crate) fn backend_flag(args: &Args) -> Result<Option<BackendKind>, CliError> {
    match args.get("backend") {
        None => Ok(None),
        Some(raw) => BackendKind::parse(raw).map(Some).ok_or_else(|| {
            CliError::usage(format!(
                "unknown backend `{raw}` (expected `diagnet`, `forest`, or `bayes`)"
            ))
        }),
    }
}

/// Load the `--model` artefact and, when `--backend` was given, assert the
/// loaded kind matches it. The result is wrapped in an
/// [`InstrumentedBackend`], so every serving command feeds the process
/// metrics registry (`--metrics-out` / `diagnet metrics`).
fn load_checked_backend(args: &Args) -> Result<Box<dyn Backend>, CliError> {
    let path = args.require("model")?;
    let backend = io::load_backend_file(path)?;
    if let Some(expected) = backend_flag(args)? {
        let actual = backend.describe().kind;
        if actual != expected {
            return Err(CliError::usage(format!(
                "model at `{path}` is a `{actual}` backend, not `{expected}`"
            )));
        }
    }
    Ok(Box::new(InstrumentedBackend::new(backend)))
}

/// Honour `--metrics-out FILE`: dump the global metrics registry as
/// Prometheus text and append a note to the command's output.
fn maybe_dump_metrics(args: &Args, out: &mut String) -> Result<(), CliError> {
    let Some(path) = args.get("metrics-out") else {
        return Ok(());
    };
    let dump = diagnet_obs::global().snapshot().render_prometheus();
    std::fs::write(path, dump).map_err(|e| CliError::Io {
        action: "create",
        path: path.into(),
        source: e,
    })?;
    let _ = writeln!(out, "metrics written to {path}");
    Ok(())
}

fn simulate(args: &Args) -> Result<String, CliError> {
    let out = args.require("out")?;
    let scenarios: usize = args.get_or("scenarios", 100)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let world = World::new();
    let dataset = Dataset::generate(&world, &DatasetConfig::standard(&world, scenarios, seed))?;
    io::save_json(&dataset, out)?;
    Ok(format!(
        "wrote {} samples ({} nominal, {} faulty) to {out}\n",
        dataset.len(),
        dataset.n_nominal(),
        dataset.n_faulty()
    ))
}

fn campaign(args: &Args) -> Result<String, CliError> {
    let out = args.require("out")?;
    let days: usize = args.get_or("days", 14)?;
    let interval_h: f64 = args.get_or("interval-h", 1.0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    if days == 0 {
        return Err(CliError::usage("`--days` must be at least 1"));
    }
    if interval_h <= 0.0 {
        return Err(CliError::usage("`--interval-h` must be positive"));
    }
    let world = World::new();
    let campaign =
        diagnet_sim::timeline::Campaign::generate(&diagnet_sim::timeline::CampaignConfig {
            days,
            seed,
            ..Default::default()
        });
    let stream = campaign.run(
        &world,
        &diagnet_sim::region::ALL_REGIONS,
        &world.catalog.all_ids(),
        interval_h,
        seed,
    );
    let samples: Vec<_> = stream.into_iter().map(|(_, s)| s).collect();
    let dataset = Dataset {
        schema: world.schema.clone(),
        samples,
    };
    io::save_json(&dataset, out)?;
    Ok(format!(
        "wrote a {days}-day campaign: {} samples ({} faulty) to {out}
",
        dataset.len(),
        dataset.n_faulty()
    ))
}

fn train(args: &Args) -> Result<String, CliError> {
    if args.flag("streaming") {
        return train_streaming(args);
    }
    if args.get("chunk-size").is_some() || args.get("window").is_some() {
        return Err(CliError::usage(
            "`--chunk-size` / `--window` only apply to `train --streaming`",
        ));
    }
    let data_path = args.require("data")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let kind = backend_flag(args)?.unwrap_or(BackendKind::DiagNet);
    let config = BackendConfig::from_diagnet(model_config(args)?);
    let dataset = io::load_dataset(data_path)?;
    let split = dataset.split(0.8, seed);
    let backend = kind.train(&config, &split.train, &FeatureSchema::known(), seed)?;
    io::save_backend_file(backend.as_ref(), out)?;
    let info = backend.describe();
    let mut msg = format!(
        "trained on {} samples: `{}` backend, {} parameters",
        split.train.len(),
        info.kind,
        info.n_params
    );
    if let Some(model) = backend.as_any().downcast_ref::<DiagNet>() {
        let _ = write!(
            msg,
            ", {} epochs (final val loss {:.4})",
            model.history.epochs_run,
            model.history.val_loss.last().copied().unwrap_or(f32::NAN)
        );
    }
    let _ = write!(msg, "\nmodel written to {out}\n");
    Ok(msg)
}

/// `train --streaming`: generate samples chunk-by-chunk from the simulator
/// and feed them straight into training — the full dataset is never
/// materialised in memory. Without `--window` the pass is buffered (results
/// are bit-identical to `simulate` + `train`); with `--window W` training
/// shuffles inside a W-row buffer and peak memory is bounded by the window
/// and chunk size instead of the dataset size.
fn train_streaming(args: &Args) -> Result<String, CliError> {
    if args.get("data").is_some() {
        return Err(CliError::usage(
            "`--data` cannot be combined with `--streaming`; streaming mode \
             generates samples from the simulator (`--scenarios`)",
        ));
    }
    let out = args.require("out")?;
    let scenarios: usize = args.get_or("scenarios", 100)?;
    let chunk_size: usize = args.get_or("chunk-size", DEFAULT_CHUNK_SIZE)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let kind = backend_flag(args)?.unwrap_or(BackendKind::DiagNet);
    let config = BackendConfig::from_diagnet(model_config(args)?);
    let options = match args.get("window") {
        None => StreamOptions::default(),
        Some(_) => {
            let window: usize = args.get_or("window", 0)?;
            if window == 0 {
                return Err(CliError::usage("`--window` must be at least 1"));
            }
            StreamOptions::bounded(window)
        }
    };
    let world = World::new();
    let gen_config = DatasetConfig::standard(&world, scenarios, seed);
    let mut stream = DatasetStream::new(&world, &gen_config, chunk_size)?;
    let n_samples = stream.n_samples();
    let backend = kind.train_streaming(
        &config,
        &mut stream,
        &FeatureSchema::known(),
        &options,
        seed,
    )?;
    io::save_backend_file(backend.as_ref(), out)?;
    let info = backend.describe();
    let mut msg = format!(
        "streamed {n_samples} samples in chunks of {chunk_size}: `{}` backend, {} parameters",
        info.kind, info.n_params
    );
    if let Some(model) = backend.as_any().downcast_ref::<DiagNet>() {
        let _ = write!(
            msg,
            ", {} epochs (final val loss {:.4})",
            model.history.epochs_run,
            model.history.val_loss.last().copied().unwrap_or(f32::NAN)
        );
    }
    let _ = write!(msg, "\nmodel written to {out}\n");
    Ok(msg)
}

fn specialize(args: &Args) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let service_name = args.require("service")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let backend = load_checked_backend(args)?;
    let Some(model) = backend.as_any().downcast_ref::<DiagNet>() else {
        return Err(CliError::usage(format!(
            "model at `{model_path}` is a `{}` backend; only `diagnet` supports specialisation",
            backend.describe().kind
        )));
    };
    let dataset = io::load_dataset(data_path)?;
    let catalog = ServiceCatalog::standard();
    let service = catalog
        .by_name(service_name)
        .ok_or_else(|| CliError::usage(format!("unknown service `{service_name}`")))?;
    let service_data = dataset.filter_service(service.id);
    if service_data.is_empty() {
        return Err(CliError::usage(format!(
            "dataset has no samples for `{service_name}`"
        )));
    }
    let special = model.specialize(&service_data, seed)?;
    io::save_backend_file(&special, out)?;
    Ok(format!(
        "specialised for `{service_name}` on {} samples: {} of {} parameters retrained in {} epochs\nmodel written to {out}\n",
        service_data.len(),
        special.num_trainable_params(),
        special.num_params(),
        special.history.epochs_run
    ))
}

fn diagnose(args: &Args) -> Result<String, CliError> {
    let model = load_checked_backend(args)?;
    let dataset = io::load_dataset(args.require("data")?)?;
    let sample_idx: usize = args.get_or("sample", 0)?;
    let top: usize = args.get_or("top", 5)?;
    let sample = dataset.samples.get(sample_idx).ok_or_else(|| {
        CliError::usage(format!(
            "sample {sample_idx} out of range (dataset has {})",
            dataset.len()
        ))
    })?;
    let schema = dataset.schema.clone();
    let ranking = model.rank_causes(&sample.features, &schema);
    let catalog = ServiceCatalog::standard();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sample {sample_idx}: client {} on `{}` (PLT {:.2}s)",
        sample.client_region,
        catalog.get(sample.service).name,
        sample.plt_s
    );
    let _ = writeln!(
        out,
        "P(cause at unknown landmark) = {:.2}",
        ranking.w_unknown
    );
    for (rank, idx) in ranking.top(top).into_iter().enumerate() {
        let _ = writeln!(
            out,
            "  {}. {:<18} {:.3}",
            rank + 1,
            schema.feature(idx).name(),
            // `top()` only yields in-bounds indices; NaN would mean a
            // scores/schema width bug and prints as a visible `NaN`.
            ranking.scores.get(idx).copied().unwrap_or(f32::NAN)
        );
    }
    if let Some(cause) = sample.label.cause() {
        let _ = writeln!(out, "ground truth: {}", cause.name());
    } else {
        let _ = writeln!(out, "ground truth: nominal (no injected cause)");
    }
    let explanation = diagnet::explain::Explanation::from_ranking(&ranking, &schema, 2);
    let _ = writeln!(
        out,
        "
{}",
        explanation.render().trim_end()
    );
    maybe_dump_metrics(args, &mut out)?;
    Ok(out)
}

fn evaluate(args: &Args) -> Result<String, CliError> {
    let model = load_checked_backend(args)?;
    let dataset = io::load_dataset(args.require("data")?)?;
    let max_k: usize = args.get_or("k", 5)?;
    if max_k == 0 {
        return Err(CliError::usage("`--k` must be at least 1"));
    }
    let schema = dataset.schema.clone();
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut truths: Vec<usize> = Vec::new();
    for s in &dataset.samples {
        let Some(cause) = s.label.cause() else {
            continue;
        };
        let Some(truth) = schema.index_of(cause) else {
            return Err(CliError::Data {
                action: "evaluate dataset",
                path: args.require("data")?.to_string(),
                detail: format!(
                    "faulty sample labels cause `{}`, which the dataset schema does not contain",
                    cause.name()
                ),
            });
        };
        rows.push(s.features.clone());
        truths.push(truth);
    }
    if rows.is_empty() {
        return Err(CliError::usage("dataset has no faulty samples to evaluate"));
    }
    let scored: Vec<(Vec<f32>, usize)> = model
        .rank_causes_batch(&rows, &schema)
        .into_iter()
        .map(|r| r.scores)
        .zip(truths)
        .collect();
    let curve = diagnet_eval::recall_curve(&scored, max_k);
    let mut out = format!(
        "{} faulty samples, {} candidate causes (`{}` backend)\n",
        scored.len(),
        schema.n_features(),
        model.describe().kind
    );
    for (k, r) in curve.iter().enumerate() {
        let _ = writeln!(out, "Recall@{} = {:.1}%", k + 1, r * 100.0);
    }
    maybe_dump_metrics(args, &mut out)?;
    Ok(out)
}

fn export(args: &Args) -> Result<String, CliError> {
    let dataset = io::load_dataset(args.require("data")?)?;
    let out = args.require("out")?;
    let file = std::fs::File::create(out).map_err(|e| CliError::Io {
        action: "create",
        path: out.into(),
        source: e,
    })?;
    diagnet_sim::export::write_csv(&dataset, std::io::BufWriter::new(file)).map_err(|e| {
        CliError::Data {
            action: "write",
            path: out.into(),
            detail: e.to_string(),
        }
    })?;
    Ok(format!("wrote {} rows to {out}\n", dataset.len()))
}

/// Checksum and durable-store lineage lines for `info`.
///
/// The artefact bytes are hashed as stored. When the file sits inside a
/// generation store (a sibling manifest lists it), the manifest's recorded
/// checksum is verified — a mismatch is a typed [`CliError::Data`], never
/// a panic — and the generation's lineage and lifecycle status are
/// reported alongside.
fn artefact_integrity(path: &str) -> Result<String, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError::Io {
        action: "open",
        path: path.to_string(),
        source: e,
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  checksum: {}",
        render_checksum(artefact_checksum(&bytes))
    );
    let file_path = std::path::Path::new(path);
    let (Some(parent), Some(name)) = (
        file_path.parent(),
        file_path.file_name().and_then(|n| n.to_str()),
    ) else {
        return Ok(out);
    };
    // A corrupt manifest must not block inspecting the model itself.
    let records = store::read_manifest(parent).unwrap_or_default();
    let Some(record) = records.iter().rev().find(|r| r.file == name) else {
        return Ok(out);
    };
    verify_checksum(&bytes, record.checksum).map_err(|detail| CliError::Data {
        action: "verify",
        path: path.to_string(),
        detail,
    })?;
    let _ = writeln!(
        out,
        "  store generation: {} (status: {}, parent: {})",
        record.generation,
        record.status,
        record
            .parent
            .map_or_else(|| "none".to_string(), |p| p.to_string()),
    );
    Ok(out)
}

fn info(args: &Args) -> Result<String, CliError> {
    // Verify integrity before parsing: a tampered store artefact reports
    // the checksum mismatch, not whatever parse error the damage causes.
    let integrity = artefact_integrity(args.require("model")?)?;
    let backend = load_checked_backend(args)?;
    let meta = backend.describe();
    let mut out = String::new();
    if let Some(model) = backend.as_any().downcast_ref::<DiagNet>() {
        let _ = writeln!(out, "DiagNet model");
        let _ = writeln!(
            out,
            "  architecture: {} filters × {} pooling ops, hidden {:?}",
            model.config.filters,
            model.config.pool_ops.len(),
            model.config.hidden
        );
        let _ = writeln!(
            out,
            "  parameters: {} total, {} trainable",
            model.num_params(),
            model.num_trainable_params()
        );
        let _ = writeln!(
            out,
            "  trained against {} landmarks: {:?}",
            model.train_schema.n_landmarks(),
            model
                .train_schema
                .landmarks()
                .iter()
                .map(|r| r.code())
                .collect::<Vec<_>>()
        );
        let _ = writeln!(
            out,
            "  training: {} epochs, final val loss {:.4}",
            model.history.epochs_run,
            model.history.val_loss.last().copied().unwrap_or(f32::NAN)
        );
        let _ = writeln!(
            out,
            "  auxiliary forest: {} trees",
            model.auxiliary.forest().n_trees()
        );
    } else {
        let _ = writeln!(out, "{} model (`{}` backend)", meta.name, meta.kind);
        let _ = writeln!(out, "  parameters: {}", meta.n_params);
        let _ = writeln!(
            out,
            "  trained against {} landmarks",
            meta.n_train_landmarks
        );
        let _ = writeln!(
            out,
            "  supports specialisation: {}",
            if meta.supports_specialization {
                "yes"
            } else {
                "no"
            }
        );
    }
    // The same health probe the platform's publish gate runs: finite
    // parameters, finite scores on a zero probe.
    let _ = writeln!(
        out,
        "  health: {}",
        match backend.validate() {
            Ok(()) => "ok (finite parameters, finite probe scores)".to_string(),
            Err(e) => format!("FAILED — {e}"),
        }
    );
    out.push_str(&integrity);
    Ok(out)
}

fn metrics(args: &Args) -> Result<String, CliError> {
    // Replay mode: print a dump previously written by `--metrics-out`.
    if let Some(path) = args.get("in") {
        return std::fs::read_to_string(path).map_err(|e| CliError::Io {
            action: "open",
            path: path.into(),
            source: e,
        });
    }
    // Live mode: one-shot processes have nothing accumulated yet, so run a
    // small self-demo (train the forest baseline in memory, score a batch
    // through an instrumented backend) and dump the registry it fed.
    let seed: u64 = args.get_or("seed", 42)?;
    let world = World::new();
    let dataset = Dataset::generate(&world, &DatasetConfig::standard(&world, 6, seed))?;
    let split = dataset.split(0.8, seed);
    let config = BackendConfig::default();
    let inner = BackendKind::Forest.train(&config, &split.train, &FeatureSchema::known(), seed)?;
    let backend = InstrumentedBackend::new(inner);
    let schema = FeatureSchema::full();
    let rows: Vec<Vec<f32>> = split
        .test
        .samples
        .iter()
        .take(64)
        .map(|s| s.features.clone())
        .collect();
    let _ = backend.rank_causes_batch(&rows, &schema);
    if let Some(first) = rows.first() {
        let _ = backend.rank_causes(first, &schema);
    }
    let mut out =
        String::from("live self-demo: trained the forest baseline and scored 65 rows\n\n");
    out.push_str(&diagnet_obs::global().snapshot().render_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("diagnet_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_line(parts: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        run(&parse(&raw).unwrap())
    }

    /// `info` on an artefact inside a generation store prints checksum and
    /// lineage; tampering with the bytes turns into a typed data error
    /// (exit 1), not a panic or a parse failure.
    #[test]
    fn info_reports_store_lineage_and_rejects_tampering() {
        use diagnet_platform::store::GenerationStatus;
        use diagnet_platform::{JsonCodec, ModelStore};
        use std::sync::Arc;

        let dir = tmp("info_store");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::open(&dir, Arc::new(JsonCodec)).unwrap();
        let world = World::new();
        let mut config = DatasetConfig::small(&world, 5);
        config.n_scenarios = 6;
        let data = Dataset::generate(&world, &config).unwrap();
        let backend = BackendKind::Forest
            .train(&BackendConfig::default(), &data, &FeatureSchema::known(), 5)
            .unwrap();
        let record = store
            .persist(backend.as_ref(), None, "forest", GenerationStatus::Active)
            .unwrap();
        let artefact = dir.join(&record.file);
        let artefact_arg = artefact.to_str().unwrap();

        let out = run_line(&["info", "--model", artefact_arg]).unwrap();
        assert!(out.contains("checksum: fnv1a64:"), "{out}");
        assert!(out.contains("store generation: 1"), "{out}");
        assert!(out.contains("status: active"), "{out}");

        // Flip one byte: the manifest checksum no longer matches.
        let mut bytes = std::fs::read(&artefact).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&artefact, bytes).unwrap();
        let err = run_line(&["info", "--model", artefact_arg]).unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("simulate"));
        assert!(out.contains("diagnose"));
        assert!(out.contains("--backend"));
    }

    #[test]
    fn unknown_backend_is_a_usage_error() {
        let err = run_line(&[
            "train",
            "--data",
            "d.json",
            "--out",
            "m.json",
            "--backend",
            "svm",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("unknown backend `svm`"), "{err}");
    }

    #[test]
    fn full_cli_pipeline() {
        let data = tmp("cli_data.json");
        let model = tmp("cli_model.json");
        let special = tmp("cli_special.json");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        let special_s = special.to_str().unwrap();

        // simulate → train → info → evaluate → diagnose → specialize
        let out = run_line(&[
            "simulate",
            "--out",
            data_s,
            "--scenarios",
            "12",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("wrote 1200 samples"), "{out}");

        let out = run_line(&[
            "train", "--data", data_s, "--out", model_s, "--config", "fast", "--seed", "5",
        ])
        .unwrap();
        assert!(out.contains("trained on"), "{out}");

        let out = run_line(&["info", "--model", model_s]).unwrap();
        assert!(out.contains("trained against 7 landmarks"), "{out}");

        // `--backend` validates the artefact's kind.
        let out = run_line(&["info", "--model", model_s, "--backend", "diagnet"]).unwrap();
        assert!(out.contains("DiagNet model"), "{out}");
        let err = run_line(&["info", "--model", model_s, "--backend", "forest"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("not `forest`"), "{err}");

        let dump = tmp("cli_metrics.prom");
        let dump_s = dump.to_str().unwrap();
        let out = run_line(&[
            "evaluate",
            "--model",
            model_s,
            "--data",
            data_s,
            "--k",
            "3",
            "--metrics-out",
            dump_s,
        ])
        .unwrap();
        assert!(out.contains("Recall@3"), "{out}");
        assert!(out.contains("metrics written to"), "{out}");
        // The dump shows the evaluate traffic and replays through
        // `diagnet metrics --in`.
        let replay = run_line(&["metrics", "--in", dump_s]).unwrap();
        // Presence, not exact counts: the global registry is shared with
        // concurrently running tests.
        if cfg!(feature = "obs") {
            assert!(
                replay.contains("diagnet_rank_requests_total{backend=\"diagnet\"}"),
                "{replay}"
            );
            assert!(
                replay.contains("diagnet_rank_latency_seconds_bucket"),
                "{replay}"
            );
        }
        std::fs::remove_file(dump).ok();

        let out = run_line(&[
            "diagnose", "--model", model_s, "--data", data_s, "--sample", "7",
        ])
        .unwrap();
        assert!(out.contains("ground truth"), "{out}");

        let out = run_line(&[
            "specialize",
            "--model",
            model_s,
            "--data",
            data_s,
            "--service",
            "single",
            "--out",
            special_s,
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("specialised for `single`"), "{out}");

        for p in [data, model, special] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn streaming_train_produces_a_servable_model() {
        let model = tmp("cli_stream_model.json");
        let model_s = model.to_str().unwrap();
        let out = run_line(&[
            "train",
            "--streaming",
            "--out",
            model_s,
            "--scenarios",
            "6",
            "--chunk-size",
            "128",
            "--window",
            "256",
            "--config",
            "fast",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(
            out.contains("streamed 600 samples in chunks of 128"),
            "{out}"
        );

        let info = run_line(&["info", "--model", model_s, "--backend", "diagnet"]).unwrap();
        assert!(info.contains("DiagNet model"), "{info}");
        assert!(info.contains("health: ok"), "{info}");
        std::fs::remove_file(model).ok();
    }

    #[test]
    fn streaming_flag_validation() {
        // `--data` and `--streaming` are mutually exclusive.
        let err = run_line(&[
            "train",
            "--streaming",
            "--data",
            "d.json",
            "--out",
            "m.json",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("cannot be combined"), "{err}");

        // Streaming-only knobs are rejected on the materialised path.
        let err = run_line(&[
            "train",
            "--data",
            "d.json",
            "--out",
            "m.json",
            "--chunk-size",
            "64",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--streaming"), "{err}");

        let err =
            run_line(&["train", "--streaming", "--out", "m.json", "--window", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--window"), "{err}");

        // Simulator configuration errors surface as usage errors.
        let err = run_line(&[
            "train",
            "--streaming",
            "--out",
            "m.json",
            "--scenarios",
            "0",
            "--chunk-size",
            "0",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn baseline_backends_train_evaluate_and_diagnose() {
        let data = tmp("cli_backend_data.json");
        let data_s = data.to_str().unwrap();
        run_line(&[
            "simulate",
            "--out",
            data_s,
            "--scenarios",
            "6",
            "--seed",
            "11",
        ])
        .unwrap();

        for backend in ["forest", "bayes"] {
            let model = tmp(&format!("cli_{backend}_model.json"));
            let model_s = model.to_str().unwrap();
            let out = run_line(&[
                "train",
                "--data",
                data_s,
                "--out",
                model_s,
                "--backend",
                backend,
                "--seed",
                "11",
            ])
            .unwrap();
            assert!(out.contains(&format!("`{backend}` backend")), "{out}");

            let out = run_line(&["info", "--model", model_s, "--backend", backend]).unwrap();
            assert!(out.contains("trained against 7 landmarks"), "{out}");
            assert!(out.contains("health: ok"), "{out}");

            let out =
                run_line(&["evaluate", "--model", model_s, "--data", data_s, "--k", "3"]).unwrap();
            assert!(out.contains("Recall@3"), "{out}");

            let out = run_line(&["diagnose", "--model", model_s, "--data", data_s]).unwrap();
            assert!(out.contains("ground truth"), "{out}");

            // Only DiagNet can be specialised.
            let err = run_line(&[
                "specialize",
                "--model",
                model_s,
                "--data",
                data_s,
                "--service",
                "single",
                "--out",
                model_s,
            ])
            .unwrap_err();
            assert_eq!(err.exit_code(), 2);
            assert!(err.to_string().contains("specialisation"), "{err}");

            std::fs::remove_file(model).ok();
        }
        std::fs::remove_file(data).ok();
    }

    /// Needs no file IO, so this also runs in the offline shadow harness.
    #[test]
    #[cfg(feature = "obs")]
    fn metrics_live_self_demo_shows_serving_counters() {
        let out = run_line(&["metrics", "--seed", "13"]).unwrap();
        assert!(out.contains("live self-demo"), "{out}");
        assert!(out.contains("diagnet_rank_requests_total"), "{out}");
        assert!(out.contains("p99="), "{out}");
        let err = run_line(&["metrics", "--in", "/nonexistent.prom"]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn export_subcommand_round_trip() {
        let data = tmp("cli_export_data.json");
        let csv = tmp("cli_export.csv");
        let (data_s, csv_s) = (data.to_str().unwrap(), csv.to_str().unwrap());
        run_line(&[
            "simulate",
            "--out",
            data_s,
            "--scenarios",
            "2",
            "--seed",
            "9",
        ])
        .unwrap();
        let msg = run_line(&["export", "--data", data_s, "--out", csv_s]).unwrap();
        assert!(msg.contains("wrote 200 rows"), "{msg}");
        let content = std::fs::read_to_string(&csv).unwrap();
        assert!(content.starts_with("SEAT_rtt,"));
        assert_eq!(content.lines().count(), 201);
        std::fs::remove_file(data).ok();
        std::fs::remove_file(csv).ok();
    }

    #[test]
    fn campaign_subcommand_writes_time_ordered_dataset() {
        let out = tmp("cli_campaign.json");
        let out_s = out.to_str().unwrap();
        let msg = run_line(&[
            "campaign",
            "--out",
            out_s,
            "--days",
            "1",
            "--interval-h",
            "6",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(msg.contains("1-day campaign"), "{msg}");
        // The artefact is a loadable dataset.
        let ds = io::load_dataset(out_s).unwrap();
        assert_eq!(ds.len(), (24 / 6) * 10 * 10);
        let err = run_line(&["campaign", "--out", out_s, "--days", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn helpful_errors() {
        let err = run_line(&[
            "train",
            "--data",
            "/nonexistent.json",
            "--out",
            "/tmp/x.json",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("cannot open"), "{err}");
        assert_eq!(err.exit_code(), 1);

        let err = run_line(&["info"]).unwrap_err();
        assert!(err.to_string().contains("--model"), "{err}");
        assert_eq!(err.exit_code(), 2);

        let data = tmp("cli_err_data.json");
        let data_s = data.to_str().unwrap();
        run_line(&["simulate", "--out", data_s, "--scenarios", "2"]).unwrap();
        let err = run_line(&["diagnose", "--model", data_s, "--data", data_s]).unwrap_err();
        assert!(err.to_string().contains("serialization error"), "{err}");
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(data).ok();
    }
}
