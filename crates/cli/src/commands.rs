//! Command implementations. Each returns its output as a `String` so the
//! logic is unit-testable without capturing stdout.

use crate::args::{Args, Command, USAGE};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::service::ServiceCatalog;
use diagnet_sim::world::World;
use std::fmt::Write as _;

/// Execute a parsed command line.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Simulate => simulate(args),
        Command::Campaign => campaign(args),
        Command::Train => train(args),
        Command::Specialize => specialize(args),
        Command::Diagnose => diagnose(args),
        Command::Evaluate => evaluate(args),
        Command::Export => export(args),
        Command::Info => info(args),
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    serde_json::from_reader(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot parse dataset `{path}`: {e}"))
}

fn save_json<T: serde::Serialize>(value: &T, path: &str) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    serde_json::to_writer(std::io::BufWriter::new(file), value)
        .map_err(|e| format!("cannot write `{path}`: {e}"))
}

fn load_model(path: &str) -> Result<DiagNet, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    DiagNet::load(std::io::BufReader::new(file)).map_err(|e| e.to_string())
}

fn model_config(args: &Args) -> Result<DiagNetConfig, String> {
    match args.get("config").unwrap_or("paper") {
        "paper" => Ok(DiagNetConfig::paper()),
        "fast" => Ok(DiagNetConfig::fast()),
        other => Err(format!(
            "unknown config `{other}` (expected `paper` or `fast`)"
        )),
    }
}

fn simulate(args: &Args) -> Result<String, String> {
    let out = args.require("out")?;
    let scenarios: usize = args.get_or("scenarios", 100)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let world = World::new();
    let dataset = Dataset::generate(&world, &DatasetConfig::standard(&world, scenarios, seed));
    save_json(&dataset, out)?;
    Ok(format!(
        "wrote {} samples ({} nominal, {} faulty) to {out}\n",
        dataset.len(),
        dataset.n_nominal(),
        dataset.n_faulty()
    ))
}

fn campaign(args: &Args) -> Result<String, String> {
    let out = args.require("out")?;
    let days: usize = args.get_or("days", 14)?;
    let interval_h: f64 = args.get_or("interval-h", 1.0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    if days == 0 {
        return Err("`--days` must be at least 1".into());
    }
    if interval_h <= 0.0 {
        return Err("`--interval-h` must be positive".into());
    }
    let world = World::new();
    let campaign =
        diagnet_sim::timeline::Campaign::generate(&diagnet_sim::timeline::CampaignConfig {
            days,
            seed,
            ..Default::default()
        });
    let stream = campaign.run(
        &world,
        &diagnet_sim::region::ALL_REGIONS,
        &world.catalog.all_ids(),
        interval_h,
        seed,
    );
    let samples: Vec<_> = stream.into_iter().map(|(_, s)| s).collect();
    let dataset = Dataset {
        schema: world.schema.clone(),
        samples,
    };
    save_json(&dataset, out)?;
    Ok(format!(
        "wrote a {days}-day campaign: {} samples ({} faulty) to {out}
",
        dataset.len(),
        dataset.n_faulty()
    ))
}

fn train(args: &Args) -> Result<String, String> {
    let data_path = args.require("data")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let config = model_config(args)?;
    let dataset = load_dataset(data_path)?;
    let split = dataset.split(0.8, seed);
    let model = DiagNet::train(&config, &split.train, seed).map_err(|e| e.to_string())?;
    model.save_to_path(out).map_err(|e| e.to_string())?;
    Ok(format!(
        "trained on {} samples: {} parameters, {} epochs (final val loss {:.4})\nmodel written to {out}\n",
        split.train.len(),
        model.num_params(),
        model.history.epochs_run,
        model.history.val_loss.last().copied().unwrap_or(f32::NAN)
    ))
}

fn specialize(args: &Args) -> Result<String, String> {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let service_name = args.require("service")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let model = load_model(model_path)?;
    let dataset = load_dataset(data_path)?;
    let catalog = ServiceCatalog::standard();
    let service = catalog
        .by_name(service_name)
        .ok_or_else(|| format!("unknown service `{service_name}`"))?;
    let service_data = dataset.filter_service(service.id);
    if service_data.is_empty() {
        return Err(format!("dataset has no samples for `{service_name}`"));
    }
    let special = model
        .specialize(&service_data, seed)
        .map_err(|e| e.to_string())?;
    special.save_to_path(out).map_err(|e| e.to_string())?;
    Ok(format!(
        "specialised for `{service_name}` on {} samples: {} of {} parameters retrained in {} epochs\nmodel written to {out}\n",
        service_data.len(),
        special.num_trainable_params(),
        special.num_params(),
        special.history.epochs_run
    ))
}

fn diagnose(args: &Args) -> Result<String, String> {
    let model = load_model(args.require("model")?)?;
    let dataset = load_dataset(args.require("data")?)?;
    let sample_idx: usize = args.get_or("sample", 0)?;
    let top: usize = args.get_or("top", 5)?;
    let sample = dataset.samples.get(sample_idx).ok_or_else(|| {
        format!(
            "sample {sample_idx} out of range (dataset has {})",
            dataset.len()
        )
    })?;
    let schema = dataset.schema.clone();
    let ranking = model.rank_causes(&sample.features, &schema);
    let catalog = ServiceCatalog::standard();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sample {sample_idx}: client {} on `{}` (PLT {:.2}s)",
        sample.client_region,
        catalog.get(sample.service).name,
        sample.plt_s
    );
    let _ = writeln!(
        out,
        "P(cause at unknown landmark) = {:.2}",
        ranking.w_unknown
    );
    for (rank, idx) in ranking.top(top).into_iter().enumerate() {
        let _ = writeln!(
            out,
            "  {}. {:<18} {:.3}",
            rank + 1,
            schema.feature(idx).name(),
            ranking.scores[idx]
        );
    }
    if let Some(cause) = sample.label.cause() {
        let _ = writeln!(out, "ground truth: {}", cause.name());
    } else {
        let _ = writeln!(out, "ground truth: nominal (no injected cause)");
    }
    let explanation = diagnet::explain::Explanation::from_ranking(&ranking, &schema, 2);
    let _ = writeln!(
        out,
        "
{}",
        explanation.render().trim_end()
    );
    Ok(out)
}

fn evaluate(args: &Args) -> Result<String, String> {
    let model = load_model(args.require("model")?)?;
    let dataset = load_dataset(args.require("data")?)?;
    let max_k: usize = args.get_or("k", 5)?;
    if max_k == 0 {
        return Err("`--k` must be at least 1".into());
    }
    let schema = dataset.schema.clone();
    let scored: Vec<(Vec<f32>, usize)> = dataset
        .samples
        .iter()
        .filter_map(|s| {
            let cause = s.label.cause()?;
            Some((
                model.rank_causes(&s.features, &schema).scores,
                schema.index_of(cause).expect("cause in schema"),
            ))
        })
        .collect();
    if scored.is_empty() {
        return Err("dataset has no faulty samples to evaluate".into());
    }
    let curve = diagnet_eval::recall_curve(&scored, max_k);
    let mut out = format!(
        "{} faulty samples, {} candidate causes\n",
        scored.len(),
        schema.n_features()
    );
    for (k, r) in curve.iter().enumerate() {
        let _ = writeln!(out, "Recall@{} = {:.1}%", k + 1, r * 100.0);
    }
    Ok(out)
}

fn export(args: &Args) -> Result<String, String> {
    let dataset = load_dataset(args.require("data")?)?;
    let out = args.require("out")?;
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create `{out}`: {e}"))?;
    diagnet_sim::export::write_csv(&dataset, std::io::BufWriter::new(file))
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    Ok(format!("wrote {} rows to {out}\n", dataset.len()))
}

fn info(args: &Args) -> Result<String, String> {
    let model = load_model(args.require("model")?)?;
    let mut out = String::new();
    let _ = writeln!(out, "DiagNet model");
    let _ = writeln!(
        out,
        "  architecture: {} filters × {} pooling ops, hidden {:?}",
        model.config.filters,
        model.config.pool_ops.len(),
        model.config.hidden
    );
    let _ = writeln!(
        out,
        "  parameters: {} total, {} trainable",
        model.num_params(),
        model.num_trainable_params()
    );
    let _ = writeln!(
        out,
        "  trained against {} landmarks: {:?}",
        model.train_schema.n_landmarks(),
        model
            .train_schema
            .landmarks()
            .iter()
            .map(|r| r.code())
            .collect::<Vec<_>>()
    );
    let _ = writeln!(
        out,
        "  training: {} epochs, final val loss {:.4}",
        model.history.epochs_run,
        model.history.val_loss.last().copied().unwrap_or(f32::NAN)
    );
    let _ = writeln!(
        out,
        "  auxiliary forest: {} trees",
        model.auxiliary.forest().n_trees()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("diagnet_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_line(parts: &[&str]) -> Result<String, String> {
        let raw: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        run(&parse(&raw).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("simulate"));
        assert!(out.contains("diagnose"));
    }

    #[test]
    fn full_cli_pipeline() {
        let data = tmp("cli_data.json");
        let model = tmp("cli_model.json");
        let special = tmp("cli_special.json");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        let special_s = special.to_str().unwrap();

        // simulate → train → info → evaluate → diagnose → specialize
        let out = run_line(&[
            "simulate",
            "--out",
            data_s,
            "--scenarios",
            "12",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("wrote 1200 samples"), "{out}");

        let out = run_line(&[
            "train", "--data", data_s, "--out", model_s, "--config", "fast", "--seed", "5",
        ])
        .unwrap();
        assert!(out.contains("trained on"), "{out}");

        let out = run_line(&["info", "--model", model_s]).unwrap();
        assert!(out.contains("trained against 7 landmarks"), "{out}");

        let out =
            run_line(&["evaluate", "--model", model_s, "--data", data_s, "--k", "3"]).unwrap();
        assert!(out.contains("Recall@3"), "{out}");

        let out = run_line(&[
            "diagnose", "--model", model_s, "--data", data_s, "--sample", "7",
        ])
        .unwrap();
        assert!(out.contains("ground truth"), "{out}");

        let out = run_line(&[
            "specialize",
            "--model",
            model_s,
            "--data",
            data_s,
            "--service",
            "single",
            "--out",
            special_s,
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("specialised for `single`"), "{out}");

        for p in [data, model, special] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn export_subcommand_round_trip() {
        let data = tmp("cli_export_data.json");
        let csv = tmp("cli_export.csv");
        let (data_s, csv_s) = (data.to_str().unwrap(), csv.to_str().unwrap());
        run_line(&[
            "simulate",
            "--out",
            data_s,
            "--scenarios",
            "2",
            "--seed",
            "9",
        ])
        .unwrap();
        let msg = run_line(&["export", "--data", data_s, "--out", csv_s]).unwrap();
        assert!(msg.contains("wrote 200 rows"), "{msg}");
        let content = std::fs::read_to_string(&csv).unwrap();
        assert!(content.starts_with("SEAT_rtt,"));
        assert_eq!(content.lines().count(), 201);
        std::fs::remove_file(data).ok();
        std::fs::remove_file(csv).ok();
    }

    #[test]
    fn campaign_subcommand_writes_time_ordered_dataset() {
        let out = tmp("cli_campaign.json");
        let out_s = out.to_str().unwrap();
        let msg = run_line(&[
            "campaign",
            "--out",
            out_s,
            "--days",
            "1",
            "--interval-h",
            "6",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(msg.contains("1-day campaign"), "{msg}");
        // The artefact is a loadable dataset.
        let ds = load_dataset(out_s).unwrap();
        assert_eq!(ds.len(), (24 / 6) * 10 * 10);
        assert!(run_line(&["campaign", "--out", out_s, "--days", "0"]).is_err());
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run_line(&[
            "train",
            "--data",
            "/nonexistent.json",
            "--out",
            "/tmp/x.json"
        ])
        .unwrap_err()
        .contains("cannot open"));
        assert!(run_line(&["info"]).unwrap_err().contains("--model"));
        let data = tmp("cli_err_data.json");
        let data_s = data.to_str().unwrap();
        run_line(&["simulate", "--out", data_s, "--scenarios", "2"]).unwrap();
        assert!(run_line(&["diagnose", "--model", data_s, "--data", data_s])
            .unwrap_err()
            .contains("serialization error"));
        std::fs::remove_file(data).ok();
    }
}
