//! The `diagnet` binary: thin wrapper over [`diagnet_cli`].
//!
//! Exit status: 0 on success, 2 on user error (with usage text), 1 on
//! environment/artefact errors — see [`diagnet_cli::CliError::exit_code`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let exit =
        match diagnet_cli::args::parse(&raw).and_then(|args| diagnet_cli::commands::run(&args)) {
            Ok(output) => {
                print!("{output}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                if e.exit_code() == 2 {
                    eprintln!("{}", diagnet_cli::args::USAGE);
                }
                e.exit_code()
            }
        };
    std::process::exit(exit);
}
