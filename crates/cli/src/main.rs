//! The `diagnet` binary: thin wrapper over [`diagnet_cli`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let exit = match diagnet_cli::args::parse(&raw) {
        Ok(args) => match diagnet_cli::commands::run(&args) {
            Ok(output) => {
                print!("{output}");
                0
            }
            Err(message) => {
                eprintln!("error: {message}");
                1
            }
        },
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", diagnet_cli::args::USAGE);
            2
        }
    };
    std::process::exit(exit);
}
