//! File IO for the CLI, kept in one module so every path/serde failure is
//! converted to a [`CliError`] with the offending path in the message.
//!
//! Model artefacts go through [`diagnet::backend_persist`]: new files are
//! versioned envelopes tagged with their [`BackendKind`]; bare `DiagNet`
//! JSON written by older builds still loads via the legacy fallback.
//!
//! [`BackendKind`]: diagnet::backend::BackendKind

use crate::error::CliError;
use diagnet::backend::Backend;
use diagnet::backend_persist;
use diagnet_sim::Dataset;
use std::io::{BufReader, BufWriter};

/// Load a dataset JSON produced by `simulate`/`campaign`.
pub fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    let file = std::fs::File::open(path).map_err(|e| CliError::Io {
        action: "open",
        path: path.into(),
        source: e,
    })?;
    serde_json::from_reader(BufReader::new(file)).map_err(|e| CliError::Data {
        action: "parse dataset",
        path: path.into(),
        detail: e.to_string(),
    })
}

/// Serialise any value as JSON to `path`.
pub fn save_json<T: serde::Serialize>(value: &T, path: &str) -> Result<(), CliError> {
    let file = std::fs::File::create(path).map_err(|e| CliError::Io {
        action: "create",
        path: path.into(),
        source: e,
    })?;
    serde_json::to_writer(BufWriter::new(file), value).map_err(|e| CliError::Data {
        action: "write",
        path: path.into(),
        detail: e.to_string(),
    })
}

/// Load a model artefact: versioned envelope first, bare legacy `DiagNet`
/// JSON as the fallback.
pub fn load_backend_file(path: &str) -> Result<Box<dyn Backend>, CliError> {
    let file = std::fs::File::open(path).map_err(|e| CliError::Io {
        action: "open",
        path: path.into(),
        source: e,
    })?;
    backend_persist::load_backend(BufReader::new(file)).map_err(CliError::Model)
}

/// Save any backend to `path` as a versioned envelope.
pub fn save_backend_file(backend: &dyn Backend, path: &str) -> Result<(), CliError> {
    let file = std::fs::File::create(path).map_err(|e| CliError::Io {
        action: "create",
        path: path.into(),
        source: e,
    })?;
    backend_persist::save_backend(backend, BufWriter::new(file)).map_err(CliError::Model)
}
