//! The CLI's typed error: every fallible path in [`crate::args`] and
//! [`crate::commands`] funnels into [`CliError`], which knows how to render
//! itself with context and which process exit status it maps to.
//!
//! Exit-status contract (documented in [`crate::args::USAGE`]):
//!
//! * `2` — user error: bad flags, unknown backends/services/configs,
//!   out-of-range requests. The shell sees "you asked wrong".
//! * `1` — environment or artefact error: unreadable files, corrupt
//!   models, training failures. The shell sees "it went wrong".

use diagnet_nn::NnError;
use std::fmt;

/// Everything that can go wrong between `argv` and a command's output.
#[derive(Debug)]
pub enum CliError {
    /// The user asked for something invalid (bad flag, unknown value,
    /// out-of-range index). Exits with status 2.
    Usage(String),
    /// A filesystem operation on `path` failed.
    Io {
        /// What we were doing: `"open"`, `"create"`, …
        action: &'static str,
        /// The offending path, as the user spelled it.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An artefact at `path` exists but its contents are unusable.
    Data {
        /// What we were doing: `"parse dataset"`, `"write"`, …
        action: &'static str,
        /// The offending path, as the user spelled it.
        path: String,
        /// The parser/encoder's message.
        detail: String,
    },
    /// The model layer (training, serialisation, specialisation) failed.
    Model(NnError),
}

impl CliError {
    /// Build a [`CliError::Usage`] from anything stringly.
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError::Usage(message.into())
    }

    /// The process exit status this error maps to: 2 for user errors,
    /// 1 for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => f.write_str(message),
            CliError::Io {
                action,
                path,
                source,
            } => write!(f, "cannot {action} `{path}`: {source}"),
            CliError::Data {
                action,
                path,
                detail,
            } => write!(f, "cannot {action} `{path}`: {detail}"),
            CliError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<NnError> for CliError {
    fn from(e: NnError) -> CliError {
        CliError::Model(e)
    }
}

impl From<diagnet_sim::SimError> for CliError {
    /// Simulator configuration errors (no regions/services, zero chunk
    /// size) are things the user asked for, so they exit with status 2.
    fn from(e: diagnet_sim::SimError) -> CliError {
        CliError::Usage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_exit_2_everything_else_1() {
        assert_eq!(CliError::usage("bad flag").exit_code(), 2);
        assert_eq!(
            CliError::Io {
                action: "open",
                path: "x.json".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::Model(NnError::Serialization("bad".into())).exit_code(),
            1
        );
    }

    #[test]
    fn display_gives_path_context() {
        let e = CliError::Io {
            action: "open",
            path: "missing.json".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        };
        let text = e.to_string();
        assert!(text.contains("cannot open `missing.json`"), "{text}");

        let e = CliError::Data {
            action: "parse dataset",
            path: "d.json".into(),
            detail: "truncated".into(),
        };
        assert!(
            e.to_string().contains("cannot parse dataset `d.json`"),
            "{e}"
        );
    }

    #[test]
    fn model_errors_keep_the_nn_error_text() {
        let e = CliError::from(NnError::Serialization("bad payload".into()));
        let text = e.to_string();
        assert!(text.contains("serialization error"), "{text}");
    }
}
