//! # diagnet-cli — command-line interface
//!
//! A small, dependency-free CLI over the DiagNet reproduction:
//!
//! ```text
//! diagnet simulate  --scenarios 100 --seed 42 --out dataset.json
//! diagnet train     --data dataset.json --out model.json [--config fast]
//!                   [--backend diagnet|forest|bayes]
//! diagnet specialize --model model.json --data dataset.json \
//!                    --service video.stream --out special.json
//! diagnet diagnose  --model model.json --data dataset.json --sample 3
//! diagnet evaluate  --model model.json --data dataset.json [--k 5]
//! diagnet info      --model model.json
//! diagnet serve     --addr 127.0.0.1:8080 --workers 4
//! diagnet bench     --url 127.0.0.1:8080 --mode open --rate 200
//! ```
//!
//! Datasets and models are interchanged as JSON, so pipelines can be
//! scripted and artefacts inspected. Models are wrapped in a versioned
//! envelope tagged with their [`BackendKind`](diagnet::backend::BackendKind);
//! `--backend` selects the family on `train` and asserts the artefact's
//! kind elsewhere. Errors are the typed [`CliError`]: user errors exit
//! with status 2, environment errors with 1.

pub mod args;
pub mod commands;
pub mod error;
pub mod io;
pub mod serve;

pub use args::{Args, Command};
pub use commands::run;
pub use error::CliError;
