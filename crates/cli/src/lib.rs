//! # diagnet-cli — command-line interface
//!
//! A small, dependency-free CLI over the DiagNet reproduction:
//!
//! ```text
//! diagnet simulate  --scenarios 100 --seed 42 --out dataset.json
//! diagnet train     --data dataset.json --out model.json [--config fast]
//! diagnet specialize --model model.json --data dataset.json \
//!                    --service video.stream --out special.json
//! diagnet diagnose  --model model.json --data dataset.json --sample 3
//! diagnet evaluate  --model model.json --data dataset.json [--k 5]
//! diagnet info      --model model.json
//! ```
//!
//! Datasets and models are interchanged as JSON, so pipelines can be
//! scripted and artefacts inspected.

pub mod args;
pub mod commands;

pub use args::{Args, Command};
pub use commands::run;
