//! Hand-rolled argument parsing (keeping the dependency set minimal).
//! Every rejection is a [`CliError::Usage`], so `main` exits with
//! status 2 and prints the usage text.

use crate::error::CliError;
use std::collections::HashMap;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

/// Supported subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Generate a labelled dataset from the simulator.
    Simulate,
    /// Generate a time-ordered two-week measurement campaign.
    Campaign,
    /// Train a general DiagNet model.
    Train,
    /// Specialise an existing model for one service.
    Specialize,
    /// Diagnose one sample with a trained model.
    Diagnose,
    /// Evaluate Recall@k of a model on a dataset.
    Evaluate,
    /// Export a dataset to CSV.
    Export,
    /// Print a model summary.
    Info,
    /// Print serving metrics (a saved dump or a live self-demo).
    Metrics,
    /// Serve the analysis service over HTTP (see SERVING.md).
    Serve,
    /// Load-test a running serving edge and report latency percentiles.
    Bench,
    /// Print usage.
    Help,
}

impl Command {
    fn from_name(name: &str) -> Option<Command> {
        Some(match name {
            "simulate" => Command::Simulate,
            "campaign" => Command::Campaign,
            "train" => Command::Train,
            "specialize" | "specialise" => Command::Specialize,
            "diagnose" => Command::Diagnose,
            "evaluate" => Command::Evaluate,
            "export" => Command::Export,
            "info" => Command::Info,
            "metrics" => Command::Metrics,
            "serve" => Command::Serve,
            "bench" => Command::Bench,
            "help" | "--help" | "-h" => Command::Help,
            _ => return None,
        })
    }
}

/// Options that are bare flags: they take no value and parse as `true`.
const BOOL_FLAGS: &[&str] = &["streaming"];

/// Parse a raw argument vector (without the program name).
///
/// Grammar: `<command> (--key value | --flag)*`, where `--flag` is one of
/// [`BOOL_FLAGS`].
pub fn parse(args: &[String]) -> Result<Args, CliError> {
    let Some(first) = args.first() else {
        return Ok(Args {
            command: Command::Help,
            options: HashMap::new(),
        });
    };
    let command = Command::from_name(first).ok_or_else(|| {
        CliError::usage(format!("unknown command `{first}` (try `diagnet help`)"))
    })?;
    let mut options = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = &args[i];
        let Some(name) = key.strip_prefix("--") else {
            return Err(CliError::usage(format!("expected `--option`, got `{key}`")));
        };
        if BOOL_FLAGS.contains(&name) {
            if options
                .insert(name.to_string(), "true".to_string())
                .is_some()
            {
                return Err(CliError::usage(format!("option `--{name}` given twice")));
            }
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(CliError::usage(format!(
                "option `--{name}` is missing a value"
            )));
        };
        if options.insert(name.to_string(), value.clone()).is_some() {
            return Err(CliError::usage(format!("option `--{name}` given twice")));
        }
        i += 2;
    }
    Ok(Args { command, options })
}

impl Args {
    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::usage(format!("missing required option `--{name}`")))
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a bare boolean flag (see [`BOOL_FLAGS`]) was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::usage(format!("option `--{name}`: cannot parse `{raw}`"))),
        }
    }
}

/// The usage text printed by `diagnet help`.
pub const USAGE: &str = "\
diagnet — convolutional Internet-scale root-cause analysis (IPDPS 2021 reproduction)

USAGE:
    diagnet <command> [--option value]...

COMMANDS:
    simulate    --out FILE [--scenarios N=100] [--seed S=42]
                generate a labelled dataset from the simulated testbed
    campaign    --out FILE [--days N=14] [--interval-h H=1.0] [--seed S=42]
                generate a time-ordered measurement campaign (dataset JSON)
    train       --data FILE --out FILE [--backend diagnet|forest|bayes=diagnet]
                [--config paper|fast=paper] [--seed S=42]
                train a model (hidden-landmark protocol)
                streaming mode: --streaming --out FILE [--scenarios N=100]
                [--chunk-size N=8192] [--window W] — generate bounded-memory
                chunks from the simulator instead of loading `--data`;
                `--window` caps the shuffle buffer (default: full pass)
    specialize  --model FILE --data FILE --service NAME --out FILE [--seed S=42]
                retrain the final layers for one service (diagnet backend only)
    diagnose    --model FILE --data FILE --sample IDX [--top K=5] [--backend B]
                [--metrics-out FILE]
                rank the root causes of one sample
    evaluate    --model FILE --data FILE [--k 5] [--backend B] [--metrics-out FILE]
                Recall@1..k on the dataset's faulty samples
    export      --data FILE --out FILE
                convert a dataset JSON to CSV (pandas/R-friendly)
    info        --model FILE [--backend B]
                print a model summary and its artefact checksum; for models
                inside a `--state-dir` store, also generation lineage and
                lifecycle status (checksum mismatches are data errors)
    metrics     [--in FILE] [--seed S=42]
                print serving metrics: a dump saved by `--metrics-out`
                (`--in`), or a live self-demo (see OBSERVABILITY.md)
    serve       [--addr A=127.0.0.1:8080] [--workers N=4] [--backlog N=128]
                [--timeout-ms MS=5000] [--model FILE | --scenarios N=20]
                [--config paper|fast|smoke=fast] [--backend B] [--seed S=42]
                [--run-for-s SECS] [--state-dir DIR] [--canary-frac F=0]
                [--canary-window N=50]
                serve POST /v1/submit, POST /v1/diagnose, GET /healthz,
                GET /metrics and GET /v1/generations over HTTP (operator
                guide: SERVING.md); with no `--model`, bootstraps from
                `--scenarios` of simulated traffic; `--run-for-s` serves
                for a fixed time, then drains; `--state-dir` persists every
                published generation (crash-safe, checksummed) and recovers
                the newest active one on restart; `--canary-frac` > 0
                routes that fraction of diagnose traffic to freshly
                retrained generations for a `--canary-window`-request
                observation before promotion, auto-rolling back degraded
                candidates
    bench       [--url U=127.0.0.1:8080] [--mode closed|open=closed]
                [--rate RPS] [--concurrency N=4] [--duration-s D=10]
                [--warmup-s W=2] [--diagnose-frac F=0.5] [--batch-frac F=0.1]
                [--batch-size N=16] [--corrupt-frac F=0.02] [--seed S=42]
                [--scenarios N=10] [--connect-timeout-s T=10] [--out FILE]
                drive a serving edge with a seeded probe mix and report
                per-route throughput and p50/p95/p99 (see EXPERIMENTS.md);
                `--out` writes the full BENCH_serving.json report
    help        this text

`--backend` selects which model family `train` fits; on `diagnose`,
`evaluate` and `info` it asserts the kind of the loaded artefact.
`--metrics-out` writes the serving-metrics registry as Prometheus text
after the run; `diagnet metrics --in FILE` prints such a dump back.

EXIT STATUS:
    0  success
    1  environment error (unreadable file, corrupt model, training failure)
    2  user error (bad flags, unknown backend/service/config)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&s(&["train", "--data", "d.json", "--out", "m.json"])).unwrap();
        assert_eq!(args.command, Command::Train);
        assert_eq!(args.require("data").unwrap(), "d.json");
        assert_eq!(args.require("out").unwrap(), "m.json");
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(parse(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&s(&["train", "--data"])).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&s(&["train", "--data", "a", "--data", "b"])).is_err());
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(parse(&s(&["train", "stray"])).is_err());
    }

    #[test]
    fn get_or_parses_with_default() {
        let args = parse(&s(&["simulate", "--scenarios", "25"])).unwrap();
        assert_eq!(args.get_or("scenarios", 100usize).unwrap(), 25);
        assert_eq!(args.get_or("seed", 42u64).unwrap(), 42);
        assert!(args.get_or::<usize>("scenarios", 0).is_ok());
        let bad = parse(&s(&["simulate", "--scenarios", "many"])).unwrap();
        assert!(bad.get_or::<usize>("scenarios", 0).is_err());
    }

    #[test]
    fn bool_flags_take_no_value() {
        let args = parse(&s(&["train", "--streaming", "--out", "m.json"])).unwrap();
        assert!(args.flag("streaming"));
        assert_eq!(args.require("out").unwrap(), "m.json");
        let args = parse(&s(&["train", "--out", "m.json"])).unwrap();
        assert!(!args.flag("streaming"));
        assert!(parse(&s(&["train", "--streaming", "--streaming"])).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let args = parse(&s(&["info"])).unwrap();
        assert!(args.require("model").is_err());
    }

    #[test]
    fn british_spelling_accepted() {
        assert_eq!(
            parse(&s(&["specialise"])).unwrap().command,
            Command::Specialize
        );
    }
}
