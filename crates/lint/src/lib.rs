//! diagnet-lint: the workspace invariant checker.
//!
//! Four rule families keep the serving stack honest, mechanically:
//!
//! * **panic** — the serving-path modules (platform service/registry/
//!   supervisor/admission, core backend/ranking/instrument, CLI commands)
//!   must not `unwrap`/`expect`/`panic!`/index; a probe must get a ranked
//!   answer or a typed error, never an abort.
//! * **hash_iter** — scoring/training/persistence crates must use ordered
//!   maps; `HashMap` iteration order would leak into rankings, artefacts,
//!   and golden files.
//! * **no_alloc** — `// lint: no_alloc`-marked kernels (nn workspace
//!   forward/backward, core batch scoring) must not allocate.
//! * **metrics_doc** — metric name literals and OBSERVABILITY.md must
//!   stay the same set, both directions.
//!
//! Escapes are explicit, justified, and counted:
//! `// lint: allow(<rule>, reason = "...")` suppresses exactly one
//! finding and becomes a violation itself the moment it stops matching.
//!
//! The checker is dependency-free by design: it lexes Rust with its own
//! scanner (`lexer`), so it builds wherever the workspace builds,
//! including offline environments. Run it as
//! `cargo run -p diagnet-lint -- check`.

pub mod check;
pub mod diagnostics;
pub mod directives;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use check::{check_file, check_workspace, resolve_root};
pub use diagnostics::{Report, Rule, UsedAllow, Violation};
