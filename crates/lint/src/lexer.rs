//! A small Rust lexer: just enough tokenization for the invariant rules.
//!
//! The scanner understands line/doc comments, (nested) block comments,
//! string/raw-string/byte-string literals, char literals vs. lifetimes,
//! numbers, identifiers, and punctuation — everything needed so the rules
//! never mistake the *contents* of a string or comment for code. It does
//! not build an AST; the rules work on the token stream plus brace
//! matching, which is exact for the patterns they police.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); `text` is
    /// the *unquoted* content for plain strings, raw content for raw ones.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Number literal (`0`, `1.5e3`, `0x7E`).
    Num,
    /// Single punctuation character (`.`, `[`, `!`, …).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind::Str`] for string semantics).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the token start.
    pub col: usize,
}

/// One comment with its position. `text` excludes the `//` / `/*` markers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without delimiters, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// Lexer output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments (line and block) in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Invalid UTF-8 is not expected (sources come from this
/// repository); bytes ≥ 0x80 are folded into identifiers, which is good
/// enough for the rules.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut line_start = true;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' => {
                cur.bump();
            }
            b'\n' => {
                cur.bump();
                line_start = true;
                continue;
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b' ') as char);
                }
                let body = text.trim_start_matches('/').trim().to_string();
                out.comments.push(Comment {
                    text: body,
                    line,
                    own_line: line_start,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            text.push(cur.bump().unwrap_or(b' ') as char);
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: text.trim().to_string(),
                    line,
                    own_line: line_start,
                });
            }
            b'"' => {
                let content = lex_string(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line,
                    col,
                });
                line_start = false;
            }
            b'r' | b'b' if raw_string_lookahead(&cur) => {
                let content = lex_raw_or_byte_string(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line,
                    col,
                });
                line_start = false;
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`). A
                // lifetime is a quote + ident with no closing quote.
                let tok = lex_quote(&mut cur);
                out.tokens.push(Tok {
                    kind: tok.0,
                    text: tok.1,
                    line,
                    col,
                });
                line_start = false;
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'_') as char);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                line_start = false;
            }
            _ if b.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    // Accept the whole spelling incl. `0x`, `_`, `.`, `e±`.
                    let next_is_digit =
                        |cur: &Cursor<'_>| cur.peek_at(1).is_some_and(|d| d.is_ascii_digit());
                    let take = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.' && next_is_digit(&cur))
                        || ((c == b'+' || c == b'-')
                            && matches!(text.bytes().last(), Some(b'e') | Some(b'E')));
                    if !take {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'0') as char);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text,
                    line,
                    col,
                });
                line_start = false;
            }
            _ => {
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
                line_start = false;
            }
        }
        if b != b'\n' {
            // `line_start` handled per-arm above; any non-newline token or
            // whitespace keeps the current value set there.
        }
    }
    out
}

fn raw_string_lookahead(cur: &Cursor<'_>) -> bool {
    // r"…", r#"…"#, br"…", b"…", br#"…"#
    let b0 = cur.peek();
    match b0 {
        Some(b'r') => {
            let mut i = 1;
            while cur.peek_at(i) == Some(b'#') {
                i += 1;
            }
            cur.peek_at(i) == Some(b'"')
        }
        Some(b'b') => match cur.peek_at(1) {
            Some(b'"') => true,
            Some(b'r') => {
                let mut i = 2;
                while cur.peek_at(i) == Some(b'#') {
                    i += 1;
                }
                cur.peek_at(i) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

fn lex_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let mut content = String::new();
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                if let Some(esc) = cur.bump() {
                    content.push('\\');
                    content.push(esc as char);
                }
            }
            b'"' => {
                cur.bump();
                break;
            }
            _ => content.push(cur.bump().unwrap_or(b' ') as char),
        }
    }
    content
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) -> String {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'"') {
        return lex_string(cur);
    }
    cur.bump(); // 'r'
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let mut content = String::new();
    'outer: while let Some(c) = cur.peek() {
        if c == b'"' {
            // Check for closing quote + the right number of hashes.
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek_at(1 + i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                break 'outer;
            }
        }
        content.push(cur.bump().unwrap_or(b' ') as char);
    }
    content
}

fn lex_quote(cur: &mut Cursor<'_>) -> (TokKind, String) {
    cur.bump(); // opening quote
                // Escaped char literal: '\n', '\'', '\u{…}'.
    if cur.peek() == Some(b'\\') {
        let mut text = String::new();
        cur.bump();
        while let Some(c) = cur.peek() {
            if c == b'\'' {
                cur.bump();
                break;
            }
            text.push(cur.bump().unwrap_or(b' ') as char);
        }
        return (TokKind::Char, text);
    }
    // `'x'` (char) vs `'ident` (lifetime): look one past the next char.
    if cur.peek().is_some_and(is_ident_start) {
        let mut text = String::new();
        while let Some(c) = cur.peek() {
            if !is_ident_continue(c) {
                break;
            }
            text.push(cur.bump().unwrap_or(b'_') as char);
        }
        if cur.peek() == Some(b'\'') && text.chars().count() == 1 {
            cur.bump();
            return (TokKind::Char, text);
        }
        return (TokKind::Lifetime, text);
    }
    // `'x'` where x is punctuation/digit — a char literal.
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == b'\'' {
            cur.bump();
            break;
        }
        text.push(cur.bump().unwrap_or(b' ') as char);
    }
    (TokKind::Char, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unwrap in a comment
            /* panic! in a /* nested */ block */
            let s = "don't unwrap() here";
            let r = r#"raw panic!"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap in a comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let lexed = lex("ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#"let s = "a \" b"; next"#);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("a \\\" b"));
        assert!(lexed.tokens.iter().any(|t| t.text == "next"));
    }

    #[test]
    fn comment_own_line_flag() {
        let lexed = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn numbers_with_exponents_and_hex() {
        let lexed = lex("let a = 1.5e-3; let b = 0x7E7E; let c = 1_000;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0x7E7E", "1_000"]);
    }
}
