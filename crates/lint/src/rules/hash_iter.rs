//! Rule `hash_iter`: determinism-sensitive crates must not use hashed
//! collections.
//!
//! `HashMap`/`HashSet` iteration order varies run-to-run (and across
//! std versions), so any scoring, training, or persistence path that
//! iterates one leaks that order into results, artefacts, or logs. Rather
//! than chase iteration sites, the rule bans the types outright in scoped
//! crates — `BTreeMap`/`BTreeSet` are the workspace default, and a
//! genuinely lookup-only map can carry an allow with its justification.

use super::FileCtx;
use crate::diagnostics::{Rule, Violation};

const HASHED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Scan one file. The caller decides whether the file is in scope.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident_at(i) else {
            continue;
        };
        if !HASHED_TYPES.contains(&name) {
            continue;
        }
        let t = &ctx.tokens[i];
        let ordered = if name == "HashMap" {
            "BTreeMap"
        } else {
            "BTreeSet"
        };
        ctx.report(
            out,
            Rule::HashIter,
            t.line,
            t.col,
            format!(
                "`{name}` on a determinism-sensitive path: iteration order is unstable; use `{ordered}` (or justify a lookup-only map with an allow)"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let dirs = directives::parse(&lexed.comments, &lexed.tokens);
        let ctx = FileCtx::new("crates/core/src/x.rs", &lexed.tokens, &dirs);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn hashmap_and_hashset_fire() {
        let out = run("use std::collections::{HashMap, HashSet};\nfn f(m: HashMap<u32, u32>) {}");
        assert_eq!(out.len(), 3);
        assert!(out[0].msg.contains("BTreeMap"));
        assert!(out[1].msg.contains("BTreeSet"));
    }

    #[test]
    fn btree_types_do_not_fire() {
        let out = run("use std::collections::{BTreeMap, BTreeSet};\n");
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run("#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_suppresses() {
        let out = run(
            "// lint: allow(hash_iter, reason = \"lookup only, never iterated\")\nuse std::collections::HashMap;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn doc_strings_do_not_fire() {
        let out = run("fn f() { let s = \"HashMap is mentioned here\"; }");
        assert!(out.is_empty());
    }
}
