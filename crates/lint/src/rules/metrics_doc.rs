//! Rule `metrics_doc`: metric names in code ⇔ OBSERVABILITY.md.
//!
//! Code side: every string literal that fully matches `diagnet_[a-z0-9_]+`
//! outside test code is treated as a metric name (in practice these are the
//! `pub const …: &str = "diagnet_…"` declarations next to each subsystem).
//! Doc side: every backticked token in OBSERVABILITY.md matching the same
//! shape. The two sets must be equal — an undocumented metric and a
//! documented-but-gone metric are both violations, so the doc can never
//! drift from the binary.

use super::FileCtx;
use crate::diagnostics::{Rule, Violation};
use crate::lexer::TokKind;
use crate::scope;

/// Crate-name strings that share the `diagnet_` prefix but are not
/// metrics; they may appear in CLI help or artefact JSON.
const NON_METRIC_NAMES: &[&str] = &[
    "diagnet_nn",
    "diagnet_sim",
    "diagnet_rng",
    "diagnet_eval",
    "diagnet_bayes",
    "diagnet_forest",
    "diagnet_obs",
    "diagnet_platform",
    "diagnet_cli",
    "diagnet_bench",
    "diagnet_lint",
    "diagnet_core",
];

/// A metric-name literal found in code.
#[derive(Debug, Clone)]
pub struct CodeName {
    pub name: String,
    pub file: String,
    pub line: usize,
    pub col: usize,
}

/// True when `s` has the canonical metric-name shape.
pub fn is_metric_shape(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("diagnet_") else {
        return false;
    };
    !rest.is_empty()
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Collect metric-name literals from one file (test code excluded).
pub fn collect(ctx: &FileCtx<'_>) -> Vec<CodeName> {
    let mut out = Vec::new();
    for t in ctx.tokens {
        if t.kind != TokKind::Str {
            continue;
        }
        if !is_metric_shape(&t.text) || NON_METRIC_NAMES.contains(&t.text.as_str()) {
            continue;
        }
        if scope::in_ranges(&ctx.test_ranges, t.line) {
            continue;
        }
        out.push(CodeName {
            name: t.text.clone(),
            file: ctx.rel.to_string(),
            line: t.line,
            col: t.col,
        });
    }
    out
}

/// Backticked metric names in a markdown document, with their lines.
pub fn doc_names(md: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in md.lines().enumerate() {
        let mut parts = line.split('`');
        parts.next(); // text before the first backtick
                      // Every odd-numbered split segment sits between backticks.
        let mut inside = true;
        for seg in parts {
            if inside && is_metric_shape(seg) && !NON_METRIC_NAMES.contains(&seg) {
                out.push((seg.to_string(), idx + 1));
            }
            inside = !inside;
        }
    }
    out
}

/// Compare both directions and push violations.
pub fn cross_check(
    code: &[CodeName],
    doc: &[(String, usize)],
    doc_file: &str,
    out: &mut Vec<Violation>,
) {
    use std::collections::BTreeSet;
    let code_set: BTreeSet<&str> = code.iter().map(|c| c.name.as_str()).collect();
    let doc_set: BTreeSet<&str> = doc.iter().map(|(n, _)| n.as_str()).collect();

    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for c in code {
        if !doc_set.contains(c.name.as_str()) && reported.insert(c.name.as_str()) {
            out.push(Violation {
                rule: Rule::MetricsDoc,
                file: c.file.clone(),
                line: c.line,
                col: c.col,
                msg: format!("metric `{}` is not documented in {doc_file}", c.name),
            });
        }
    }
    for (name, line) in doc {
        if !code_set.contains(name.as_str()) && reported.insert(name.as_str()) {
            out.push(Violation {
                rule: Rule::MetricsDoc,
                file: doc_file.to_string(),
                line: *line,
                col: 1,
                msg: format!("documented metric `{name}` no longer exists in code"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives;
    use crate::lexer::lex;

    fn collect_src(src: &str) -> Vec<CodeName> {
        let lexed = lex(src);
        let dirs = directives::parse(&lexed.comments, &lexed.tokens);
        let ctx = FileCtx::new("crates/x/src/lib.rs", &lexed.tokens, &dirs);
        collect(&ctx)
    }

    #[test]
    fn const_declarations_are_collected() {
        let names = collect_src("pub const M: &str = \"diagnet_rank_seconds\";");
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].name, "diagnet_rank_seconds");
    }

    #[test]
    fn crate_names_and_non_metric_strings_are_not() {
        let names = collect_src(
            "const A: &str = \"diagnet_obs\"; const B: &str = \"diagnet-lint\"; const C: &str = \"Diagnet_X\";",
        );
        assert!(names.is_empty(), "{names:?}");
    }

    #[test]
    fn test_code_literals_are_ignored() {
        let names =
            collect_src("#[cfg(test)]\nmod tests { const M: &str = \"diagnet_fake_total\"; }");
        assert!(names.is_empty());
    }

    #[test]
    fn doc_names_reads_backticked_tokens_only() {
        let md = "The counter `diagnet_rank_total` and plain diagnet_unticked_total,\nplus `diagnet_obs::Snapshot` which is a type path.\n| `diagnet_rank_seconds` | histogram |";
        let names = doc_names(md);
        let just: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(just, vec!["diagnet_rank_total", "diagnet_rank_seconds"]);
        assert_eq!(names[1].1, 3);
    }

    #[test]
    fn cross_check_flags_both_directions_once_per_name() {
        let code = vec![
            CodeName {
                name: "diagnet_a_total".into(),
                file: "crates/x.rs".into(),
                line: 1,
                col: 1,
            },
            CodeName {
                name: "diagnet_a_total".into(),
                file: "crates/y.rs".into(),
                line: 2,
                col: 1,
            },
        ];
        let doc = vec![("diagnet_b_total".to_string(), 7)];
        let mut out = Vec::new();
        cross_check(&code, &doc, "OBSERVABILITY.md", &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].msg.contains("not documented"));
        assert!(out[1].msg.contains("no longer exists"));
        assert_eq!(out[1].file, "OBSERVABILITY.md");
        assert_eq!(out[1].line, 7);
    }

    #[test]
    fn matching_sets_are_clean() {
        let code = vec![CodeName {
            name: "diagnet_a_total".into(),
            file: "f".into(),
            line: 1,
            col: 1,
        }];
        let doc = vec![("diagnet_a_total".to_string(), 1)];
        let mut out = Vec::new();
        cross_check(&code, &doc, "OBSERVABILITY.md", &mut out);
        assert!(out.is_empty());
    }
}
