//! Rule `no_alloc`: marked hot-path functions must not allocate.
//!
//! A `// lint: no_alloc` comment binds to the next `fn`; the rule then
//! scans that function's body for allocating constructs:
//!
//! * collection/string/box construction (`Vec::new`, `String::from`,
//!   `Box::new`, `vec![…]`, `format!`, …);
//! * growing or materialising calls (`.push`, `.collect`, `.to_vec`,
//!   `.to_owned`, `.to_string`, `.clone`, `.extend`, `.insert`,
//!   `.reserve`, `.resize`, `.append`).
//!
//! The kernels this guards (`diagnet-nn` workspace forward/backward, core
//! batch scoring) write into caller-provided buffers; any allocation there
//! is a regression the benches would only catch statistically.

use super::FileCtx;
use crate::diagnostics::{Rule, Violation};
use crate::lexer::TokKind;

const ALLOCATING_METHODS: &[&str] = &[
    "push",
    "extend",
    "insert",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "reserve",
    "resize",
    "with_capacity",
    "append",
];

const ALLOCATING_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

const CONSTRUCTORS: &[&str] = &["new", "with_capacity", "from", "default"];

const ALLOCATING_MACROS: &[&str] = &["vec", "format"];

/// Scan one file's `no_alloc`-marked functions.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for marker in &ctx.directives.no_alloc {
        let Some((fn_name, fn_line, body)) = fn_after(ctx, marker.line) else {
            ctx.report(
                out,
                Rule::NoAlloc,
                marker.line,
                1,
                "`lint: no_alloc` marker is not followed by a `fn`".to_string(),
            );
            continue;
        };
        scan_body(ctx, &fn_name, fn_line, body, out);
    }
}

/// Find the first `fn` strictly after `line`; returns its name, line, and
/// the token index range of its brace-delimited body.
fn fn_after(ctx: &FileCtx<'_>, line: usize) -> Option<(String, usize, std::ops::Range<usize>)> {
    let toks = ctx.tokens;
    let fn_idx = (0..toks.len())
        .find(|&i| toks[i].line > line && toks[i].kind == TokKind::Ident && toks[i].text == "fn")?;
    let name = ctx.ident_at(fn_idx + 1)?.to_string();
    // Body = first `{ … }` after the signature. Signatures contain no
    // braces (where-clauses and generics are brace-free), so the first
    // `{` is the body open.
    let open = (fn_idx..toks.len()).find(|&i| ctx.punct_at(i, "{"))?;
    let mut depth = 1usize;
    let mut close = open + 1;
    while close < toks.len() && depth > 0 {
        if ctx.punct_at(close, "{") {
            depth += 1;
        } else if ctx.punct_at(close, "}") {
            depth -= 1;
        }
        close += 1;
    }
    (depth == 0).then(|| (name, toks[fn_idx].line, open + 1..close - 1))
}

fn scan_body(
    ctx: &FileCtx<'_>,
    fn_name: &str,
    _fn_line: usize,
    body: std::ops::Range<usize>,
    out: &mut Vec<Violation>,
) {
    let toks = ctx.tokens;
    for i in body.clone() {
        // `.push(` etc.
        if ctx.punct_at(i, ".") {
            if let Some(m) = ctx.ident_at(i + 1) {
                if ALLOCATING_METHODS.contains(&m) && ctx.punct_at(i + 2, "(") {
                    let t = &toks[i + 1];
                    ctx.report(
                        out,
                        Rule::NoAlloc,
                        t.line,
                        t.col,
                        format!("`.{m}()` allocates inside `no_alloc` fn `{fn_name}`; write into a caller-provided buffer"),
                    );
                }
            }
            continue;
        }
        if let Some(name) = ctx.ident_at(i) {
            // `Vec::new(` etc.
            if ALLOCATING_TYPES.contains(&name) && ctx.path_sep_at(i + 1) {
                if let Some(ctor) = ctx.ident_at(i + 3) {
                    if CONSTRUCTORS.contains(&ctor) {
                        let t = &toks[i];
                        ctx.report(
                            out,
                            Rule::NoAlloc,
                            t.line,
                            t.col,
                            format!("`{name}::{ctor}` allocates inside `no_alloc` fn `{fn_name}`"),
                        );
                    }
                }
                continue;
            }
            // `vec![…]` / `format!(…)`.
            if ALLOCATING_MACROS.contains(&name) && ctx.punct_at(i + 1, "!") {
                let t = &toks[i];
                ctx.report(
                    out,
                    Rule::NoAlloc,
                    t.line,
                    t.col,
                    format!("`{name}!` allocates inside `no_alloc` fn `{fn_name}`"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let dirs = directives::parse(&lexed.comments, &lexed.tokens);
        let ctx = FileCtx::new("crates/nn/src/x.rs", &lexed.tokens, &dirs);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn unmarked_functions_are_not_scanned() {
        let out = run("fn free() { let v: Vec<u32> = Vec::new(); v.push(1); }");
        assert!(out.is_empty());
    }

    #[test]
    fn marked_function_flags_constructors_and_growth() {
        let src = "// lint: no_alloc\nfn kernel(out: &mut [f32]) {\n  let v = Vec::new();\n  v.push(1.0);\n  let s = format!(\"x\");\n}";
        let out = run(src);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|v| v.msg.contains("kernel")));
    }

    #[test]
    fn marker_scope_ends_at_the_function_close_brace() {
        let src = "// lint: no_alloc\nfn kernel(out: &mut [f32]) { out[0] = 1.0; }\nfn free() { let v = vec![1]; }";
        let out = run(src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn nested_closures_inside_marked_fn_are_scanned() {
        let src = "// lint: no_alloc\nfn kernel(xs: &[f32]) -> f32 { xs.iter().map(|x| x.clone()).sum() }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("clone"));
    }

    #[test]
    fn non_allocating_body_is_clean() {
        let src = "// lint: no_alloc\nfn kernel(a: &[f32], out: &mut [f32]) {\n  for (o, x) in out.iter_mut().zip(a.iter()) { *o = x.max(0.0); }\n}";
        let out = run(src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn dangling_marker_is_reported() {
        let out = run("// lint: no_alloc\nconst N: usize = 4;\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("not followed"));
    }

    #[test]
    fn allow_escapes_one_site() {
        let src = "// lint: no_alloc\nfn kernel(n: usize) {\n  let scratch = Vec::with_capacity(n); // lint: allow(no_alloc, reason = \"one-time setup before the loop\")\n}";
        let out = run(src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn generic_signature_does_not_confuse_body_detection() {
        let src = "// lint: no_alloc\nfn kernel<T: Copy>(xs: &[T]) -> usize where T: PartialOrd { xs.len() }";
        let out = run(src);
        assert!(out.is_empty(), "{out:?}");
    }
}
