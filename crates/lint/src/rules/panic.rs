//! Rule `panic`: serving-path modules must be panic-free.
//!
//! Flags, outside test code:
//! * `.unwrap()` / `.expect(…)` calls;
//! * panicking macros: `panic!`, `unreachable!`, `unimplemented!`,
//!   `todo!`, `assert!`, `assert_eq!`, `assert_ne!` (the `debug_assert*`
//!   family is allowed — compiled out of release serving binaries);
//! * direct indexing `x[i]` / slicing `x[a..b]` — use `.get()` /
//!   `.get_mut()` or an allow with a stated invariant.

use super::FileCtx;
use crate::diagnostics::{Rule, Violation};
use crate::lexer::TokKind;

const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

const PANICKY_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "unimplemented",
    "todo",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may legitimately precede `[` without it being an index
/// expression (`&mut [f32]`, `let [a, b] = …`, `dyn [..]`-adjacent forms).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "ref", "move", "as", "in", "return", "break", "continue", "else", "match", "if",
    "while", "for", "loop", "let", "const", "static", "crate", "pub", "use", "where", "fn", "impl",
    "trait", "type", "enum", "struct", "mod", "unsafe", "async", "await", "box", "yield",
];

/// Scan one file. The caller decides whether the file is in scope.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        // `.unwrap(` / `.expect(`
        if ctx.punct_at(i, ".") {
            if let Some(name) = ctx.ident_at(i + 1) {
                if PANICKY_METHODS.contains(&name) && ctx.punct_at(i + 2, "(") {
                    let t = &toks[i + 1];
                    ctx.report(
                        out,
                        Rule::Panic,
                        t.line,
                        t.col,
                        format!("`.{name}()` can panic on a serving path; return a typed error or use `unwrap_or_else`"),
                    );
                }
            }
            continue;
        }
        // `panic!(` and friends — an ident directly followed by `!` and `(`.
        if let Some(name) = ctx.ident_at(i) {
            if PANICKY_MACROS.contains(&name)
                && ctx.punct_at(i + 1, "!")
                && (ctx.punct_at(i + 2, "(")
                    || ctx.punct_at(i + 2, "[")
                    || ctx.punct_at(i + 2, "{"))
            {
                let t = &toks[i];
                ctx.report(
                    out,
                    Rule::Panic,
                    t.line,
                    t.col,
                    format!(
                        "`{name}!` aborts the serving path; handle the case or return an error"
                    ),
                );
            }
            continue;
        }
        // Indexing: `[` preceded by an expression-ending token.
        if ctx.punct_at(i, "[") && i > 0 {
            let prev = &toks[i - 1];
            let is_index = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if is_index {
                let t = &toks[i];
                ctx.report(
                    out,
                    Rule::Panic,
                    t.line,
                    t.col,
                    "direct indexing can panic on a serving path; use `.get()`/`.get_mut()` or state the bound invariant in an allow".to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let dirs = directives::parse(&lexed.comments, &lexed.tokens);
        let ctx = FileCtx::new("crates/x/src/lib.rs", &lexed.tokens, &dirs);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_fire() {
        let out = run("fn f() { a.unwrap(); b.expect(\"x\"); }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let out = run("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 0); c.unwrap_or_default(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panicky_macros_fire_but_debug_assert_does_not() {
        let out = run("fn f() { assert!(x); debug_assert!(x); debug_assert_eq!(a, b); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("assert!"));
        let out = run("fn f() { unreachable!(\"no\") }");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn indexing_fires_but_types_and_patterns_do_not() {
        let out = run("fn f(xs: &[f32], m: &mut [u8]) { let y = xs[0]; let [a, b] = pair; let t: [u8; 4] = arr; }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("indexing"));
    }

    #[test]
    fn slicing_and_chained_indexing_fire() {
        let out = run("fn f() { let a = &xs[..n]; let b = m[i][j]; let c = (v)[0]; }");
        assert_eq!(out.len(), 4, "{out:?}");
    }

    #[test]
    fn attributes_and_vec_macro_brackets_do_not_fire() {
        let out = run("#[derive(Clone)]\n#[allow(dead_code)]\nfn f() { let v = vec![1, 2]; }");
        // `vec![…]` is `vec` `!` `[` — the `[` is preceded by `!`, not an
        // expression end, so only zero findings here.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src = "fn f() { a.unwrap(); // lint: allow(panic, reason = \"checked\")\n }";
        let lexed = lex(src);
        let dirs = directives::parse(&lexed.comments, &lexed.tokens);
        let ctx = FileCtx::new("crates/x/src/lib.rs", &lexed.tokens, &dirs);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(dirs.allows[0].used.get());
    }

    #[test]
    fn strings_mentioning_panics_do_not_fire() {
        let out = run("fn f() { log(\"call .unwrap() here\"); }");
        assert!(out.is_empty(), "{out:?}");
    }
}
