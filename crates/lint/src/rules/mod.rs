//! The rule families and the per-file context they share.

pub mod hash_iter;
pub mod metrics_doc;
pub mod no_alloc;
pub mod panic;

use crate::diagnostics::{Rule, Violation};
use crate::directives::Directives;
use crate::lexer::{Tok, TokKind};
use crate::scope;

/// Everything a rule needs to scan one file.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel: &'a str,
    /// Code tokens (comments stripped).
    pub tokens: &'a [Tok],
    /// Parsed `lint:` directives.
    pub directives: &'a Directives,
    /// Line ranges of `#[cfg(test)]`-gated items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    /// Build a context; computes the test ranges from the tokens.
    pub fn new(rel: &'a str, tokens: &'a [Tok], directives: &'a Directives) -> Self {
        FileCtx {
            rel,
            tokens,
            directives,
            test_ranges: scope::test_ranges(tokens),
        }
    }

    /// Record a violation unless it sits in test code or an allow covers
    /// it (the allow is consumed either way it matches).
    pub fn report(
        &self,
        out: &mut Vec<Violation>,
        rule: Rule,
        line: usize,
        col: usize,
        msg: String,
    ) {
        if scope::in_ranges(&self.test_ranges, line) {
            return;
        }
        if self.directives.consume_allow(rule.slug(), line) {
            return;
        }
        out.push(Violation {
            rule,
            file: self.rel.to_string(),
            line,
            col,
            msg,
        });
    }

    /// Token accessors used by the rules.
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        self.tokens
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// True when token `i` is the punctuation `text`.
    pub fn punct_at(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    /// True when tokens `i..` spell `::` (two adjacent colon puncts).
    pub fn path_sep_at(&self, i: usize) -> bool {
        self.punct_at(i, ":") && self.punct_at(i + 1, ":")
    }
}
