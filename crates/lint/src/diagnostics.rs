//! Violation records and rustc-style rendering.

use std::fmt::Write as _;

/// Rule families, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-free serving paths.
    Panic,
    /// No hashed-collection iteration on determinism-sensitive paths.
    HashIter,
    /// Zero-allocation hot-path bodies.
    NoAlloc,
    /// Metric names in code ⇔ OBSERVABILITY.md.
    MetricsDoc,
    /// Directive hygiene (malformed or unused `lint:` comments).
    Directive,
}

impl Rule {
    /// Slug used in diagnostics and in `allow(<slug>, …)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::HashIter => "hash_iter",
            Rule::NoAlloc => "no_alloc",
            Rule::MetricsDoc => "metrics_doc",
            Rule::Directive => "directive",
        }
    }

    /// All rule families.
    pub fn all() -> [Rule; 5] {
        [
            Rule::Panic,
            Rule::HashIter,
            Rule::NoAlloc,
            Rule::MetricsDoc,
            Rule::Directive,
        ]
    }

    /// One-line description for `diagnet-lint rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::Panic => {
                "serving-path modules must not unwrap/expect/panic!/index; \
                 escape with `// lint: allow(panic, reason = \"...\")`"
            }
            Rule::HashIter => {
                "scoring/training/persistence crates must use ordered maps \
                 (BTreeMap/BTreeSet), never HashMap/HashSet"
            }
            Rule::NoAlloc => {
                "functions marked `// lint: no_alloc` must not allocate \
                 (Vec/String/Box construction, push/collect/clone/format!, …)"
            }
            Rule::MetricsDoc => {
                "metric name literals in code and the backticked names in \
                 OBSERVABILITY.md must be the same set, both directions"
            }
            Rule::Directive => "lint directives must parse and every allow must be used",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line (0 = whole-file finding).
    pub line: usize,
    /// 1-based column (0 = unknown).
    pub col: usize,
    pub msg: String,
}

/// An allow that suppressed a violation — surfaced in the summary so every
/// escape hatch stays visible.
#[derive(Debug, Clone)]
pub struct UsedAllow {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

/// Full check result.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub allows_used: Vec<UsedAllow>,
    /// Files scanned (for the summary line).
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the full report in rustc style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&Violation> = self.violations.iter().collect();
        sorted.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        for v in &sorted {
            let _ = writeln!(out, "error[{}]: {}", v.rule.slug(), v.msg);
            if v.line > 0 {
                let _ = writeln!(out, "  --> {}:{}:{}", v.file, v.line, v.col.max(1));
            } else {
                let _ = writeln!(out, "  --> {}", v.file);
            }
        }
        if !self.allows_used.is_empty() {
            let _ = writeln!(out, "note: {} allow(s) in effect:", self.allows_used.len());
            let mut allows: Vec<&UsedAllow> = self.allows_used.iter().collect();
            allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
            for a in allows {
                let _ = writeln!(
                    out,
                    "  {}:{} allow({}) — {}",
                    a.file, a.line, a.rule, a.reason
                );
            }
        }
        let _ = writeln!(out, "{}", self.summary_line());
        out
    }

    /// One-line verdict with per-rule counts.
    pub fn summary_line(&self) -> String {
        if self.is_clean() {
            return format!(
                "diagnet-lint: clean — {} files scanned, {} allow(s) in effect",
                self.files_scanned,
                self.allows_used.len()
            );
        }
        let mut parts = Vec::new();
        for rule in Rule::all() {
            let n = self.violations.iter().filter(|v| v.rule == rule).count();
            if n > 0 {
                parts.push(format!("{} {}", n, rule.slug()));
            }
        }
        format!(
            "diagnet-lint: {} violation(s) ({}) across {} files scanned",
            self.violations.len(),
            parts.join(", "),
            self.files_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, file: &str, line: usize) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            col: 5,
            msg: "msg".to_string(),
        }
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let r = Report {
            files_scanned: 10,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.render().contains("clean — 10 files scanned"));
    }

    #[test]
    fn violations_render_rustc_style_sorted_by_file_then_line() {
        let r = Report {
            violations: vec![
                v(Rule::Panic, "crates/b.rs", 9),
                v(Rule::HashIter, "crates/a.rs", 3),
            ],
            allows_used: vec![],
            files_scanned: 2,
        };
        let text = r.render();
        let a = text.find("crates/a.rs:3").expect("a.rs diagnostic");
        let b = text.find("crates/b.rs:9").expect("b.rs diagnostic");
        assert!(a < b);
        assert!(text.contains("error[hash_iter]"));
        assert!(text.contains("2 violation(s)"));
        assert!(text.contains("1 panic"));
        assert!(text.contains("1 hash_iter"));
    }

    #[test]
    fn allows_are_listed_with_reasons() {
        let r = Report {
            violations: vec![],
            allows_used: vec![UsedAllow {
                rule: "panic".to_string(),
                file: "crates/core/src/backend.rs".to_string(),
                line: 74,
                reason: "schema invariant".to_string(),
            }],
            files_scanned: 1,
        };
        let text = r.render();
        assert!(text.contains("allow(panic) — schema invariant"));
        assert!(text.contains("1 allow(s) in effect"));
    }
}
