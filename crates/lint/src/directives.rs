//! In-source lint directives.
//!
//! Two comment forms steer the checker:
//!
//! * `// lint: allow(<rule>, reason = "...")` — suppress one violation of
//!   `<rule>` on the same line (trailing comment) or on the next code line
//!   (own-line comment). The reason is mandatory and every allow must be
//!   *used*; a stale allow is itself a violation, so escapes can never
//!   outlive the code they excuse.
//! * `// lint: no_alloc` — marks the next `fn` as a zero-allocation hot
//!   path; the `no_alloc` rule then polices its body.

use crate::lexer::{Comment, Tok};

/// A parsed `allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule slug the allow applies to (`panic`, `hash_iter`, …).
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line the directive comment sits on.
    pub comment_line: usize,
    /// Line of code the allow covers.
    pub effective_line: usize,
    /// Set when a rule suppresses a violation through this allow.
    pub used: std::cell::Cell<bool>,
}

/// A `no_alloc` hot-path marker.
#[derive(Debug, Clone)]
pub struct NoAllocMarker {
    /// Line the marker comment sits on; the rule binds it to the next `fn`.
    pub line: usize,
}

/// A directive that could not be parsed — reported as a violation so typos
/// never silently disable enforcement.
#[derive(Debug, Clone)]
pub struct Malformed {
    /// Line of the bad comment.
    pub line: usize,
    /// What is wrong with it.
    pub msg: String,
}

/// All directives found in one file.
#[derive(Debug, Default)]
pub struct Directives {
    pub allows: Vec<Allow>,
    pub no_alloc: Vec<NoAllocMarker>,
    pub malformed: Vec<Malformed>,
}

impl Directives {
    /// Try to consume an allow for `rule` covering `line`. Returns `true`
    /// (and marks the allow used) when one matches.
    pub fn consume_allow(&self, rule: &str, line: usize) -> bool {
        for a in &self.allows {
            if a.rule == rule && a.effective_line == line {
                a.used.set(true);
                return true;
            }
        }
        false
    }
}

/// Extract directives from a file's comments. `tokens` is used to resolve
/// which code line an own-line directive covers (the next line holding a
/// token after the comment).
pub fn parse(comments: &[Comment], tokens: &[Tok]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        let Some(body) = c.text.strip_prefix("lint:") else {
            continue;
        };
        let body = body.trim();
        if body == "no_alloc" {
            out.no_alloc.push(NoAllocMarker { line: c.line });
            continue;
        }
        if let Some(args) = body
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        {
            match parse_allow_args(args) {
                Ok((rule, reason)) => {
                    let effective_line = if c.own_line {
                        next_code_line(tokens, c.line).unwrap_or(c.line)
                    } else {
                        c.line
                    };
                    out.allows.push(Allow {
                        rule,
                        reason,
                        comment_line: c.line,
                        effective_line,
                        used: std::cell::Cell::new(false),
                    });
                }
                Err(msg) => out.malformed.push(Malformed { line: c.line, msg }),
            }
            continue;
        }
        out.malformed.push(Malformed {
            line: c.line,
            msg: format!(
                "unrecognised lint directive `{body}` (expected `allow(<rule>, reason = \"...\")` or `no_alloc`)"
            ),
        });
    }
    out
}

fn parse_allow_args(args: &str) -> Result<(String, String), String> {
    let (rule, rest) = match args.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => {
            return Err(format!(
                "allow({args}) is missing a reason; write `allow({}, reason = \"...\")`",
                args.trim()
            ))
        }
    };
    if rule.is_empty() || !rule.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_') {
        return Err(format!("`{rule}` is not a rule slug"));
    }
    let Some(value) = rest
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim_start())
    else {
        return Err(format!("expected `reason = \"...\"`, found `{rest}`"));
    };
    let Some(reason) = value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .filter(|r| !r.trim().is_empty())
    else {
        return Err("allow reason must be a non-empty quoted string".to_string());
    };
    Ok((rule.to_string(), reason.to_string()))
}

fn next_code_line(tokens: &[Tok], after: usize) -> Option<usize> {
    tokens.iter().map(|t| t.line).find(|&l| l > after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Directives {
        let lexed = lex(src);
        parse(&lexed.comments, &lexed.tokens)
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let d =
            parse_src("let x = v.unwrap(); // lint: allow(panic, reason = \"checked above\")\n");
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].rule, "panic");
        assert_eq!(d.allows[0].effective_line, 1);
        assert!(d.consume_allow("panic", 1));
        assert!(d.allows[0].used.get());
    }

    #[test]
    fn own_line_allow_covers_the_next_code_line() {
        let d = parse_src(
            "// lint: allow(hash_iter, reason = \"lookup only\")\nuse std::collections::HashMap;\n",
        );
        assert_eq!(d.allows[0].effective_line, 2);
        assert!(!d.consume_allow("hash_iter", 1));
        assert!(d.consume_allow("hash_iter", 2));
    }

    #[test]
    fn allow_for_a_different_rule_does_not_match() {
        let d = parse_src("x(); // lint: allow(panic, reason = \"r\")\n");
        assert!(!d.consume_allow("hash_iter", 1));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let d = parse_src("// lint: allow(panic)\n");
        assert!(d.allows.is_empty());
        assert_eq!(d.malformed.len(), 1);
        assert!(d.malformed[0].msg.contains("reason"));
    }

    #[test]
    fn empty_reason_is_malformed() {
        let d = parse_src("// lint: allow(panic, reason = \"\")\n");
        assert_eq!(d.malformed.len(), 1);
    }

    #[test]
    fn unknown_directive_is_malformed() {
        let d = parse_src("// lint: allwo(panic, reason = \"typo\")\n");
        assert_eq!(d.malformed.len(), 1);
    }

    #[test]
    fn no_alloc_marker_is_recorded() {
        let d = parse_src("// lint: no_alloc\nfn kernel() {}\n");
        assert_eq!(d.no_alloc.len(), 1);
        assert_eq!(d.no_alloc[0].line, 1);
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let d = parse_src("// plain comment mentioning lint rules\nfn f() {}\n");
        assert!(d.allows.is_empty() && d.no_alloc.is_empty() && d.malformed.is_empty());
    }
}
