//! Rule scoping: which invariant applies to which file, and which line
//! ranges inside a file are test code (exempt from serving-path rules).

use crate::lexer::{Tok, TokKind};
use std::path::Path;

/// Serving-path modules that must be panic-free (workspace-relative).
pub const PANIC_SCOPE: &[&str] = &[
    "crates/platform/src/service.rs",
    "crates/platform/src/registry.rs",
    "crates/platform/src/supervisor.rs",
    "crates/platform/src/admission.rs",
    "crates/platform/src/store.rs",
    "crates/platform/src/rollout.rs",
    "crates/core/src/backend.rs",
    "crates/core/src/ranking.rs",
    "crates/core/src/instrument.rs",
    "crates/cli/src/commands.rs",
    "crates/server/src/json.rs",
    "crates/server/src/http.rs",
    "crates/server/src/api.rs",
    "crates/server/src/router.rs",
    "crates/server/src/server.rs",
];

/// Crates whose scoring/training/persistence code must not use hashed
/// collections (iteration order would leak into results). The CLI and the
/// bench/example crates are deliberately out: argument tables and bench
/// plumbing are not on any determinism-sensitive path, and the lint crate
/// itself is the checker.
pub const HASH_SCOPE_CRATES: &[&str] = &[
    "bayes", "core", "eval", "forest", "nn", "obs", "platform", "rng", "server", "sim",
];

/// True when the panic rule applies to `rel` (workspace-relative path,
/// `/`-separated).
pub fn in_panic_scope(rel: &str) -> bool {
    PANIC_SCOPE.contains(&rel)
}

/// True when the hash-determinism rule applies to `rel`.
pub fn in_hash_scope(rel: &str) -> bool {
    HASH_SCOPE_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// True when the metrics-name scan applies to `rel`: every crate source
/// except the checker itself (whose own strings mention metric patterns).
pub fn in_metrics_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && !rel.starts_with("crates/lint/")
}

/// Normalise a path to a `/`-separated workspace-relative string.
pub fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Inclusive line ranges covered by `#[cfg(test)]`-gated items (typically
/// `mod tests { … }` blocks). Rules skip violations inside these ranges:
/// tests may unwrap and hash freely.
pub fn test_ranges(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            // Skip any further attributes stacked on the same item.
            let mut j = after_attr;
            while let Some(next) = match_any_attr(tokens, j) {
                j = next;
            }
            let start_line = tokens[i].line;
            if let Some(end) = item_end(tokens, j) {
                let end_line = tokens[end.saturating_sub(1)].line.max(start_line);
                ranges.push((start_line, end_line));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// True when `line` falls in any of `ranges`.
pub fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(s, e)| line >= s && line <= e)
}

/// Match `#[cfg(…)]` at `i` where the parenthesised list mentions `test`.
/// Returns the index just past the closing `]`.
fn match_cfg_test_attr(tokens: &[Tok], i: usize) -> Option<usize> {
    if !is_punct(tokens, i, "#") || !is_punct(tokens, i + 1, "[") {
        return None;
    }
    if !is_ident(tokens, i + 2, "cfg") || !is_punct(tokens, i + 3, "(") {
        return None;
    }
    let mut depth = 1usize;
    let mut saw_test = false;
    let mut j = i + 4;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") => depth += 1,
            (TokKind::Punct, ")") => depth -= 1,
            (TokKind::Ident, "test") => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    if !saw_test || !is_punct(tokens, j, "]") {
        return None;
    }
    Some(j + 1)
}

/// Match any attribute `#[…]` at `i`; returns the index just past `]`.
fn match_any_attr(tokens: &[Tok], i: usize) -> Option<usize> {
    if !is_punct(tokens, i, "#") || !is_punct(tokens, i + 1, "[") {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 2;
    while j < tokens.len() && depth > 0 {
        match (tokens[j].kind, tokens[j].text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    (depth == 0).then_some(j)
}

/// Find the end of the item starting at `i`: the index just past the
/// matching close brace of its first `{`, or just past the first `;` when
/// the item has no body (e.g. a gated `use`).
fn item_end(tokens: &[Tok], i: usize) -> Option<usize> {
    let mut j = i;
    while j < tokens.len() {
        match (tokens[j].kind, tokens[j].text.as_str()) {
            (TokKind::Punct, ";") => return Some(j + 1),
            (TokKind::Punct, "{") => {
                let mut depth = 1usize;
                let mut k = j + 1;
                while k < tokens.len() && depth > 0 {
                    match (tokens[k].kind, tokens[k].text.as_str()) {
                        (TokKind::Punct, "{") => depth += 1,
                        (TokKind::Punct, "}") => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                return (depth == 0).then_some(k);
            }
            _ => j += 1,
        }
    }
    None
}

fn is_punct(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn is_ident(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn panic_scope_is_exact_files() {
        assert!(in_panic_scope("crates/core/src/backend.rs"));
        assert!(in_panic_scope("crates/server/src/server.rs"));
        assert!(in_panic_scope("crates/server/src/json.rs"));
        assert!(in_panic_scope("crates/platform/src/store.rs"));
        assert!(in_panic_scope("crates/platform/src/rollout.rs"));
        assert!(!in_panic_scope("crates/platform/src/chaos.rs"));
        assert!(!in_panic_scope("crates/core/src/model.rs"));
        assert!(!in_panic_scope("crates/bench/src/bin/hotpath.rs"));
        assert!(!in_panic_scope("crates/bencher/src/run.rs"));
    }

    #[test]
    fn hash_scope_excludes_cli_bench_lint() {
        assert!(in_hash_scope("crates/core/src/aggregate.rs"));
        assert!(in_hash_scope("crates/obs/src/registry.rs"));
        assert!(in_hash_scope("crates/server/src/api.rs"));
        assert!(!in_hash_scope("crates/cli/src/args.rs"));
        assert!(!in_hash_scope("crates/bencher/src/stats.rs"));
        assert!(!in_hash_scope("crates/bench/src/lib.rs"));
        assert!(!in_hash_scope("crates/lint/src/lexer.rs"));
        assert!(!in_hash_scope("crates/examples-crate/src/lib.rs"));
    }

    #[test]
    fn cfg_test_mod_ranges_cover_the_block() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { v.unwrap(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let ranges = test_ranges(&lexed.tokens);
        assert_eq!(ranges.len(), 1);
        assert!(in_ranges(&ranges, 2));
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 1));
        assert!(!in_ranges(&ranges, 6));
    }

    #[test]
    fn cfg_all_test_feature_counts_as_test() {
        let src = "#[cfg(all(test, feature = \"enabled\"))]\nmod tests { fn t() {} }\n";
        let lexed = lex(src);
        let ranges = test_ranges(&lexed.tokens);
        assert_eq!(ranges.len(), 1);
    }

    #[test]
    fn cfg_feature_alone_is_not_test() {
        let src = "#[cfg(feature = \"enabled\")]\nmod real { fn f() {} }\n";
        let lexed = lex(src);
        assert!(test_ranges(&lexed.tokens).is_empty());
    }

    #[test]
    fn gated_use_statement_covers_one_line() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let lexed = lex(src);
        let ranges = test_ranges(&lexed.tokens);
        assert_eq!(ranges.len(), 1);
        assert!(in_ranges(&ranges, 2));
        assert!(!in_ranges(&ranges, 3));
    }

    #[test]
    fn stacked_attributes_before_mod_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn live() {}\n";
        let lexed = lex(src);
        let ranges = test_ranges(&lexed.tokens);
        assert_eq!(ranges.len(), 1);
        assert!(in_ranges(&ranges, 3));
        assert!(!in_ranges(&ranges, 4));
    }
}
