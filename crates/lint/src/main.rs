//! CLI for the workspace invariant checker.
//!
//! ```text
//! diagnet-lint check [--root PATH]   # exit 0 clean, 1 violations, 2 usage
//! diagnet-lint rules                 # list the rule families
//! ```

use diagnet_lint::diagnostics::Rule;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("check") => {
            let mut root = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(path) => root = Some(path.clone()),
                        None => return usage("--root needs a path"),
                    },
                    other => return usage(&format!("unknown option `{other}`")),
                }
            }
            let root = match diagnet_lint::resolve_root(root.as_deref()) {
                Ok(r) => r,
                Err(e) => return usage(&e),
            };
            match diagnet_lint::check_workspace(&root) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.is_clean() {
                        0
                    } else {
                        1
                    }
                }
                Err(e) => usage(&e),
            }
        }
        Some("rules") => {
            for rule in Rule::all() {
                println!("{:<12} {}", rule.slug(), rule.describe());
            }
            0
        }
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("no command given"),
    }
}

fn usage(err: &str) -> i32 {
    eprintln!("diagnet-lint: {err}");
    eprintln!("usage: diagnet-lint check [--root PATH] | diagnet-lint rules");
    2
}
