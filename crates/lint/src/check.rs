//! Workspace walk and rule orchestration.

use crate::diagnostics::{Report, Rule, UsedAllow, Violation};
use crate::rules::{hash_iter, metrics_doc, no_alloc, panic, FileCtx};
use crate::{directives, lexer, scope};
use std::path::{Path, PathBuf};

/// Known rule slugs an `allow` may name.
const KNOWN_SLUGS: &[&str] = &["panic", "hash_iter", "no_alloc", "metrics_doc"];

/// Markdown file the metrics rule cross-checks against.
pub const METRICS_DOC: &str = "OBSERVABILITY.md";

/// Check every crate source under `root` plus the metrics doc. IO errors
/// (unreadable root, missing `crates/`) are returned as `Err`; a missing
/// OBSERVABILITY.md is a finding, not an error.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    let mut code_names: Vec<metrics_doc::CodeName> = Vec::new();

    let files = workspace_sources(root)?;
    for file in &files {
        let rel = scope::rel_path(root, file);
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        check_file(&rel, &src, &mut report, &mut code_names);
    }
    report.files_scanned = files.len();

    let doc_path = root.join(METRICS_DOC);
    match std::fs::read_to_string(&doc_path) {
        Ok(md) => {
            let doc = metrics_doc::doc_names(&md);
            metrics_doc::cross_check(&code_names, &doc, METRICS_DOC, &mut report.violations);
        }
        Err(_) => report.violations.push(Violation {
            rule: Rule::MetricsDoc,
            file: METRICS_DOC.to_string(),
            line: 0,
            col: 0,
            msg: format!("{METRICS_DOC} not found at the workspace root; metric names cannot be cross-checked"),
        }),
    }
    Ok(report)
}

/// Run the per-file rules on one source, appending findings to `report`
/// and metric literals to `code_names`.
pub fn check_file(
    rel: &str,
    src: &str,
    report: &mut Report,
    code_names: &mut Vec<metrics_doc::CodeName>,
) {
    let lexed = lexer::lex(src);
    let dirs = directives::parse(&lexed.comments, &lexed.tokens);
    let ctx = FileCtx::new(rel, &lexed.tokens, &dirs);

    if scope::in_panic_scope(rel) {
        panic::check(&ctx, &mut report.violations);
    }
    if scope::in_hash_scope(rel) {
        hash_iter::check(&ctx, &mut report.violations);
    }
    no_alloc::check(&ctx, &mut report.violations);
    if scope::in_metrics_scope(rel) {
        code_names.extend(metrics_doc::collect(&ctx));
    }

    // Directive hygiene: malformed comments, unknown slugs, stale allows.
    for m in &dirs.malformed {
        report.violations.push(Violation {
            rule: Rule::Directive,
            file: rel.to_string(),
            line: m.line,
            col: 1,
            msg: m.msg.clone(),
        });
    }
    for a in &dirs.allows {
        if !KNOWN_SLUGS.contains(&a.rule.as_str()) {
            report.violations.push(Violation {
                rule: Rule::Directive,
                file: rel.to_string(),
                line: a.comment_line,
                col: 1,
                msg: format!(
                    "allow names unknown rule `{}` (known: {})",
                    a.rule,
                    KNOWN_SLUGS.join(", ")
                ),
            });
        } else if a.used.get() {
            report.allows_used.push(UsedAllow {
                rule: a.rule.clone(),
                file: rel.to_string(),
                line: a.comment_line,
                reason: a.reason.clone(),
            });
        } else {
            report.violations.push(Violation {
                rule: Rule::Directive,
                file: rel.to_string(),
                line: a.comment_line,
                col: 1,
                msg: format!(
                    "unused allow({}) — the code it excused is gone; delete the directive",
                    a.rule
                ),
            });
        }
    }
}

/// All `.rs` files under `crates/*/src`, sorted for deterministic reports.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("no `crates/` under {}: {e}", root.display()))?;
    let mut files = Vec::new();
    for entry in entries.flatten() {
        let src_dir = entry.path().join("src");
        if src_dir.is_dir() {
            collect_rs(&src_dir, &mut files);
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Resolve the workspace root: `explicit` if given, else walk up from the
/// current directory until a `crates/` directory appears (so the binary
/// works from any crate subdirectory).
pub fn resolve_root(explicit: Option<&str>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        let path = PathBuf::from(p);
        if path.join("crates").is_dir() {
            return Ok(path);
        }
        return Err(format!("--root {p} has no crates/ directory"));
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "no workspace root found (run from the repo or pass --root PATH)".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_report(rel: &str, src: &str) -> Report {
        let mut report = Report::default();
        let mut names = Vec::new();
        check_file(rel, src, &mut report, &mut names);
        report
    }

    #[test]
    fn panic_rule_only_applies_in_scope() {
        let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }";
        let in_scope = file_report("crates/core/src/backend.rs", src);
        assert_eq!(in_scope.violations.len(), 1);
        let out_of_scope = file_report("crates/core/src/model.rs", src);
        assert!(out_of_scope.is_clean(), "{:?}", out_of_scope.violations);
    }

    #[test]
    fn hash_rule_only_applies_in_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(file_report("crates/eval/src/x.rs", src).violations.len(), 1);
        assert!(file_report("crates/cli/src/args.rs", src).is_clean());
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "// lint: allow(panic, reason = \"stale\")\nfn f() {}\n";
        let r = file_report("crates/core/src/backend.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, Rule::Directive);
        assert!(r.violations[0].msg.contains("unused"));
    }

    #[test]
    fn unknown_rule_slug_is_a_violation() {
        let src = "fn f() {} // lint: allow(panics, reason = \"typo\")\n";
        let r = file_report("crates/core/src/backend.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].msg.contains("unknown rule"));
    }

    #[test]
    fn used_allow_lands_in_the_summary() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() // lint: allow(panic, reason = \"caller checked\")\n }";
        let r = file_report("crates/core/src/backend.rs", src);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.allows_used.len(), 1);
        assert_eq!(r.allows_used[0].reason, "caller checked");
    }
}
