//! Fixture suite: proves each rule family fires on known-bad code and
//! stays quiet on known-good code. Every fixture under
//! `tests/fixtures/fail/` must produce the violations listed here;
//! every fixture under `tests/fixtures/pass/` must come back clean.
//! A catch-all test keeps the fixture directories and this table in
//! sync, so adding a fixture without wiring it up fails the build.

use diagnet_lint::rules::metrics_doc;
use diagnet_lint::{check_file, Report, Rule};
use std::collections::BTreeMap;
use std::path::Path;

/// Run one fixture through the per-file rules under an assumed
/// workspace-relative path (scoping is path-driven).
fn run(src: &str, as_rel: &str) -> (Report, Vec<metrics_doc::CodeName>) {
    let mut report = Report::default();
    let mut names = Vec::new();
    check_file(as_rel, src, &mut report, &mut names);
    (report, names)
}

fn rule_counts(report: &Report) -> BTreeMap<Rule, usize> {
    let mut counts = BTreeMap::new();
    for v in &report.violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

// ---------------------------------------------------------------- fail/

#[test]
fn fail_panic_unwrap_fires_on_every_construct() {
    let src = include_str!("fixtures/fail/panic_unwrap.rs");
    let (report, _) = run(src, "crates/platform/src/service.rs");
    let counts = rule_counts(&report);
    assert_eq!(
        counts.get(&Rule::Panic),
        Some(&6),
        "expected unwrap, expect, panic!, unreachable!, indexing, and assert! \
         to each fire once: {:#?}",
        report.violations
    );
    assert_eq!(counts.len(), 1, "only the panic rule should fire");
}

#[test]
fn fail_panic_fixture_is_clean_outside_the_serving_scope() {
    let src = include_str!("fixtures/fail/panic_unwrap.rs");
    let (report, _) = run(src, "crates/sim/src/world.rs");
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn fail_hash_map_fires_per_mention() {
    let src = include_str!("fixtures/fail/hash_map.rs");
    let (report, _) = run(src, "crates/core/src/aggregate.rs");
    let counts = rule_counts(&report);
    assert_eq!(
        counts.get(&Rule::HashIter),
        Some(&6),
        "use-line (2) + type positions (2) + constructors (2): {:#?}",
        report.violations
    );
    assert_eq!(counts.len(), 1);
}

#[test]
fn fail_no_alloc_fires_on_marked_fns_only() {
    let src = include_str!("fixtures/fail/no_alloc_viol.rs");
    let (report, _) = run(src, "crates/nn/src/kernel.rs");
    let counts = rule_counts(&report);
    // hot(): to_vec, push, collect, format!; constructor(): with_capacity.
    assert_eq!(
        counts.get(&Rule::NoAlloc),
        Some(&5),
        "{:#?}",
        report.violations
    );
    assert_eq!(counts.len(), 1);
}

#[test]
fn fail_stale_allow_is_directive_hygiene() {
    let src = include_str!("fixtures/fail/stale_allow.rs");
    let (report, _) = run(src, "crates/platform/src/service.rs");
    let counts = rule_counts(&report);
    // Stale allow + unknown slug + reasonless (malformed) allow.
    assert_eq!(
        counts.get(&Rule::Directive),
        Some(&3),
        "{:#?}",
        report.violations
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.msg.contains("unused allow(panic)")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.msg.contains("unknown rule")));
}

#[test]
fn fail_metric_undocumented_cross_checks_both_directions() {
    let src = include_str!("fixtures/fail/metric_undocumented.rs");
    let (report, names) = run(src, "crates/platform/src/probes.rs");
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(names.len(), 1);
    assert_eq!(names[0].name, "diagnet_bogus_total");

    let doc = metrics_doc::doc_names("The doc knows `diagnet_documented_total` only.");
    let mut violations = Vec::new();
    metrics_doc::cross_check(&names, &doc, "OBSERVABILITY.md", &mut violations);
    assert_eq!(violations.len(), 2, "{violations:#?}");
    assert!(
        violations
            .iter()
            .any(|v| v.msg.contains("diagnet_bogus_total") && v.msg.contains("not documented")),
        "code name missing from the doc must fire: {violations:#?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.msg.contains("diagnet_documented_total")),
        "doc name missing from code must fire: {violations:#?}"
    );
}

// ---------------------------------------------------------------- pass/

#[test]
fn pass_panic_clean_including_the_escape_hatch() {
    let src = include_str!("fixtures/pass/panic_clean.rs");
    let (report, _) = run(src, "crates/platform/src/service.rs");
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.allows_used.len(), 1);
    assert_eq!(report.allows_used[0].rule, "panic");
}

#[test]
fn pass_btree_map_with_test_only_hashing() {
    let src = include_str!("fixtures/pass/btree_map.rs");
    let (report, _) = run(src, "crates/core/src/aggregate.rs");
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn pass_no_alloc_clean_kernels() {
    let src = include_str!("fixtures/pass/no_alloc_clean.rs");
    let (report, _) = run(src, "crates/nn/src/kernel.rs");
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn pass_metric_documented_matches_its_doc() {
    let src = include_str!("fixtures/pass/metric_documented.rs");
    let (report, names) = run(src, "crates/platform/src/probes.rs");
    assert!(report.is_clean(), "{:#?}", report.violations);
    let doc = metrics_doc::doc_names("The doc knows `diagnet_documented_total` only.");
    let mut violations = Vec::new();
    metrics_doc::cross_check(&names, &doc, "OBSERVABILITY.md", &mut violations);
    assert!(violations.is_empty(), "{violations:#?}");
}

// ------------------------------------------------------- completeness

/// Every fixture on disk is exercised by a test above (by name), so a
/// fixture added without a matching test fails here.
#[test]
fn every_fixture_is_wired_up() {
    let known: &[&str] = &[
        "fail/panic_unwrap.rs",
        "fail/hash_map.rs",
        "fail/no_alloc_viol.rs",
        "fail/stale_allow.rs",
        "fail/metric_undocumented.rs",
        "pass/panic_clean.rs",
        "pass/btree_map.rs",
        "pass/no_alloc_clean.rs",
        "pass/metric_documented.rs",
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut on_disk = Vec::new();
    for sub in ["pass", "fail"] {
        let dir = root.join(sub);
        for entry in std::fs::read_dir(&dir).expect("fixture dir").flatten() {
            let name = entry.file_name();
            on_disk.push(format!("{sub}/{}", name.to_string_lossy()));
        }
    }
    on_disk.sort();
    let mut expected: Vec<String> = known.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(on_disk, expected, "fixture files and tests are out of sync");
}
