//! The workspace must pass its own invariant checker. This is the same
//! gate CI runs (`cargo run -p diagnet-lint -- check`), wired into
//! `cargo test` so a violation fails the suite even without the CI leg.

use diagnet_lint::check_workspace;
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint");
    let report = check_workspace(root).expect("workspace walk succeeds");
    assert!(
        report.is_clean(),
        "the workspace violates its own invariants:\n{}",
        report.render()
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the walk break?",
        report.files_scanned
    );
}
