// Fixture: ordered collections keep the determinism rule quiet.
// Checked as `crates/core/src/aggregate.rs`.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(keys: &[u32]) -> BTreeMap<u32, usize> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut out = BTreeMap::new();
    for &k in keys {
        if seen.insert(k) {
            out.insert(k, 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m[&1], 2);
    }
}
