// Fixture: the panic-free shapes serving code is expected to use, plus
// one justified escape hatch. Checked as `crates/platform/src/service.rs`.

pub fn lookup(scores: &[f32], idx: usize) -> f32 {
    scores.get(idx).copied().unwrap_or(0.0)
}

pub fn fallback(v: Option<u32>) -> u32 {
    v.unwrap_or_default()
}

pub fn checked(scores: &[f32]) -> Option<f32> {
    debug_assert!(scores.len() < 1_000_000, "debug asserts are fine");
    let first = scores.first()?;
    Some(*first)
}

pub fn excused(v: Option<u32>) -> u32 {
    v.unwrap() // lint: allow(panic, reason = "caller guarantees Some by construction")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let xs = [1, 2, 3];
        assert_eq!(xs[0], 1);
        if false {
            panic!("unreached");
        }
    }
}
