// Fixture: a marked kernel that only mutates caller-owned storage.
// Checked as `crates/nn/src/kernel.rs`.

// lint: no_alloc
pub fn axpy(alpha: f32, xs: &[f32], ys: &mut [f32]) {
    for (y, x) in ys.iter_mut().zip(xs) {
        *y += alpha * x;
    }
}

// lint: no_alloc
pub fn scale_in_place(buf: &mut [f32], factor: f32) {
    for v in buf.iter_mut() {
        *v *= factor;
    }
}

// Unmarked functions may allocate as they please.
pub fn cold(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}
