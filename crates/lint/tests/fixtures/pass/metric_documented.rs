// Fixture: a metric literal that matches the doc snippet used by the
// integration test. Checked as `crates/platform/src/probes.rs`.

pub const DOCUMENTED: &str = "diagnet_documented_total";

pub fn record() {
    let _ = DOCUMENTED;
}
