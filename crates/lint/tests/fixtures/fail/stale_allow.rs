// Fixture: directive hygiene failures — a stale allow whose excused code
// is gone, an unknown rule slug, and a reasonless allow. Checked as
// `crates/platform/src/service.rs`.

// lint: allow(panic, reason = "this excused an unwrap that was deleted")
pub fn no_longer_panics(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn typo(v: Option<u32>) -> u32 {
    v.unwrap_or(1) // lint: allow(panics, reason = "slug does not exist")
}

// lint: allow(panic)
pub fn reasonless(v: Option<u32>) -> u32 {
    v.unwrap_or(2)
}
