// Fixture: a metric literal OBSERVABILITY.md has never heard of.
// Checked as `crates/platform/src/probes.rs` against a doc snippet that
// documents `diagnet_documented_total` only.

pub const BOGUS: &str = "diagnet_bogus_total";

pub fn record() {
    let _ = BOGUS;
}
