// Fixture: iteration-order-dependent collections in a determinism-scoped
// crate. Checked as `crates/core/src/aggregate.rs`.

use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u32]) -> HashMap<u32, usize> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut out = HashMap::new();
    for &k in keys {
        if seen.insert(k) {
            out.insert(k, 1);
        }
    }
    out
}
