// Fixture: a marked hot-path function that allocates every way the rule
// knows about. Checked as `crates/nn/src/kernel.rs`.

// lint: no_alloc
pub fn hot(xs: &[f32], out: &mut Vec<f32>) -> String {
    let copy = xs.to_vec();
    out.push(copy.iter().sum());
    let doubled: Vec<f32> = xs.iter().map(|v| v * 2.0).collect();
    format!("{}", doubled.len())
}

// lint: no_alloc
pub fn constructor(n: usize) -> Vec<f32> {
    Vec::with_capacity(n)
}
