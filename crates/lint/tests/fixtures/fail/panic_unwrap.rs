// Fixture: every panic-family construct the rule must catch in a
// serving-path file. Checked as `crates/platform/src/service.rs`.

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("serving code must not expect")
}

pub fn panic_site(code: u8) {
    if code == 0 {
        panic!("boom");
    }
}

pub fn unreachable_site(code: u8) -> u32 {
    match code {
        0 => 1,
        _ => unreachable!("codes are validated upstream"),
    }
}

pub fn index_site(scores: &[f32], idx: usize) -> f32 {
    scores[idx]
}

pub fn assert_site(scores: &[f32]) {
    assert!(!scores.is_empty(), "asserts can abort serving too");
}
