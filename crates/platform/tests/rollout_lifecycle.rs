//! Canary rollout acceptance suite: a healthy retrained generation is
//! promoted after its observation window, a gray-failing one (NaN scores
//! that appear only under live traffic, past the publish gate's probe) is
//! auto-rolled-back — with zero request-path errors in both cases — and
//! every transition lands in the durable store's manifest and the
//! process metrics.
//!
//! Run with `cargo test -p diagnet-platform --features chaos`.
#![cfg(feature = "chaos")]

use diagnet::backend::{Backend, BackendConfig, BackendEnvelope, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet_nn::error::NnError;
use diagnet_obs::global;
use diagnet_platform::chaos::{ChaosPipeline, TrainFault};
use diagnet_platform::rollout::{
    RolloutPhase, CANARY_NON_FINITE_TOTAL, CANARY_PROMOTIONS_TOTAL, CANARY_REQUESTS_TOTAL,
    ROLLBACK_BACKOFF_LEVEL, ROLLBACK_TOTAL,
};
use diagnet_platform::store::{ArtefactCodec, GenerationStatus, ModelStore};
use diagnet_platform::trainer::{StandardPipeline, TrainPipeline};
use diagnet_platform::{AnalysisService, HealthState, RolloutConfig, ServiceConfig, TrainFailure};
use diagnet_sim::dataset::{Dataset, DatasetConfig, Sample};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Serde-free codec (same scheme as `tests/store_recovery.rs`): artefact
/// bytes index an in-memory envelope table, so the store layer is fully
/// exercised without the serialization stack.
#[derive(Debug, Default)]
struct SlotCodec {
    slots: Mutex<Vec<BackendEnvelope>>,
}

impl ArtefactCodec for SlotCodec {
    fn encode(&self, backend: &dyn Backend) -> Result<Vec<u8>, NnError> {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slots.push(backend.to_envelope());
        let mut bytes = ((slots.len() - 1) as u64).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0xCD; 24]);
        Ok(bytes)
    }

    fn decode(&self, bytes: &[u8]) -> Result<Box<dyn Backend>, NnError> {
        let idx: [u8; 8] = bytes
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| NnError::Serialization("short artefact".into()))?;
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(u64::from_le_bytes(idx) as usize)
            .cloned()
            .ok_or_else(|| NnError::Serialization("unknown artefact slot".into()))?
            .into_backend()
    }
}

fn temp_store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("diagnet_rollout_lifecycle")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_model() -> DiagNetConfig {
    let mut model = DiagNetConfig::fast();
    model.epochs = 2;
    model.forest.n_trees = 5;
    model
}

const WINDOW: u64 = 6;

/// Service with a chaos-wrapped pipeline, a durable store and canarying
/// on: 100 % of diagnose traffic probes the candidate so windows fill
/// deterministically fast.
fn rollout_service(
    seed: u64,
    store_name: &str,
) -> (AnalysisService, Arc<ChaosPipeline>, Vec<Sample>) {
    let world = World::new();
    let pipeline: Arc<dyn TrainPipeline> = Arc::new(StandardPipeline {
        kind: BackendKind::DiagNet,
        config: BackendConfig::from_diagnet(fast_model()),
        general_services: world.catalog.general_ids(),
        min_service_samples: 1,
    });
    let chaos = Arc::new(ChaosPipeline::scripted(pipeline, vec![]));
    let config = ServiceConfig {
        model: fast_model(),
        general_services: world.catalog.general_ids(),
        seed,
        rollout: Some(RolloutConfig {
            canary_frac: 1.0,
            window: WINDOW,
            // The candidate retrains on strictly more data than the
            // active generation, so rank agreement and relative latency
            // are real-model-dependent; this suite pins the *lifecycle*
            // mechanics, so only score finiteness can veto here. The
            // latency/churn verdicts are unit-tested in `rollout.rs`.
            max_latency_ratio: f64::INFINITY,
            min_agreement: 0.0,
        }),
        ..ServiceConfig::default()
    };
    let store = ModelStore::open(
        temp_store_dir(store_name),
        Arc::new(SlotCodec::default()) as Arc<dyn ArtefactCodec>,
    )
    .expect("open store");
    let service = AnalysisService::with_pipeline_and_store(
        config,
        FeatureSchema::full(),
        Arc::clone(&chaos) as Arc<dyn TrainPipeline>,
        Some(Arc::new(store)),
    );
    let mut cfg = DatasetConfig::small(&world, seed);
    cfg.n_scenarios = 15;
    let samples = Dataset::generate(&world, &cfg).expect("generate").samples;
    (service, chaos, samples)
}

fn counter(name: &str, labels: &[(&str, &str)]) -> u64 {
    global().snapshot().counter(name, labels).unwrap_or(0)
}

#[test]
fn healthy_canary_is_promoted_after_its_window() {
    let (service, _chaos, samples) = rollout_service(7001, "healthy");
    let schema = FeatureSchema::full();
    for s in &samples {
        service.submit(s.clone());
    }

    // Bootstrap: the first generation goes straight to active — there is
    // nothing to baseline a canary against.
    let report = service.retrain_now().expect("bootstrap generation");
    let active = report.version;
    assert_eq!(service.rollout_phase(), RolloutPhase::Idle);

    // Retrain with a live active generation: the candidate is staged as a
    // canary, the active version keeps serving.
    let report = service.retrain_now().expect("canary generation");
    let candidate = report.version;
    assert!(candidate > active, "candidate gets a fresh version");
    assert_eq!(service.model_version(), active, "active version unchanged");
    assert!(matches!(
        service.rollout_phase(),
        RolloutPhase::Canary { version, .. } if version == candidate
    ));
    let records = service.generation_records();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].status, GenerationStatus::Active);
    assert_eq!(records[1].status, GenerationStatus::Canary);
    assert_eq!(records[1].parent, Some(records[0].generation));

    // Drive the observation window. Every request must be answered, from
    // a whole generation, with finite scores — canarying is invisible to
    // clients.
    let before_promotions = counter(CANARY_PROMOTIONS_TOTAL, &[]);
    let faulty: Vec<&Sample> = samples.iter().filter(|s| s.label.is_faulty()).collect();
    let mut served = 0u64;
    for s in faulty.iter().cycle().take(WINDOW as usize) {
        let d = service
            .diagnose(&s.features, s.service, &schema)
            .expect("requests never fail during a canary");
        assert!(d.ranking.all_finite());
        served += 1;
    }
    assert_eq!(served, WINDOW);

    // The window is full: the candidate owns 100 % of traffic now.
    assert_eq!(service.rollout_phase(), RolloutPhase::Idle);
    assert_eq!(service.model_version(), candidate, "candidate promoted");
    // `>=`: the counter is process-global and the rollback test's final
    // clean promote also bumps it.
    assert!(counter(CANARY_PROMOTIONS_TOTAL, &[]) >= before_promotions + 1);
    assert!(counter(CANARY_REQUESTS_TOTAL, &[("target", "canary")]) >= WINDOW);
    let records = service.generation_records();
    assert_eq!(
        records[1].status,
        GenerationStatus::Active,
        "promotion must be durable: {records:?}"
    );
    assert_eq!(service.health(), HealthState::Serving);

    // Post-promotion requests come from the candidate.
    let d = service
        .diagnose(&faulty[0].features, faulty[0].service, &schema)
        .expect("diagnose after promotion");
    assert_eq!(d.model_version, candidate);
}

#[test]
fn gray_nan_canary_is_rolled_back_with_zero_request_errors() {
    let (service, chaos, samples) = rollout_service(7002, "gray");
    let schema = FeatureSchema::full();
    for s in &samples {
        service.submit(s.clone());
    }
    let report = service.retrain_now().expect("bootstrap generation");
    let active = report.version;

    // A gray generation: each model behaves for exactly one scoring call
    // — enough to clear the publish gate's validation probe — then goes
    // NaN under live traffic. Plain `NanModels` would be caught at
    // publish; only behavioural canary observation can catch this one.
    chaos.push_fault(TrainFault::GrayModels(1));
    let report = service.retrain_now().expect("gray canary publishes");
    let candidate = report.version;
    assert!(matches!(
        service.rollout_phase(),
        RolloutPhase::Canary { version, .. } if version == candidate
    ));

    let before_rollbacks = counter(ROLLBACK_TOTAL, &[("reason", "non_finite_scores")]);
    let before_non_finite = counter(CANARY_NON_FINITE_TOTAL, &[]);

    // Every request — including the ones that probe the poisoned canary —
    // must be served, finite, from the active baseline.
    let faulty: Vec<&Sample> = samples.iter().filter(|s| s.label.is_faulty()).collect();
    for s in faulty.iter().cycle().take(WINDOW as usize * 2) {
        let d = service
            .diagnose(&s.features, s.service, &schema)
            .expect("poisoned canary must never surface to clients");
        assert!(d.ranking.all_finite(), "clients never see NaN scores");
        assert_eq!(
            d.model_version, active,
            "responses come from the active baseline"
        );
    }

    // The first non-finite canary score triggered an immediate rollback.
    assert_eq!(service.rollout_phase(), RolloutPhase::Idle);
    assert_eq!(service.model_version(), active, "active version untouched");
    assert_eq!(
        counter(ROLLBACK_TOTAL, &[("reason", "non_finite_scores")]),
        before_rollbacks + 1
    );
    assert!(counter(CANARY_NON_FINITE_TOTAL, &[]) > before_non_finite);
    // The backoff gauge is process-global and other tests' promotions
    // reset it concurrently; the doubling schedule itself is unit-tested
    // in `rollout.rs`. Here we only require the gauge to exist.
    assert!(
        global()
            .snapshot()
            .gauge(ROLLBACK_BACKOFF_LEVEL, &[])
            .is_some(),
        "rollback must publish the backoff gauge"
    );

    // Durable record: the candidate is marked rolled-back, the active
    // generation stays active.
    let records = service.generation_records();
    assert_eq!(records.len(), 2, "{records:?}");
    assert_eq!(records[0].status, GenerationStatus::Active);
    assert_eq!(records[1].status, GenerationStatus::RolledBack);

    // Health reflects the demotion (the canary was a failed generation),
    // with the rollback surfaced as the reason.
    match service.health() {
        HealthState::Degraded { reason } => {
            assert!(reason.contains("rolled back"), "reason: {reason}");
        }
        other => panic!("expected Degraded after a rollback, got {other}"),
    }

    // A later clean retrain canaries and promotes again — rollback did
    // not wedge the lifecycle.
    let report = service
        .retrain_now()
        .expect("clean candidate after rollback");
    for s in faulty.iter().cycle().take(WINDOW as usize) {
        let _ = service.diagnose(&s.features, s.service, &schema);
    }
    assert_eq!(service.model_version(), report.version);
    assert_eq!(service.health(), HealthState::Serving);
}

/// The publish gate still refuses generations that are *visibly* broken
/// at validation time — canarying extends the gate, it does not replace
/// it.
#[test]
fn fully_nan_generation_is_still_refused_at_publish() {
    let (service, chaos, samples) = rollout_service(7003, "gate");
    for s in &samples {
        service.submit(s.clone());
    }
    service.retrain_now().expect("bootstrap generation");
    chaos.push_fault(TrainFault::NanModels);
    let failure = service
        .retrain_now()
        .expect_err("NaN-at-validation models must not even canary");
    assert!(matches!(failure, TrainFailure::Error(_)), "{failure}");
    assert_eq!(service.rollout_phase(), RolloutPhase::Idle);
}
