//! Integration tests of the analysis service under concurrency: probes
//! arriving while diagnoses run and model generations roll over — the
//! operational picture of the paper's Fig. 1.

use diagnet::backend::BackendKind;
use diagnet::config::DiagNetConfig;
use diagnet_platform::{AnalysisService, ServiceConfig};
use diagnet_sim::dataset::{Dataset, DatasetConfig, Sample};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::Arc;

fn fixture() -> (World, Arc<AnalysisService>, Vec<Sample>) {
    let world = World::new();
    let mut model = DiagNetConfig::fast();
    model.epochs = 2;
    model.forest.n_trees = 5;
    let service = Arc::new(AnalysisService::new(
        ServiceConfig {
            backend: BackendKind::DiagNet,
            model,
            buffer_capacity: 200_000,
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
            auto_retrain_every: None,
            seed: 500,
            ..ServiceConfig::default()
        },
        FeatureSchema::full(),
    ));
    let mut cfg = DatasetConfig::small(&world, 500);
    cfg.n_scenarios = 15;
    let samples = Dataset::generate(&world, &cfg).expect("generate").samples;
    (world, service, samples)
}

#[test]
fn concurrent_submissions_and_diagnoses() {
    let (_, service, samples) = fixture();
    // Bootstrap: first half of the samples, then one generation.
    let (first, second) = samples.split_at(samples.len() / 2);
    for s in first {
        service.submit(s.clone());
    }
    service.retrain_now().unwrap();
    let schema = FeatureSchema::full();

    // Concurrently: one thread keeps submitting, several threads diagnose.
    let faulty: Vec<Sample> = first
        .iter()
        .filter(|s| s.label.is_faulty())
        .cloned()
        .collect();
    assert!(!faulty.is_empty());
    std::thread::scope(|scope| {
        let svc = Arc::clone(&service);
        scope.spawn(move || {
            for s in second {
                assert!(svc.submit(s.clone()).accepted());
            }
        });
        for chunk in faulty.chunks(faulty.len().div_ceil(3)) {
            let svc = Arc::clone(&service);
            let schema = schema.clone();
            scope.spawn(move || {
                for s in chunk {
                    let d = svc.diagnose(&s.features, s.service, &schema).unwrap();
                    assert_eq!(d.ranking.scores.len(), 55);
                    assert_eq!(d.model_version, 1);
                }
            });
        }
    });
    assert_eq!(service.buffered_samples(), samples.len());
}

#[test]
fn generation_rollover_changes_version_not_correctness() {
    let (_, service, samples) = fixture();
    for s in &samples {
        service.submit(s.clone());
    }
    service.retrain_now().unwrap();
    let schema = FeatureSchema::full();
    let probe = samples.iter().find(|s| s.label.is_faulty()).unwrap();
    let before = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert_eq!(before.model_version, 1);

    // Second generation (different derived seed ⇒ different weights).
    service.retrain_now().unwrap();
    let after = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert_eq!(after.model_version, 2);
    assert_eq!(after.ranking.scores.len(), 55);
    assert!((after.ranking.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
}

#[test]
fn baseline_backend_hot_swaps_into_a_live_service() {
    use diagnet::backend::ForestBackend;
    use diagnet_forest::ForestConfig;
    use std::collections::BTreeMap;
    use std::sync::Arc as StdArc;

    let (_, service, samples) = fixture();
    for s in &samples {
        service.submit(s.clone());
    }
    let report = service.retrain_now().unwrap();
    assert_eq!(report.backend, BackendKind::DiagNet);
    let schema = FeatureSchema::full();
    let probe = samples.iter().find(|s| s.label.is_faulty()).unwrap();
    let before = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert_eq!(before.model_version, 1);

    // Hot-swap a forest baseline into the registry the service is serving
    // from: diagnoses keep flowing, now against the new backend.
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, 501);
    cfg.n_scenarios = 10;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let forest = ForestBackend::train(&ForestConfig::default(), &ds, &FeatureSchema::known(), 501);
    let snapshot = service.registry().general().unwrap();
    service
        .registry()
        .publish_backend(StdArc::new(forest), BTreeMap::new());
    let after = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert_eq!(after.model_version, 2);
    assert_eq!(after.ranking.scores.len(), 55);
    assert_eq!(
        service.registry().general().unwrap().describe().kind,
        BackendKind::Forest
    );
    // The pre-swap snapshot is unaffected by the publication.
    assert_eq!(snapshot.describe().kind, BackendKind::DiagNet);
}

#[test]
fn service_trains_a_configured_baseline_backend() {
    let world = World::new();
    let service = AnalysisService::new(
        ServiceConfig {
            backend: BackendKind::NaiveBayes,
            model: DiagNetConfig::fast(),
            buffer_capacity: 100_000,
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
            auto_retrain_every: None,
            seed: 502,
            ..ServiceConfig::default()
        },
        FeatureSchema::full(),
    );
    let mut cfg = DatasetConfig::small(&world, 502);
    cfg.n_scenarios = 10;
    let samples = Dataset::generate(&world, &cfg).expect("generate").samples;
    for s in &samples {
        service.submit(s.clone());
    }
    let report = service.retrain_now().unwrap();
    assert_eq!(report.backend, BackendKind::NaiveBayes);
    assert!(report.specialized.is_empty());
    let schema = FeatureSchema::full();
    let probe = samples.iter().find(|s| s.label.is_faulty()).unwrap();
    let d = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert_eq!(d.ranking.scores.len(), 55);
    assert!((d.ranking.scores.iter().sum::<f32>() - 1.0).abs() < 1e-3);
}

#[test]
fn sliding_window_keeps_service_trainable() {
    // A tiny buffer evicts aggressively; training must still work off the
    // window that remains.
    let world = World::new();
    let mut model = DiagNetConfig::fast();
    model.epochs = 1;
    model.forest.n_trees = 3;
    let service = AnalysisService::new(
        ServiceConfig {
            backend: BackendKind::DiagNet,
            model,
            buffer_capacity: 600,
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
            auto_retrain_every: None,
            seed: 600,
            ..ServiceConfig::default()
        },
        FeatureSchema::full(),
    );
    let mut cfg = DatasetConfig::small(&world, 600);
    cfg.n_scenarios = 12;
    for s in Dataset::generate(&world, &cfg).expect("generate").samples {
        service.submit(s);
    }
    assert_eq!(service.buffered_samples(), 600);
    let report = service.retrain_now().unwrap();
    assert_eq!(report.n_samples, 600);
    assert!(service.is_ready());
}
