//! Publication/read race for the model registry.
//!
//! The registry swaps `Arc` snapshots behind a lock; a diagnosis that
//! started under version *n* must keep using a *whole* generation even
//! while version *n + 1* lands. This test hammers that contract: a
//! writer thread republishes two distinguishable models in a tight loop
//! while reader threads spin on `model_for` + `rank_causes`, asserting
//! every ranking they see is bitwise-equal to one of the two published
//! models' outputs (never a blend, never a torn state) and that the
//! version counter is monotone from each reader's point of view.

use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_platform::registry::ModelRegistry;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::service::ServiceId;
use diagnet_sim::world::World;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const READERS: usize = 3;
const SWAPS: usize = 200;

#[test]
fn swap_racing_readers_see_only_whole_generations() {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, 93);
    cfg.n_scenarios = 12;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let mut mc = DiagNetConfig::fast();
    mc.epochs = 1;
    let model_a = DiagNet::train(&mc, &ds, 93).expect("train model a");
    let model_b = model_a
        .specialize(&ds.filter_service(ServiceId(0)), 94)
        .expect("train model b");

    let schema = FeatureSchema::full();
    let probe = ds.samples[0].features.clone();
    let expect_a = model_a.rank_causes(&probe, &schema).scores;
    let expect_b = model_b.rank_causes(&probe, &schema).scores;
    assert_ne!(
        expect_a, expect_b,
        "the two generations must be distinguishable for the race to prove anything"
    );

    let reg = Arc::new(ModelRegistry::new());
    reg.publish(model_a.clone(), BTreeMap::new());
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let reg = Arc::clone(&reg);
            let done = Arc::clone(&done);
            let schema = schema.clone();
            let probe = probe.clone();
            let expect_a = expect_a.clone();
            let expect_b = expect_b.clone();
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut last_version = 0u64;
                while !done.load(Ordering::Acquire) {
                    let version = reg.version();
                    assert!(
                        version >= last_version,
                        "reader {r} saw the version counter go backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    let model = reg
                        .model_for(ServiceId(7))
                        .expect("registry published before readers started");
                    let ranking = model.rank_causes(&probe, &schema);
                    assert!(ranking.all_finite(), "reader {r} got a non-finite ranking");
                    assert!(
                        ranking.scores == expect_a || ranking.scores == expect_b,
                        "reader {r} observed a ranking that matches neither published \
                         generation — the swap exposed a torn model"
                    );
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    for i in 0..SWAPS {
        if i % 2 == 0 {
            reg.publish(model_b.clone(), BTreeMap::new());
        } else {
            reg.publish(model_a.clone(), BTreeMap::new());
        }
        // A brief yield keeps the writer from starving readers of the
        // lock on single-core machines.
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);

    for handle in readers {
        let iterations = handle.join().expect("reader thread panicked");
        assert!(
            iterations > 0,
            "a reader never completed a single diagnosis"
        );
    }
    assert_eq!(reg.version(), 1 + SWAPS as u64);
}
