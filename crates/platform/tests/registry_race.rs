//! Publication/read race for the model registry.
//!
//! The registry swaps `Arc` snapshots behind a lock; a diagnosis that
//! started under version *n* must keep using a *whole* generation even
//! while version *n + 1* lands. This test hammers that contract: a
//! writer thread republishes two distinguishable models in a tight loop
//! while reader threads spin on `model_for` + `rank_causes`, asserting
//! every ranking they see is bitwise-equal to one of the two published
//! models' outputs (never a blend, never a torn state) and that the
//! version counter is monotone from each reader's point of view.

use diagnet::backend::Backend;
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_platform::registry::{ModelRegistry, RouteTarget};
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::service::ServiceId;
use diagnet_sim::world::World;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const READERS: usize = 3;
const SWAPS: usize = 200;

/// Two cheaply trained, distinguishable generations for race fixtures.
fn trained_pair() -> (Dataset, DiagNet, DiagNet) {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, 93);
    cfg.n_scenarios = 12;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let mut mc = DiagNetConfig::fast();
    mc.epochs = 1;
    let model_a = DiagNet::train(&mc, &ds, 93).expect("train model a");
    let model_b = model_a
        .specialize(&ds.filter_service(ServiceId(0)), 94)
        .expect("train model b");
    (ds, model_a, model_b)
}

#[test]
fn swap_racing_readers_see_only_whole_generations() {
    let (ds, model_a, model_b) = trained_pair();

    let schema = FeatureSchema::full();
    let probe = ds.samples[0].features.clone();
    let expect_a = model_a.rank_causes(&probe, &schema).scores;
    let expect_b = model_b.rank_causes(&probe, &schema).scores;
    assert_ne!(
        expect_a, expect_b,
        "the two generations must be distinguishable for the race to prove anything"
    );

    let reg = Arc::new(ModelRegistry::new());
    reg.publish(model_a.clone(), BTreeMap::new());
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let reg = Arc::clone(&reg);
            let done = Arc::clone(&done);
            let schema = schema.clone();
            let probe = probe.clone();
            let expect_a = expect_a.clone();
            let expect_b = expect_b.clone();
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut last_version = 0u64;
                while !done.load(Ordering::Acquire) {
                    let version = reg.version();
                    assert!(
                        version >= last_version,
                        "reader {r} saw the version counter go backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    let model = reg
                        .model_for(ServiceId(7))
                        .expect("registry published before readers started");
                    let ranking = model.rank_causes(&probe, &schema);
                    assert!(ranking.all_finite(), "reader {r} got a non-finite ranking");
                    assert!(
                        ranking.scores == expect_a || ranking.scores == expect_b,
                        "reader {r} observed a ranking that matches neither published \
                         generation — the swap exposed a torn model"
                    );
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    for i in 0..SWAPS {
        if i % 2 == 0 {
            reg.publish(model_b.clone(), BTreeMap::new());
        } else {
            reg.publish(model_a.clone(), BTreeMap::new());
        }
        // A brief yield keeps the writer from starving readers of the
        // lock on single-core machines.
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);

    for handle in readers {
        let iterations = handle.join().expect("reader thread panicked");
        assert!(
            iterations > 0,
            "a reader never completed a single diagnosis"
        );
    }
    assert_eq!(reg.version(), 1 + SWAPS as u64);
}

/// Canary lifecycle under contention: while a writer stages, promotes and
/// demotes candidates in a tight loop, routed readers must only ever see
/// rankings bitwise-equal to one of the two published generations (whole
/// models, even across a promote swap), the active version must never go
/// backwards (a demote restores traffic without touching it), and
/// canary-routed probes always carry an active baseline.
#[test]
fn canary_promote_demote_race_keeps_generations_whole() {
    const CYCLES: usize = 150;
    let (ds, model_a, model_b) = trained_pair();

    let schema = FeatureSchema::full();
    let probe = ds.samples[0].features.clone();
    let expect_a = model_a.rank_causes(&probe, &schema).scores;
    let expect_b = model_b.rank_causes(&probe, &schema).scores;
    assert_ne!(expect_a, expect_b);

    let reg = Arc::new(ModelRegistry::new());
    reg.publish(model_a, BTreeMap::new());
    let candidate: Arc<dyn Backend> = Arc::new(model_b);
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let reg = Arc::clone(&reg);
            let done = Arc::clone(&done);
            let schema = schema.clone();
            let probe = probe.clone();
            let expect_a = expect_a.clone();
            let expect_b = expect_b.clone();
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut last_version = 0u64;
                // Spread keys over the hash space so both route targets
                // are exercised against the 50 % canary fraction.
                let mut key = 0x9e37_79b9_7f4a_7c15u64;
                while !done.load(Ordering::Acquire) {
                    let version = reg.version();
                    assert!(
                        version >= last_version,
                        "reader {r}: active version went backwards \
                         ({last_version} -> {version}); only an explicit \
                         rollback may restore an older generation"
                    );
                    last_version = version;
                    let routed = reg
                        .route_for(ServiceId(7), key)
                        .expect("an active generation is always published");
                    key = key
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(r as u64);
                    if routed.target == RouteTarget::Canary {
                        let (baseline, baseline_version) = routed
                            .baseline
                            .as_ref()
                            .expect("reader {r}: canary routes must carry a baseline");
                        assert!(
                            *baseline_version < routed.version,
                            "reader {r}: baseline v{baseline_version} must predate \
                             candidate v{}",
                            routed.version
                        );
                        let ranking = baseline.rank_causes(&probe, &schema);
                        assert!(
                            ranking.scores == expect_a || ranking.scores == expect_b,
                            "reader {r}: torn baseline model"
                        );
                    }
                    let ranking = routed.model.rank_causes(&probe, &schema);
                    assert!(ranking.all_finite(), "reader {r}: non-finite ranking");
                    assert!(
                        ranking.scores == expect_a || ranking.scores == expect_b,
                        "reader {r}: routed ranking matches neither generation — \
                         the canary swap exposed a torn model"
                    );
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    let mut promoted = 0u64;
    for i in 0..CYCLES {
        reg.begin_canary(Arc::clone(&candidate), BTreeMap::new(), 0.5);
        std::thread::yield_now();
        if i % 3 == 0 {
            promoted += u64::from(reg.promote_canary().is_some());
        } else {
            reg.demote_canary();
        }
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);

    for handle in readers {
        let iterations = handle.join().expect("reader thread panicked");
        assert!(iterations > 0, "a reader never completed a route");
    }
    assert!(promoted > 0, "the schedule promotes every third cycle");
    assert!(!reg.has_canary(), "the last cycle demotes its candidate");
    // Cycle `i` stages candidate version `2 + i` (the initial publish took
    // version 1); the last promoted cycle is the largest multiple of 3
    // below CYCLES, and demotes in between never moved the version.
    let last_promoted_cycle = 3 * ((CYCLES as u64 - 1) / 3);
    assert_eq!(reg.version(), 2 + last_promoted_cycle);
}
