//! Property-based tests of the platform's collector.

use diagnet_platform::ProbeCollector;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A pool of real samples to draw from (generated once).
fn pool() -> &'static Vec<diagnet_sim::dataset::Sample> {
    static CELL: OnceLock<Vec<diagnet_sim::dataset::Sample>> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 808);
        cfg.n_scenarios = 3;
        Dataset::generate(&world, &cfg).expect("generate").samples
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The buffer never exceeds capacity and retains the newest samples.
    #[test]
    fn capacity_is_a_hard_bound(capacity in 1usize..200, n in 1usize..300) {
        let samples = pool();
        let collector = ProbeCollector::new(capacity, FeatureSchema::full());
        for i in 0..n {
            prop_assert!(collector.submit(samples[i % samples.len()].clone()));
            prop_assert!(collector.len() <= capacity);
        }
        prop_assert_eq!(collector.len(), n.min(capacity));
        // The snapshot holds exactly the newest min(n, capacity) samples.
        let snap = collector.snapshot();
        let expected: Vec<_> = (n.saturating_sub(capacity)..n)
            .map(|i| samples[i % samples.len()].clone())
            .collect();
        prop_assert_eq!(snap.samples, expected);
    }

    /// Drain empties the buffer and returns everything exactly once.
    #[test]
    fn drain_returns_everything_once(n in 1usize..150) {
        let samples = pool();
        let collector = ProbeCollector::new(10_000, FeatureSchema::full());
        for i in 0..n {
            collector.submit(samples[i % samples.len()].clone());
        }
        let drained = collector.drain();
        prop_assert_eq!(drained.len(), n);
        prop_assert!(collector.is_empty());
        prop_assert_eq!(collector.drain().len(), 0);
    }

    /// Schema mismatches are rejected without disturbing the buffer.
    #[test]
    fn mismatched_widths_rejected(truncate_to in 1usize..54) {
        let samples = pool();
        let collector = ProbeCollector::new(100, FeatureSchema::full());
        collector.submit(samples[0].clone());
        let mut bad = samples[1].clone();
        bad.features.truncate(truncate_to);
        prop_assert!(!collector.submit(bad));
        prop_assert_eq!(collector.len(), 1);
    }
}
