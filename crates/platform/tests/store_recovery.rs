//! Crash-safety suite for the durable model store.
//!
//! Every scenario simulates a process death at a different point in the
//! publish sequence (artefact write → manifest append) and asserts the
//! store recovers to the newest *intact* active generation with typed
//! errors — never a panic, never a half-read model — and that the
//! `diagnet_store_recovery_total{outcome}` counters record what happened.
//!
//! The codec here is deliberately serde-free: encoded bytes are a slot
//! index into an in-memory envelope table shared across "restarts" (new
//! `ModelStore::open` calls over the same directory), so recovered models
//! are exactly the published ones and rankings can be compared bitwise.

use diagnet::backend::{Backend, BackendEnvelope, ForestBackend};
use diagnet_forest::ForestConfig;
use diagnet_nn::error::NnError;
use diagnet_obs::global;
use diagnet_platform::store::{
    artefact_name, ArtefactCodec, GenerationStatus, ModelStore, StoreError, MANIFEST_FILE,
    STORE_RECOVERY_TOTAL,
};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::{Dataset, DatasetConfig, World};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// Serde-free test codec: bytes are `[slot index: 8 LE bytes][filler]`,
/// decoding clones the envelope out of a table that survives store
/// "restarts" as long as the codec instance is shared.
#[derive(Debug, Default)]
struct SlotCodec {
    slots: Mutex<Vec<BackendEnvelope>>,
}

const FILLER: [u8; 56] = [0xAB; 56];

impl ArtefactCodec for SlotCodec {
    fn encode(&self, backend: &dyn Backend) -> Result<Vec<u8>, NnError> {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slots.push(backend.to_envelope());
        let mut bytes = ((slots.len() - 1) as u64).to_le_bytes().to_vec();
        bytes.extend_from_slice(&FILLER);
        Ok(bytes)
    }

    fn decode(&self, bytes: &[u8]) -> Result<Box<dyn Backend>, NnError> {
        if bytes.len() != 8 + FILLER.len() {
            return Err(NnError::Serialization(format!(
                "artefact is {} bytes, expected {}",
                bytes.len(),
                8 + FILLER.len()
            )));
        }
        let mut idx = [0u8; 8];
        idx.copy_from_slice(&bytes[..8]);
        let envelope = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(u64::from_le_bytes(idx) as usize)
            .cloned()
            .ok_or_else(|| NnError::Serialization("unknown artefact slot".into()))?;
        envelope.into_backend()
    }
}

fn temp_store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("diagnet_store_recovery")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One cheap trained backend, shared by every test in the binary.
fn fixture_backend() -> &'static ForestBackend {
    static FIXTURE: OnceLock<ForestBackend> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 17);
        cfg.n_scenarios = 8;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        ForestBackend::train(&ForestConfig::default(), &ds, &FeatureSchema::known(), 17)
    })
}

fn recovery_count(outcome: &str) -> u64 {
    global()
        .snapshot()
        .counter(STORE_RECOVERY_TOTAL, &[("outcome", outcome)])
        .unwrap_or(0)
}

#[test]
fn recovery_after_clean_shutdown_is_bit_identical() {
    let dir = temp_store_dir("clean");
    let codec: Arc<SlotCodec> = Arc::new(SlotCodec::default());
    let backend = fixture_backend();
    let schema = FeatureSchema::known();
    let probe = vec![0.25f32; schema.n_features()];
    let expected = backend.rank_causes(&probe, &schema).scores;

    let store = ModelStore::open(&dir, Arc::clone(&codec) as Arc<dyn ArtefactCodec>)
        .expect("open fresh store");
    let record = store
        .persist(backend, None, "forest", GenerationStatus::Active)
        .expect("persist");
    assert_eq!(record.generation, 1);
    drop(store);

    let before = recovery_count("recovered");
    let reopened =
        ModelStore::open(&dir, Arc::clone(&codec) as Arc<dyn ArtefactCodec>).expect("reopen store");
    let (recovered, skipped) = reopened.recover();
    assert!(
        skipped.is_empty(),
        "no artefact should be skipped: {skipped:?}"
    );
    let (record, model) = recovered.expect("an active generation must recover");
    assert_eq!(record.generation, 1);
    assert_eq!(record.status, GenerationStatus::Active);
    assert_eq!(
        model.rank_causes(&probe, &schema).scores,
        expected,
        "recovered model must produce bit-identical rankings"
    );
    // `>=`: other tests in this binary also recover successfully and the
    // counter is process-global.
    assert!(recovery_count("recovered") >= before + 1);
}

#[test]
fn canary_and_rolled_back_generations_are_not_recovered() {
    let dir = temp_store_dir("status");
    let codec: Arc<SlotCodec> = Arc::new(SlotCodec::default());
    let backend = fixture_backend();
    let store = ModelStore::open(&dir, codec as Arc<dyn ArtefactCodec>).expect("open");
    store
        .persist(backend, None, "forest", GenerationStatus::Active)
        .expect("persist active");
    store
        .persist(backend, Some(1), "forest", GenerationStatus::RolledBack)
        .expect("persist rolled-back");
    store
        .persist(backend, Some(1), "forest", GenerationStatus::Canary)
        .expect("persist canary");

    let (recovered, skipped) = store.recover();
    assert!(skipped.is_empty(), "{skipped:?}");
    let (record, _model) = recovered.expect("the active generation recovers");
    assert_eq!(
        record.generation, 1,
        "canary (3) and rolled-back (2) generations must be passed over"
    );
}

/// A torn write — the process died while the newest artefact was going to
/// disk, after the manifest of an *earlier* generation landed. The damaged
/// artefact is skipped with a typed `Corrupt` error and recovery falls
/// back to the older intact generation.
#[test]
fn torn_newest_artefact_falls_back_to_previous_generation() {
    let dir = temp_store_dir("torn");
    let codec: Arc<SlotCodec> = Arc::new(SlotCodec::default());
    let backend = fixture_backend();
    let store = ModelStore::open(&dir, codec as Arc<dyn ArtefactCodec>).expect("open");
    store
        .persist(backend, None, "forest", GenerationStatus::Active)
        .expect("persist gen 1");
    let gen2 = store
        .persist(backend, Some(1), "forest", GenerationStatus::Active)
        .expect("persist gen 2");

    // Tear generation 2's artefact in half.
    let artefact = dir.join(&gen2.file);
    let bytes = std::fs::read(&artefact).expect("read artefact");
    std::fs::write(&artefact, &bytes[..bytes.len() / 2]).expect("truncate artefact");

    let before_corrupt = recovery_count("corrupt");
    let before_recovered = recovery_count("recovered");
    let (recovered, skipped) = store.recover();
    let (record, _model) = recovered.expect("gen 1 must still recover");
    assert_eq!(record.generation, 1);
    assert_eq!(skipped.len(), 1, "{skipped:?}");
    assert_eq!(skipped[0].0, 2);
    assert!(
        matches!(&skipped[0].1, StoreError::Corrupt { generation: 2, .. }),
        "torn artefact must surface as a typed Corrupt error, got {:?}",
        skipped[0].1
    );
    assert_eq!(recovery_count("corrupt"), before_corrupt + 1);
    assert!(recovery_count("recovered") >= before_recovered + 1);
}

/// A kill between artefact write and rename leaves only a `*.tmp` file;
/// reopening sweeps it and the manifest never mentions the lost
/// generation, so the store stays consistent.
#[test]
fn kill_before_rename_sweeps_tmp_and_keeps_last_good() {
    let dir = temp_store_dir("midpublish");
    let codec: Arc<SlotCodec> = Arc::new(SlotCodec::default());
    let backend = fixture_backend();
    let store = ModelStore::open(&dir, Arc::clone(&codec) as Arc<dyn ArtefactCodec>).expect("open");
    store
        .persist(backend, None, "forest", GenerationStatus::Active)
        .expect("persist gen 1");
    drop(store);

    // Simulate SIGKILL mid-publish: a half-written temp artefact that
    // never got renamed and never reached the manifest.
    let stray = dir.join(format!("{}.tmp", artefact_name(2)));
    std::fs::write(&stray, b"half-written").expect("write stray tmp");

    let reopened =
        ModelStore::open(&dir, Arc::clone(&codec) as Arc<dyn ArtefactCodec>).expect("reopen");
    assert!(!stray.exists(), "reopen must sweep orphaned tmp artefacts");
    let (recovered, skipped) = reopened.recover();
    assert!(skipped.is_empty(), "{skipped:?}");
    assert_eq!(recovered.expect("gen 1 recovers").0.generation, 1);
    // The swept generation number is not resurrected: the next publish
    // gets a fresh number after the last manifest entry.
    let next = reopened
        .persist(backend, Some(1), "forest", GenerationStatus::Active)
        .expect("persist after sweep");
    assert_eq!(next.generation, 2);
}

#[test]
fn corrupt_manifest_lines_are_skipped_not_fatal() {
    let dir = temp_store_dir("manifest");
    let codec: Arc<SlotCodec> = Arc::new(SlotCodec::default());
    let backend = fixture_backend();
    let store = ModelStore::open(&dir, Arc::clone(&codec) as Arc<dyn ArtefactCodec>).expect("open");
    store
        .persist(backend, None, "forest", GenerationStatus::Active)
        .expect("persist gen 1");
    drop(store);

    // A torn manifest append: trailing garbage after the valid line.
    let manifest = dir.join(MANIFEST_FILE);
    let mut text = std::fs::read_to_string(&manifest).expect("read manifest");
    text.push_str("gen 2 parent 1 backend forest chec");
    std::fs::write(&manifest, text).expect("append garbage");

    let before = recovery_count("manifest_line_skipped");
    let reopened =
        ModelStore::open(&dir, Arc::clone(&codec) as Arc<dyn ArtefactCodec>).expect("reopen");
    assert_eq!(recovery_count("manifest_line_skipped"), before + 1);
    let (recovered, _) = reopened.recover();
    assert_eq!(recovered.expect("gen 1 recovers").0.generation, 1);
}

#[test]
fn manifest_with_wrong_header_is_a_typed_error() {
    let dir = temp_store_dir("header");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join(MANIFEST_FILE), "not-a-diagnet-store\n").expect("write manifest");
    let err = ModelStore::open(
        &dir,
        Arc::new(SlotCodec::default()) as Arc<dyn ArtefactCodec>,
    )
    .expect_err("foreign manifest must be rejected");
    assert!(
        matches!(err, StoreError::ManifestHeader(_)),
        "expected ManifestHeader, got {err:?}"
    );
}

#[test]
fn empty_store_recovers_nothing_and_counts_it() {
    let dir = temp_store_dir("empty");
    let store = ModelStore::open(
        &dir,
        Arc::new(SlotCodec::default()) as Arc<dyn ArtefactCodec>,
    )
    .expect("open");
    let before = recovery_count("empty");
    let (recovered, skipped) = store.recover();
    assert!(recovered.is_none());
    assert!(skipped.is_empty());
    assert_eq!(recovery_count("empty"), before + 1);
}
