//! Chaos suite: prove that diagnosis availability survives training
//! failures, stalls, diverged generations and corrupt probes.
//!
//! Run with `cargo test -p diagnet-platform --features chaos`. Every
//! scenario is scripted and seed-driven — reruns are bit-for-bit
//! reproducible.
#![cfg(feature = "chaos")]

use diagnet::backend::{BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet_platform::chaos::{ChaosPipeline, ProbeCorruptor, TrainFault};
use diagnet_platform::trainer::{RetrainWorker, StandardPipeline, TrainPipeline};
use diagnet_platform::{
    AnalysisService, HealthMonitor, HealthState, ModelRegistry, ProbeCollector, ServiceConfig,
    SupervisionConfig, TrainFailure,
};
use diagnet_sim::dataset::{Dataset, DatasetConfig, Sample};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_model() -> DiagNetConfig {
    let mut model = DiagNetConfig::fast();
    model.epochs = 2;
    model.forest.n_trees = 5;
    model
}

fn standard_pipeline(world: &World) -> Arc<dyn TrainPipeline> {
    Arc::new(StandardPipeline {
        kind: BackendKind::DiagNet,
        config: BackendConfig::from_diagnet(fast_model()),
        general_services: world.catalog.general_ids(),
        min_service_samples: 1,
    })
}

fn chaotic_service(
    seed: u64,
    faults: Vec<TrainFault>,
    supervision: SupervisionConfig,
) -> (World, AnalysisService, Arc<ChaosPipeline>, Vec<Sample>) {
    let world = World::new();
    let chaos = Arc::new(ChaosPipeline::scripted(standard_pipeline(&world), faults));
    let config = ServiceConfig {
        model: fast_model(),
        general_services: world.catalog.general_ids(),
        seed,
        supervision,
        ..ServiceConfig::default()
    };
    let service = AnalysisService::with_pipeline(
        config,
        FeatureSchema::full(),
        Arc::clone(&chaos) as Arc<dyn TrainPipeline>,
    );
    let mut cfg = DatasetConfig::small(&world, seed);
    cfg.n_scenarios = 15;
    let samples = Dataset::generate(&world, &cfg).expect("generate").samples;
    (world, service, chaos, samples)
}

fn fast_supervision() -> SupervisionConfig {
    SupervisionConfig {
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..SupervisionConfig::default()
    }
}

/// The acceptance scenario of the resilience layer, end to end: a
/// service with a panicking retrain pipeline and 10 % corrupt probes
/// keeps answering diagnoses from its last-good generation with zero
/// request-path panics, reports `Degraded` with a reason, and returns to
/// `Serving` on a new registry version once training recovers.
#[test]
fn diagnosis_survives_failing_retrains_and_corrupt_probes() {
    let (_, service, chaos, samples) = chaotic_service(9001, vec![], fast_supervision());
    let schema = FeatureSchema::full();

    // Phase 1 — bootstrap: clean probes, one good generation.
    for s in &samples {
        assert!(service.submit(s.clone()).accepted());
    }
    let report = service.retrain_now().expect("clean generation");
    assert_eq!(report.version, 1);
    assert_eq!(service.health(), HealthState::Serving);

    // Phase 2 — chaos: every retrain attempt panics (3 attempts per
    // generation, two generations' worth of faults), while 10 % of the
    // arriving probes are corrupted.
    for _ in 0..6 {
        chaos.push_fault(TrainFault::Panic);
    }
    let corruptor = ProbeCorruptor::new(0.1, 9002);
    let mut corrupted = 0usize;
    for s in &samples {
        let mut s = s.clone();
        let was_corrupted = corruptor.maybe_corrupt(&mut s).is_some();
        corrupted += usize::from(was_corrupted);
        let outcome = service.submit(s);
        assert_eq!(
            outcome.accepted(),
            !was_corrupted,
            "admission must reject exactly the corrupted probes"
        );
    }
    assert!(corrupted > 0, "corruptor produced nothing at 10 %");

    for round in 0..2 {
        let failure = service.retrain_now().expect_err("every attempt panics");
        assert!(
            matches!(failure, TrainFailure::Panicked(_)),
            "round {round}: {failure}"
        );
        // Health says degraded, with the panic surfaced as the reason.
        match service.health() {
            HealthState::Degraded { reason } => {
                assert!(reason.contains("panicked"), "reason: {reason}")
            }
            other => panic!("expected Degraded, got {other}"),
        }
        // Availability: the request path keeps answering from v1,
        // finite and well-formed, without a single panic.
        for s in samples.iter().filter(|s| s.label.is_faulty()).take(25) {
            let d = service
                .diagnose(&s.features, s.service, &schema)
                .expect("last-good model keeps serving");
            assert_eq!(d.model_version, 1);
            assert!(d.ranking.all_finite());
        }
    }
    assert_eq!(service.model_version(), 1, "failed retrains never publish");

    // Phase 3 — recovery: the fault schedule is exhausted; the next
    // generation trains cleanly and the service returns to Serving.
    assert_eq!(chaos.remaining_faults(), 0);
    let report = service.retrain_now().expect("recovered generation");
    assert_eq!(report.version, 2, "recovery publishes a new version");
    assert_eq!(service.health(), HealthState::Serving);
    let probe = samples.iter().find(|s| s.label.is_faulty()).unwrap();
    let d = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert_eq!(d.model_version, 2);
}

/// A stalled generation is bounded by the wall-clock budget and reported
/// as a timeout; the request path never notices.
#[test]
fn stalled_retrain_times_out_within_budget() {
    // Budget comfortably above a clean fast-config generation, far below
    // the injected stall.
    let budget = Duration::from_secs(5);
    let supervision = SupervisionConfig {
        max_attempts: 1,
        budget: Some(budget),
        ..fast_supervision()
    };
    let (_, service, chaos, samples) = chaotic_service(9010, vec![], supervision);
    for s in &samples {
        service.submit(s.clone());
    }
    service.retrain_now().expect("bootstrap generation");

    chaos.push_fault(TrainFault::Stall(Duration::from_secs(60)));
    let t0 = Instant::now();
    let failure = service.retrain_now().expect_err("stall exceeds budget");
    assert!(matches!(failure, TrainFailure::TimedOut(_)), "{failure}");
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "budget must bound the stall: {:?}",
        t0.elapsed()
    );
    assert!(matches!(service.health(), HealthState::Degraded { .. }));
    assert_eq!(
        service.model_version(),
        1,
        "stalled attempt never publishes"
    );
    let schema = FeatureSchema::full();
    let probe = samples.iter().find(|s| s.label.is_faulty()).unwrap();
    assert!(service
        .diagnose(&probe.features, probe.service, &schema)
        .is_ok());
}

/// A generation that trains "successfully" but produces NaN-scoring
/// models is refused by the publish gate: the registry version does not
/// move and the last-good model keeps serving.
#[test]
fn diverged_generation_is_refused_by_the_publish_gate() {
    let (_, service, chaos, samples) = chaotic_service(9020, vec![], fast_supervision());
    for s in &samples {
        service.submit(s.clone());
    }
    service.retrain_now().expect("bootstrap generation");

    chaos.push_fault(TrainFault::NanModels);
    let failure = service
        .retrain_now()
        .expect_err("NaN models must not publish");
    assert!(
        matches!(failure, TrainFailure::Error(_)),
        "publish-gate refusal is deterministic, not retried: {failure}"
    );
    assert!(
        failure.to_string().contains("refusing to publish"),
        "{failure}"
    );
    assert_eq!(service.model_version(), 1, "registry version untouched");
    let schema = FeatureSchema::full();
    let probe = samples.iter().find(|s| s.label.is_faulty()).unwrap();
    let d = service
        .diagnose(&probe.features, probe.service, &schema)
        .unwrap();
    assert!(d.ranking.all_finite(), "serving output stays finite");
}

/// Scripted training errors fail fast (no retry, no backoff) and degrade
/// health while the previous generation keeps serving.
#[test]
fn injected_training_error_fails_fast() {
    let (_, service, chaos, samples) = chaotic_service(9030, vec![], fast_supervision());
    for s in &samples {
        service.submit(s.clone());
    }
    service.retrain_now().expect("bootstrap generation");
    chaos.push_fault(TrainFault::Error);
    let failure = service.retrain_now().expect_err("scripted error");
    assert!(matches!(failure, TrainFailure::Error(_)), "{failure}");
    assert_eq!(chaos.remaining_faults(), 0, "exactly one attempt consumed");
    assert_eq!(service.model_version(), 1);
}

/// Dropping the background worker while a generation is stalled
/// terminates promptly: the supervisor abandons the budgeted attempt and
/// queued commands are skipped.
#[test]
fn worker_drop_during_stalled_retrain_is_prompt() {
    let world = World::new();
    let collector = Arc::new(ProbeCollector::new(100_000, FeatureSchema::full()));
    let mut cfg = DatasetConfig::small(&world, 9040);
    cfg.n_scenarios = 10;
    for s in Dataset::generate(&world, &cfg).expect("generate").samples {
        collector.submit(s);
    }
    let chaos = Arc::new(ChaosPipeline::scripted(
        standard_pipeline(&world),
        vec![TrainFault::Stall(Duration::from_secs(10))],
    ));
    let supervision = SupervisionConfig {
        max_attempts: 1,
        budget: Some(Duration::from_millis(200)),
        ..fast_supervision()
    };
    let worker = RetrainWorker::spawn(
        collector,
        Arc::new(ModelRegistry::new()),
        chaos as Arc<dyn TrainPipeline>,
        supervision,
        Arc::new(HealthMonitor::new()),
    )
    .expect("spawn retrain worker");
    worker.request_retrain(9040);
    // Give the worker a moment to enter the stalled attempt.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    drop(worker);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drop must not wait out the 10s stall: {:?}",
        t0.elapsed()
    );
}
