//! Production [`ArtefactCodec`](crate::store::ArtefactCodec): the
//! versioned JSON envelope from [`diagnet::backend_persist`].
//!
//! Kept in its own module so the store's crash-safety logic stays free of
//! the serialisation stack — environments without serde swap this file
//! for a stub with the same signatures.

use crate::store::ArtefactCodec;
use diagnet::backend::Backend;
use diagnet::backend_persist;
use diagnet_nn::error::NnError;

/// Encodes artefacts as the tagged [`BackendEnvelope`] JSON that
/// [`diagnet export`/`diagnet info`](diagnet::backend_persist) already
/// speak — a store artefact is a plain model file an operator can inspect
/// or copy out.
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonCodec;

impl ArtefactCodec for JsonCodec {
    fn encode(&self, backend: &dyn Backend) -> Result<Vec<u8>, NnError> {
        let (bytes, _checksum) = backend_persist::encode_backend(backend)?;
        Ok(bytes)
    }

    fn decode(&self, bytes: &[u8]) -> Result<Box<dyn Backend>, NnError> {
        backend_persist::load_backend(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet::backend::ForestBackend;
    use diagnet_forest::ForestConfig;
    use diagnet_sim::metrics::FeatureSchema;
    use diagnet_sim::{Dataset, DatasetConfig, World};

    #[test]
    fn json_codec_round_trips_deterministically() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 11);
        cfg.n_scenarios = 10;
        let data = Dataset::generate(&world, &cfg).unwrap();
        let backend =
            ForestBackend::train(&ForestConfig::default(), &data, &FeatureSchema::known(), 11);
        let codec = JsonCodec;
        let bytes = codec.encode(&backend).unwrap();
        let again = codec.encode(&backend).unwrap();
        assert_eq!(bytes, again, "encoding must be deterministic");
        let decoded = codec.decode(&bytes).unwrap();
        assert_eq!(codec.encode(decoded.as_ref()).unwrap(), bytes);
    }

    #[test]
    fn json_codec_rejects_garbage() {
        assert!(JsonCodec.decode(b"{not json").is_err());
    }
}
