//! Probe admission control.
//!
//! The platform diagnoses faults in unreliable infrastructure, and the
//! probes themselves ride that infrastructure: a crashed client library
//! can report NaN features, a truncated UDP payload a short row, a
//! unit-confused exporter values of 1e30. None of that may reach the
//! training buffer (a single NaN poisons a whole generation's normaliser
//! statistics) or the scoring path. [`ProbeGate`] validates every
//! `submit`/`diagnose` input against the collector's [`FeatureSchema`]:
//!
//! * **width** — the feature count must match the schema exactly;
//! * **finiteness** — no NaN/Inf anywhere in the row;
//! * **magnitude** — every value must stay under a configurable absurdity
//!   bound (raw metrics are RTTs, bandwidths, load ratios — nothing a
//!   real probe measures approaches 1e9).
//!
//! Rejected probes are counted per reason in
//! [`PROBES_REJECTED_TOTAL`] and kept in a bounded quarantine ring for
//! operator inspection (the freshest rejects win, like the sample buffer).
//!
//! Admission also owns the [`SubmissionQueue`]: accepted probes are staged
//! in a bounded queue and batch-drained into the collector, so a
//! saturated collector sheds load explicitly ([`RejectReason::QueueFull`],
//! counted in [`PROBES_SHED_TOTAL`]) instead of blocking every client on
//! one mutex.

use diagnet_obs::Counter;
use diagnet_sim::dataset::Sample;
use diagnet_sim::metrics::FeatureSchema;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;

/// Name of the per-reason counter of rejected probes (label `reason`).
pub const PROBES_REJECTED_TOTAL: &str = "diagnet_probes_rejected_total";
/// Name of the counter of accepted-but-shed probes (submission queue full).
pub const PROBES_SHED_TOTAL: &str = "diagnet_probes_shed_total";

/// Why a probe was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Feature count differs from the schema's.
    WidthMismatch,
    /// At least one feature is NaN or infinite.
    NonFinite,
    /// At least one feature exceeds the configured absurdity bound.
    Magnitude,
    /// The bounded submission queue was full (load shed, not a validity
    /// failure).
    QueueFull,
}

impl RejectReason {
    /// Stable metric-label token for this reason.
    pub fn token(self) -> &'static str {
        match self {
            RejectReason::WidthMismatch => "width_mismatch",
            RejectReason::NonFinite => "non_finite",
            RejectReason::Magnitude => "magnitude",
            RejectReason::QueueFull => "queue_full",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Admission-control tuning.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Absolute bound above which a feature value is absurd. Raw metrics
    /// are milliseconds, Mbit/s, ratios and connection counts; the default
    /// of 1e9 is orders of magnitude above all of them.
    pub max_magnitude: f32,
    /// Capacity of the quarantine ring of rejected probes.
    pub quarantine_capacity: usize,
    /// Capacity of the bounded submission queue; submissions beyond it are
    /// shed.
    pub max_pending: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_magnitude: 1e9,
            quarantine_capacity: 256,
            max_pending: 8192,
        }
    }
}

/// A rejected probe held for inspection.
#[derive(Debug, Clone)]
pub struct QuarantinedProbe {
    /// The offending sample, as submitted.
    pub sample: Sample,
    /// Why it was refused.
    pub reason: RejectReason,
}

/// Validates probes against a schema, quarantining and counting rejects.
#[derive(Debug)]
pub struct ProbeGate {
    schema: FeatureSchema,
    config: AdmissionConfig,
    quarantine: Mutex<VecDeque<QuarantinedProbe>>,
    // Per-reason counters, resolved once (submit is the hot path).
    rejected_width: Counter,
    rejected_non_finite: Counter,
    rejected_magnitude: Counter,
}

impl ProbeGate {
    /// A gate enforcing `config` against `schema`.
    pub fn new(schema: FeatureSchema, config: AdmissionConfig) -> Self {
        let obs = diagnet_obs::global();
        let help = "probes rejected by admission control, by reason";
        ProbeGate {
            rejected_width: obs.counter(
                PROBES_REJECTED_TOTAL,
                &[("reason", RejectReason::WidthMismatch.token())],
                help,
            ),
            rejected_non_finite: obs.counter(
                PROBES_REJECTED_TOTAL,
                &[("reason", RejectReason::NonFinite.token())],
                help,
            ),
            rejected_magnitude: obs.counter(
                PROBES_REJECTED_TOTAL,
                &[("reason", RejectReason::Magnitude.token())],
                help,
            ),
            quarantine: Mutex::new(VecDeque::with_capacity(
                config.quarantine_capacity.min(1024),
            )),
            schema,
            config,
        }
    }

    /// Validate a feature row without taking ownership — the `diagnose`
    /// entry point (nothing to quarantine: the caller gets a typed error).
    pub fn check(&self, features: &[f32]) -> Result<(), RejectReason> {
        if features.len() != self.schema.n_features() {
            return Err(RejectReason::WidthMismatch);
        }
        for &v in features {
            if !v.is_finite() {
                return Err(RejectReason::NonFinite);
            }
            if v.abs() > self.config.max_magnitude {
                return Err(RejectReason::Magnitude);
            }
        }
        Ok(())
    }

    /// Validate a submission. `Ok` hands the sample back for ingestion;
    /// `Err` quarantines it and bumps the per-reason counter.
    pub fn admit(&self, sample: Sample) -> Result<Sample, RejectReason> {
        match self.check(&sample.features) {
            Ok(()) => Ok(sample),
            Err(reason) => {
                match reason {
                    RejectReason::WidthMismatch => self.rejected_width.inc(),
                    RejectReason::NonFinite => self.rejected_non_finite.inc(),
                    RejectReason::Magnitude => self.rejected_magnitude.inc(),
                    // `check` never returns QueueFull (shedding happens in
                    // the submission queue, which has its own counter);
                    // if that ever changes, the quarantine below still
                    // records the probe — no reason to abort serving.
                    RejectReason::QueueFull => {}
                }
                let mut ring = self.quarantine.lock();
                if ring.len() == self.config.quarantine_capacity {
                    ring.pop_front();
                }
                if self.config.quarantine_capacity > 0 {
                    ring.push_back(QuarantinedProbe { sample, reason });
                }
                Err(reason)
            }
        }
    }

    /// Snapshot of the quarantine ring, oldest first.
    pub fn quarantined(&self) -> Vec<QuarantinedProbe> {
        self.quarantine.lock().iter().cloned().collect()
    }

    /// Number of quarantined probes currently held.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }

    /// The admission configuration in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }
}

/// A bounded staging queue between admission and the collector.
#[derive(Debug)]
pub struct SubmissionQueue {
    pending: Mutex<VecDeque<Sample>>,
    capacity: usize,
    shed: Counter,
}

impl SubmissionQueue {
    /// A queue holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        SubmissionQueue {
            pending: Mutex::new(VecDeque::new()),
            capacity,
            shed: diagnet_obs::global().counter(
                PROBES_SHED_TOTAL,
                &[],
                "admitted probes shed because the submission queue was full",
            ),
        }
    }

    /// Stage a sample. `Err(QueueFull)` sheds it (counted) when the queue
    /// is at capacity — explicit back-pressure instead of unbounded growth
    /// while the collector is saturated or intake is paused.
    pub fn push(&self, sample: Sample) -> Result<(), RejectReason> {
        let mut q = self.pending.lock();
        if q.len() >= self.capacity {
            self.shed.inc();
            return Err(RejectReason::QueueFull);
        }
        q.push_back(sample);
        Ok(())
    }

    /// Run `f` over the pending queue (used by the drain path to move
    /// samples into the collector under one lock acquisition).
    pub fn with_pending<R>(&self, f: impl FnOnce(&mut VecDeque<Sample>) -> R) -> R {
        f(&mut self.pending.lock())
    }

    /// Number of staged samples.
    pub fn len(&self) -> usize {
        self.pending.lock().len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.pending.lock().is_empty()
    }

    /// Maximum number of staged samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;

    fn one_sample() -> Sample {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 11);
        cfg.n_scenarios = 1;
        Dataset::generate(&world, &cfg)
            .expect("generate")
            .samples
            .remove(0)
    }

    #[test]
    fn clean_probe_is_admitted() {
        let gate = ProbeGate::new(FeatureSchema::full(), AdmissionConfig::default());
        let s = one_sample();
        assert!(gate.check(&s.features).is_ok());
        assert!(gate.admit(s).is_ok());
        assert_eq!(gate.quarantine_len(), 0);
    }

    #[test]
    fn each_defect_maps_to_its_reason() {
        let gate = ProbeGate::new(FeatureSchema::full(), AdmissionConfig::default());
        let clean = one_sample();

        let mut short = clean.clone();
        short.features.truncate(10);
        assert_eq!(gate.admit(short), Err(RejectReason::WidthMismatch));

        let mut nan = clean.clone();
        nan.features[3] = f32::NAN;
        assert_eq!(gate.admit(nan), Err(RejectReason::NonFinite));

        let mut inf = clean.clone();
        inf.features[7] = f32::INFINITY;
        assert_eq!(gate.admit(inf), Err(RejectReason::NonFinite));

        let mut huge = clean.clone();
        huge.features[0] = -1e12;
        assert_eq!(gate.admit(huge), Err(RejectReason::Magnitude));

        let reasons: Vec<RejectReason> = gate.quarantined().iter().map(|q| q.reason).collect();
        assert_eq!(
            reasons,
            vec![
                RejectReason::WidthMismatch,
                RejectReason::NonFinite,
                RejectReason::NonFinite,
                RejectReason::Magnitude,
            ]
        );
    }

    #[test]
    fn quarantine_ring_is_bounded() {
        let config = AdmissionConfig {
            quarantine_capacity: 3,
            ..AdmissionConfig::default()
        };
        let gate = ProbeGate::new(FeatureSchema::full(), config);
        let clean = one_sample();
        for i in 0..10 {
            let mut bad = clean.clone();
            bad.features[0] = f32::NAN;
            bad.plt_s = i as f32; // marker to identify survivors
            let _ = gate.admit(bad);
        }
        let held = gate.quarantined();
        assert_eq!(held.len(), 3);
        let markers: Vec<f32> = held.iter().map(|q| q.sample.plt_s).collect();
        assert_eq!(markers, vec![7.0, 8.0, 9.0], "freshest rejects win");
    }

    #[test]
    #[cfg(feature = "obs")]
    fn rejections_are_counted_per_reason() {
        let before = diagnet_obs::global()
            .snapshot()
            .counter(
                PROBES_REJECTED_TOTAL,
                &[("reason", RejectReason::NonFinite.token())],
            )
            .unwrap_or(0);
        let gate = ProbeGate::new(FeatureSchema::full(), AdmissionConfig::default());
        let mut bad = one_sample();
        bad.features[0] = f32::NAN;
        let _ = gate.admit(bad);
        let after = diagnet_obs::global()
            .snapshot()
            .counter(
                PROBES_REJECTED_TOTAL,
                &[("reason", RejectReason::NonFinite.token())],
            )
            .unwrap_or(0);
        assert!(after > before);
    }

    #[test]
    fn queue_sheds_at_capacity() {
        let queue = SubmissionQueue::new(2);
        let s = one_sample();
        assert!(queue.push(s.clone()).is_ok());
        assert!(queue.push(s.clone()).is_ok());
        assert_eq!(queue.push(s), Err(RejectReason::QueueFull));
        assert_eq!(queue.len(), 2);
        queue.with_pending(|q| q.clear());
        assert!(queue.is_empty());
    }
}
