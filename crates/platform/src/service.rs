//! The [`AnalysisService`] facade — what a client-side probe library
//! would talk to.
//!
//! Clients `submit` labelled observations as they browse; when a user
//! reports degraded QoE the client calls `diagnose` with its current
//! feature vector and receives a ranked list of probable root causes
//! (paper §III-A). Retraining can run synchronously or be delegated to
//! the background worker; `auto_retrain_every` makes the service kick a
//! background generation each time that many new samples arrive.

use crate::collector::ProbeCollector;
use crate::registry::ModelRegistry;
use crate::trainer::{retrain_backend, RetrainWorker, TrainReport};
use diagnet::backend::{BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet::ranking::CauseRanking;
use diagnet_nn::error::NnError;
use diagnet_obs::{Counter, Histogram};
use diagnet_sim::dataset::Sample;
use diagnet_sim::metrics::{FeatureId, FeatureSchema};
use diagnet_sim::service::ServiceId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the counter of probe submissions (label `outcome`:
/// `accepted`/`rejected`).
pub const SUBMISSIONS_TOTAL: &str = "diagnet_submissions_total";
/// Name of the counter of diagnosis requests (label `outcome`:
/// `ok`/`no_model`).
pub const DIAGNOSES_TOTAL: &str = "diagnet_diagnoses_total";
/// Name of the diagnosis-latency histogram (successful diagnoses only).
pub const DIAGNOSE_LATENCY_SECONDS: &str = "diagnet_diagnose_latency_seconds";

/// Analysis-service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Which backend every generation trains ([`BackendKind::DiagNet`] for
    /// the paper's pipeline; baselines serve through the same registry).
    pub backend: BackendKind,
    /// Model hyper-parameters for every generation.
    pub model: DiagNetConfig,
    /// Sample-buffer capacity (sliding window).
    pub buffer_capacity: usize,
    /// Services the general model trains on.
    pub general_services: Vec<ServiceId>,
    /// Minimum samples before a service gets a specialised model.
    pub min_service_samples: usize,
    /// When `Some(n)`, a background retrain fires every `n` submissions.
    pub auto_retrain_every: Option<u64>,
    /// Master seed; each generation derives its own.
    pub seed: u64,
}

/// A ranked diagnosis returned to a client.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Ranked scores over the schema's candidate causes.
    pub ranking: CauseRanking,
    /// The most probable cause, resolved to a feature id.
    pub top_cause: FeatureId,
    /// Registry version of the model that produced this diagnosis.
    pub model_version: u64,
}

/// The analysis service: collector + registry + (optional) background
/// trainer behind one object.
pub struct AnalysisService {
    config: ServiceConfig,
    collector: Arc<ProbeCollector>,
    registry: Arc<ModelRegistry>,
    worker: Option<RetrainWorker>,
    submissions: AtomicU64,
    generation_seed: AtomicU64,
    // Metric handles, resolved once at construction (submit/diagnose are
    // the platform's hot path).
    submissions_accepted: Counter,
    submissions_rejected: Counter,
    diagnoses_ok: Counter,
    diagnoses_unready: Counter,
    diagnose_latency: Histogram,
}

impl AnalysisService {
    /// Create a service. With `auto_retrain_every` set, a background
    /// worker thread is spawned.
    pub fn new(config: ServiceConfig, schema: FeatureSchema) -> Self {
        let collector = Arc::new(ProbeCollector::new(config.buffer_capacity, schema));
        let registry = Arc::new(ModelRegistry::new());
        let worker = config.auto_retrain_every.map(|_| {
            RetrainWorker::spawn(
                Arc::clone(&collector),
                Arc::clone(&registry),
                config.backend,
                BackendConfig::from_diagnet(config.model.clone()),
                config.general_services.clone(),
                config.min_service_samples,
            )
        });
        let obs = diagnet_obs::global();
        AnalysisService {
            generation_seed: AtomicU64::new(config.seed),
            config,
            collector,
            registry,
            worker,
            submissions: AtomicU64::new(0),
            submissions_accepted: obs.counter(
                SUBMISSIONS_TOTAL,
                &[("outcome", "accepted")],
                "probe submissions by outcome",
            ),
            submissions_rejected: obs.counter(
                SUBMISSIONS_TOTAL,
                &[("outcome", "rejected")],
                "probe submissions by outcome",
            ),
            diagnoses_ok: obs.counter(
                DIAGNOSES_TOTAL,
                &[("outcome", "ok")],
                "diagnosis requests by outcome",
            ),
            diagnoses_unready: obs.counter(
                DIAGNOSES_TOTAL,
                &[("outcome", "no_model")],
                "diagnosis requests by outcome",
            ),
            diagnose_latency: obs.histogram(
                DIAGNOSE_LATENCY_SECONDS,
                &[],
                "wall-clock latency of successful diagnoses",
            ),
        }
    }

    /// Ingest one labelled observation. May trigger a background retrain.
    /// Returns `false` when the sample was rejected (schema mismatch).
    pub fn submit(&self, sample: Sample) -> bool {
        if !self.collector.submit(sample) {
            self.submissions_rejected.inc();
            return false;
        }
        self.submissions_accepted.inc();
        let n = self.submissions.fetch_add(1, Ordering::Relaxed) + 1;
        if let (Some(every), Some(worker)) = (self.config.auto_retrain_every, &self.worker) {
            if n.is_multiple_of(every) {
                worker.request_retrain(self.next_seed());
            }
        }
        true
    }

    /// Diagnose a failing client: rank the candidate causes of `schema`
    /// for `features`, using the service's specialised model when one
    /// exists.
    ///
    /// Returns an error until a first model generation has been published.
    pub fn diagnose(
        &self,
        features: &[f32],
        service: ServiceId,
        schema: &FeatureSchema,
    ) -> Result<Diagnosis, NnError> {
        let Some(model) = self.registry.model_for(service) else {
            self.diagnoses_unready.inc();
            return Err(NnError::InvalidConfig("no model published yet".into()));
        };
        let timer = self.diagnose_latency.start_timer();
        let ranking = model.rank_causes(features, schema);
        timer.stop();
        self.diagnoses_ok.inc();
        let top_cause = schema.feature(ranking.best());
        Ok(Diagnosis {
            ranking,
            top_cause,
            model_version: self.registry.version(),
        })
    }

    /// Run one synchronous training generation of the configured backend.
    pub fn retrain_now(&self) -> Result<TrainReport, NnError> {
        retrain_backend(
            &self.collector,
            &self.registry,
            self.config.backend,
            &BackendConfig::from_diagnet(self.config.model.clone()),
            &self.config.general_services,
            self.config.min_service_samples,
            self.next_seed(),
        )
    }

    /// Block until the next background training report (only meaningful
    /// with `auto_retrain_every`). Prefer
    /// [`AnalysisService::wait_background_report_timeout`] when a retrain
    /// may not be pending — this call blocks until one completes.
    pub fn wait_background_report(&self) -> Option<Result<TrainReport, NnError>> {
        self.worker.as_ref().map(RetrainWorker::wait_report)
    }

    /// Like [`AnalysisService::wait_background_report`], but gives up after
    /// `timeout`. Outer `None`: no background worker configured; inner
    /// `None`: no report arrived in time.
    pub fn wait_background_report_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Option<Result<TrainReport, NnError>>> {
        self.worker.as_ref().map(|w| w.wait_report_timeout(timeout))
    }

    /// Number of buffered samples.
    pub fn buffered_samples(&self) -> usize {
        self.collector.len()
    }

    /// True once a model is available for diagnosis.
    pub fn is_ready(&self) -> bool {
        self.registry.is_ready()
    }

    /// Current model-registry version.
    pub fn model_version(&self) -> u64 {
        self.registry.version()
    }

    /// Access the registry (e.g. to export a model to clients).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// A point-in-time snapshot of the process-wide metrics registry —
    /// the operator hook for dumping live serving/training metrics (see
    /// `OBSERVABILITY.md`). Render it with
    /// [`render_text`](diagnet_obs::Snapshot::render_text) or
    /// [`render_prometheus`](diagnet_obs::Snapshot::render_prometheus).
    /// Empty when the `obs` feature is compiled out.
    pub fn metrics_snapshot(&self) -> diagnet_obs::Snapshot {
        diagnet_obs::global().snapshot()
    }

    fn next_seed(&self) -> u64 {
        self.generation_seed.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;

    fn fast_service(auto: Option<u64>) -> (World, AnalysisService, Vec<Sample>) {
        let world = World::new();
        let mut model = DiagNetConfig::fast();
        model.epochs = 2;
        model.forest.n_trees = 5;
        let config = ServiceConfig {
            backend: BackendKind::DiagNet,
            model,
            buffer_capacity: 100_000,
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
            auto_retrain_every: auto,
            seed: 90,
        };
        let service = AnalysisService::new(config, FeatureSchema::full());
        let mut ds_cfg = DatasetConfig::small(&world, 90);
        ds_cfg.n_scenarios = 15;
        let samples = Dataset::generate(&world, &ds_cfg).samples;
        (world, service, samples)
    }

    #[test]
    fn diagnose_before_training_errors() {
        let (_, service, samples) = fast_service(None);
        let schema = FeatureSchema::full();
        assert!(service
            .diagnose(&samples[0].features, samples[0].service, &schema)
            .is_err());
    }

    #[test]
    fn submit_train_diagnose_cycle() {
        let (_, service, samples) = fast_service(None);
        for s in &samples {
            assert!(service.submit(s.clone()));
        }
        assert_eq!(service.buffered_samples(), samples.len());
        let report = service.retrain_now().unwrap();
        assert_eq!(report.version, 1);
        assert!(service.is_ready());
        let schema = FeatureSchema::full();
        let faulty = samples.iter().find(|s| s.label.is_faulty()).unwrap();
        let diagnosis = service
            .diagnose(&faulty.features, faulty.service, &schema)
            .unwrap();
        assert_eq!(diagnosis.model_version, 1);
        assert_eq!(diagnosis.ranking.scores.len(), 55);
        assert_eq!(
            diagnosis.top_cause,
            schema.feature(diagnosis.ranking.best())
        );
    }

    #[test]
    fn auto_retrain_fires() {
        let (_, service, samples) = fast_service(Some(samples_len_hint()));
        fn samples_len_hint() -> u64 {
            1200 // below the 1500 samples the fixture produces
        }
        for s in &samples {
            service.submit(s.clone());
        }
        let report = service.wait_background_report().unwrap().unwrap();
        assert_eq!(report.version, 1);
        assert!(service.is_ready());
    }

    #[test]
    fn timeout_wait_does_not_hang_without_pending_retrain() {
        let (_, service, _) = fast_service(Some(1_000_000));
        // Worker exists but no retrain was requested: the timed wait
        // returns rather than blocking forever.
        let result = service
            .wait_background_report_timeout(std::time::Duration::from_millis(50))
            .expect("worker configured");
        assert!(result.is_none());
        // And without a worker, the outer layer is None.
        let (_, no_worker, _) = fast_service(None);
        assert!(no_worker
            .wait_background_report_timeout(std::time::Duration::from_millis(10))
            .is_none());
    }

    /// Delta-based asserts (the global metrics registry is shared across
    /// test threads); exercises the end-to-end hook the analysis-service
    /// example dumps.
    #[test]
    #[cfg(feature = "obs")]
    fn serving_metrics_flow_into_the_snapshot() {
        let accepted: &[(&str, &str)] = &[("outcome", "accepted")];
        let ok: &[(&str, &str)] = &[("outcome", "ok")];
        let before = diagnet_obs::global().snapshot();
        let sub0 = before.counter(SUBMISSIONS_TOTAL, accepted).unwrap_or(0);
        let diag0 = before.counter(DIAGNOSES_TOTAL, ok).unwrap_or(0);

        let (_, service, samples) = fast_service(None);
        let schema = FeatureSchema::full();
        assert!(service
            .diagnose(&samples[0].features, samples[0].service, &schema)
            .is_err());
        for s in &samples {
            service.submit(s.clone());
        }
        service.retrain_now().unwrap();
        service
            .diagnose(&samples[0].features, samples[0].service, &schema)
            .unwrap();

        let snap = service.metrics_snapshot();
        assert!(
            snap.counter(SUBMISSIONS_TOTAL, accepted).unwrap_or(0) >= sub0 + samples.len() as u64
        );
        assert!(snap.counter(DIAGNOSES_TOTAL, ok).unwrap_or(0) >= diag0 + 1);
        assert!(
            snap.counter(DIAGNOSES_TOTAL, &[("outcome", "no_model")])
                .unwrap_or(0)
                >= 1
        );
        let lat = snap.histogram(DIAGNOSE_LATENCY_SECONDS, &[]).unwrap();
        assert!(lat.count >= 1);
        // The rendered dump carries the serving series an operator expects.
        let prom = snap.render_prometheus();
        assert!(prom.contains("diagnet_submissions_total{outcome=\"accepted\"}"));
        assert!(prom.contains("diagnet_retrain_duration_seconds_bucket"));
    }

    #[test]
    fn diagnosis_uses_specialised_model_when_available() {
        let (world, service, samples) = fast_service(None);
        for s in &samples {
            service.submit(s.clone());
        }
        service.retrain_now().unwrap();
        // All services got specialised models (min_service_samples = 1).
        assert_eq!(
            service.registry().specialized_services().len(),
            world.catalog.len()
        );
    }
}
