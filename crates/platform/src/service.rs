//! The [`AnalysisService`] facade — what a client-side probe library
//! would talk to.
//!
//! Clients `submit` labelled observations as they browse; when a user
//! reports degraded QoE the client calls `diagnose` with its current
//! feature vector and receives a ranked list of probable root causes
//! (paper §III-A). Retraining can run synchronously or be delegated to
//! the background worker; `auto_retrain_every` makes the service kick a
//! background generation each time that many new samples arrive.
//!
//! Resilience (see `DESIGN.md` §10): every input crosses the
//! [`ProbeGate`] (width/NaN/magnitude checks, quarantine, per-reason
//! rejection counters) and accepted probes stage through a bounded
//! [`SubmissionQueue`] with explicit load shedding. Every training
//! generation runs under the supervisor (crash isolation, budget, retry
//! with backoff); on persistent failure the registry keeps serving its
//! last-good version and [`AnalysisService::health`] reports `Degraded`.

use crate::admission::{
    AdmissionConfig, ProbeGate, QuarantinedProbe, RejectReason, SubmissionQueue,
};
use crate::collector::ProbeCollector;
use crate::health::{HealthMonitor, HealthState};
use crate::registry::{ModelRegistry, RouteTarget, Routed};
use crate::rollout::{
    probe_key, GenerationLifecycle, RolloutConfig, RolloutController, RolloutPhase,
};
use crate::store::{GenerationRecord, ModelStore};
use crate::supervisor::{supervised_retrain_with, SupervisionConfig, TrainFailure};
use crate::trainer::{
    GenerationPublisher, RetrainWorker, StandardPipeline, TrainPipeline, TrainReport,
};
use diagnet::backend::{Backend, BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet::ranking::CauseRanking;
use diagnet_nn::error::NnError;
use diagnet_obs::{Counter, Histogram};
use diagnet_sim::dataset::Sample;
use diagnet_sim::metrics::{FeatureId, FeatureSchema};
use diagnet_sim::service::ServiceId;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Name of the counter of probe submissions (label `outcome`:
/// `accepted`/`rejected`/`shed`).
pub const SUBMISSIONS_TOTAL: &str = "diagnet_submissions_total";
/// Name of the counter of diagnosis requests (label `outcome`:
/// `ok`/`no_model`/`rejected`/`non_finite`).
pub const DIAGNOSES_TOTAL: &str = "diagnet_diagnoses_total";
/// Name of the diagnosis-latency histogram (successful diagnoses only).
pub const DIAGNOSE_LATENCY_SECONDS: &str = "diagnet_diagnose_latency_seconds";

/// Analysis-service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Which backend every generation trains ([`BackendKind::DiagNet`] for
    /// the paper's pipeline; baselines serve through the same registry).
    pub backend: BackendKind,
    /// Model hyper-parameters for every generation.
    pub model: DiagNetConfig,
    /// Sample-buffer capacity (sliding window).
    pub buffer_capacity: usize,
    /// Services the general model trains on.
    pub general_services: Vec<ServiceId>,
    /// Minimum samples before a service gets a specialised model.
    pub min_service_samples: usize,
    /// When `Some(n)`, a background retrain fires every `n` submissions.
    pub auto_retrain_every: Option<u64>,
    /// Master seed; each generation derives its own.
    pub seed: u64,
    /// Probe admission-control tuning.
    pub admission: AdmissionConfig,
    /// Training-supervision tuning (retries, backoff, budget).
    pub supervision: SupervisionConfig,
    /// When `Some`, retrained generations are staged as canaries and
    /// promoted/rolled back on their live behaviour instead of swapping
    /// the registry directly (see [`crate::rollout`]).
    pub rollout: Option<RolloutConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            backend: BackendKind::DiagNet,
            model: DiagNetConfig::fast(),
            buffer_capacity: 100_000,
            general_services: Vec::new(),
            min_service_samples: 1,
            auto_retrain_every: None,
            seed: 42,
            admission: AdmissionConfig::default(),
            supervision: SupervisionConfig::default(),
            rollout: None,
        }
    }
}

/// What happened to a submitted probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Validated and staged for ingestion.
    Accepted,
    /// Refused by admission control (quarantined, counted).
    Rejected(RejectReason),
    /// Valid but shed: the bounded submission queue was full.
    Shed,
}

impl SubmitOutcome {
    /// True when the probe was accepted.
    pub fn accepted(self) -> bool {
        matches!(self, SubmitOutcome::Accepted)
    }
}

/// Why a diagnosis request failed. The request path never panics and
/// never returns garbage: invalid inputs and non-finite model output both
/// map to typed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnoseError {
    /// No model generation has been published yet.
    NoModel,
    /// The feature vector failed admission (width/NaN/magnitude).
    InvalidProbe(RejectReason),
    /// The serving model produced non-finite scores; the response was
    /// withheld rather than returned.
    NonFiniteScores {
        /// Registry version of the offending model.
        model_version: u64,
    },
}

impl fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnoseError::NoModel => f.write_str("no model published yet"),
            DiagnoseError::InvalidProbe(reason) => {
                write!(f, "probe rejected by admission control: {reason}")
            }
            DiagnoseError::NonFiniteScores { model_version } => write!(
                f,
                "model version {model_version} produced non-finite scores"
            ),
        }
    }
}

impl std::error::Error for DiagnoseError {}

/// A ranked diagnosis returned to a client.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Ranked scores over the schema's candidate causes.
    pub ranking: CauseRanking,
    /// The most probable cause, resolved to a feature id.
    pub top_cause: FeatureId,
    /// Registry version of the model that produced this diagnosis.
    pub model_version: u64,
}

/// The analysis service: admission gate + collector + registry +
/// supervised trainer behind one object.
pub struct AnalysisService {
    config: ServiceConfig,
    gate: ProbeGate,
    queue: SubmissionQueue,
    intake_paused: AtomicBool,
    collector: Arc<ProbeCollector>,
    registry: Arc<ModelRegistry>,
    pipeline: Arc<dyn TrainPipeline>,
    health: Arc<HealthMonitor>,
    lifecycle: Arc<GenerationLifecycle>,
    recovered: Option<GenerationRecord>,
    worker: Option<RetrainWorker>,
    submissions: AtomicU64,
    generation_seed: AtomicU64,
    // Metric handles, resolved once at construction (submit/diagnose are
    // the platform's hot path).
    submissions_accepted: Counter,
    submissions_rejected: Counter,
    submissions_shed: Counter,
    diagnoses_ok: Counter,
    diagnoses_unready: Counter,
    diagnoses_rejected: Counter,
    diagnoses_non_finite: Counter,
    diagnose_latency: Histogram,
}

impl AnalysisService {
    /// Create a service training [`StandardPipeline`] generations. With
    /// `auto_retrain_every` set, a background worker thread is spawned.
    pub fn new(config: ServiceConfig, schema: FeatureSchema) -> Self {
        let pipeline: Arc<dyn TrainPipeline> = Arc::new(StandardPipeline {
            kind: config.backend,
            config: BackendConfig::from_diagnet(config.model.clone()),
            general_services: config.general_services.clone(),
            min_service_samples: config.min_service_samples,
        });
        Self::with_pipeline(config, schema, pipeline)
    }

    /// Create a service around an explicit [`TrainPipeline`] — the hook
    /// the chaos harness uses to inject training faults, and the seam for
    /// custom training strategies.
    pub fn with_pipeline(
        config: ServiceConfig,
        schema: FeatureSchema,
        pipeline: Arc<dyn TrainPipeline>,
    ) -> Self {
        Self::with_pipeline_and_store(config, schema, pipeline, None)
    }

    /// Create a service persisting every published generation to `store`
    /// (`diagnet serve --state-dir`), recovering the newest recoverable
    /// *active* generation on startup.
    pub fn with_store(
        config: ServiceConfig,
        schema: FeatureSchema,
        store: Arc<ModelStore>,
    ) -> Self {
        let pipeline: Arc<dyn TrainPipeline> = Arc::new(StandardPipeline {
            kind: config.backend,
            config: BackendConfig::from_diagnet(config.model.clone()),
            general_services: config.general_services.clone(),
            min_service_samples: config.min_service_samples,
        });
        Self::with_pipeline_and_store(config, schema, pipeline, Some(store))
    }

    /// The fully general constructor: explicit pipeline plus optional
    /// durable store. With [`ServiceConfig::rollout`] set, a rollout
    /// controller is attached and retrained generations are canaried;
    /// with a store attached, startup recovers the newest *active*
    /// generation whose artefact verifies (corrupt ones are skipped and
    /// counted) so a SIGKILL'd server resumes serving without retraining.
    pub fn with_pipeline_and_store(
        config: ServiceConfig,
        schema: FeatureSchema,
        pipeline: Arc<dyn TrainPipeline>,
        store: Option<Arc<ModelStore>>,
    ) -> Self {
        let collector = Arc::new(ProbeCollector::new(config.buffer_capacity, schema.clone()));
        let registry = Arc::new(ModelRegistry::new());
        let health = Arc::new(HealthMonitor::new());
        let rollout = config.rollout.as_ref().map(|rollout_config| {
            Arc::new(RolloutController::new(
                rollout_config.clone(),
                Arc::clone(&registry),
                store.clone(),
                Arc::clone(&health),
            ))
        });
        let lifecycle = Arc::new(GenerationLifecycle::new(
            Arc::clone(&registry),
            store.clone(),
            rollout,
        ));
        // Startup recovery: restore the last-good generation before any
        // traffic or training can run, so a crashed server resumes
        // serving bit-identical diagnoses immediately.
        let mut recovered = None;
        if let Some(store) = store.as_ref() {
            if let (Some((record, backend)), _skipped) = store.recover() {
                registry.publish_backend(Arc::from(backend), BTreeMap::new());
                health.record_success();
                recovered = Some(record);
            }
        }
        let publisher: Arc<dyn GenerationPublisher> = Arc::clone(&lifecycle) as _;
        let worker = config.auto_retrain_every.and_then(|_| {
            match RetrainWorker::spawn_with(
                Arc::clone(&collector),
                publisher,
                Arc::clone(&pipeline),
                config.supervision.clone(),
                Arc::clone(&health),
            ) {
                Ok(worker) => Some(worker),
                // No worker thread: the service still serves and trains
                // synchronously via `retrain_now`; health records why the
                // background loop is missing.
                Err(e) => {
                    health.record_failure(
                        format!("retrain worker unavailable: {e}"),
                        registry.is_ready(),
                    );
                    None
                }
            }
        });
        let obs = diagnet_obs::global();
        let sub_help = "probe submissions by outcome";
        let diag_help = "diagnosis requests by outcome";
        AnalysisService {
            generation_seed: AtomicU64::new(config.seed),
            gate: ProbeGate::new(schema, config.admission.clone()),
            queue: SubmissionQueue::new(config.admission.max_pending),
            intake_paused: AtomicBool::new(false),
            config,
            collector,
            registry,
            pipeline,
            health,
            lifecycle,
            recovered,
            worker,
            submissions: AtomicU64::new(0),
            submissions_accepted: obs.counter(
                SUBMISSIONS_TOTAL,
                &[("outcome", "accepted")],
                sub_help,
            ),
            submissions_rejected: obs.counter(
                SUBMISSIONS_TOTAL,
                &[("outcome", "rejected")],
                sub_help,
            ),
            submissions_shed: obs.counter(SUBMISSIONS_TOTAL, &[("outcome", "shed")], sub_help),
            diagnoses_ok: obs.counter(DIAGNOSES_TOTAL, &[("outcome", "ok")], diag_help),
            diagnoses_unready: obs.counter(DIAGNOSES_TOTAL, &[("outcome", "no_model")], diag_help),
            diagnoses_rejected: obs.counter(DIAGNOSES_TOTAL, &[("outcome", "rejected")], diag_help),
            diagnoses_non_finite: obs.counter(
                DIAGNOSES_TOTAL,
                &[("outcome", "non_finite")],
                diag_help,
            ),
            diagnose_latency: obs.histogram(
                DIAGNOSE_LATENCY_SECONDS,
                &[],
                "wall-clock latency of successful diagnoses",
            ),
        }
    }

    /// Ingest one labelled observation. The probe crosses admission
    /// control (invalid probes are quarantined and counted per reason),
    /// stages through the bounded submission queue (full queue = explicit
    /// shed), and may trigger a background retrain.
    pub fn submit(&self, sample: Sample) -> SubmitOutcome {
        let sample = match self.gate.admit(sample) {
            Ok(sample) => sample,
            Err(reason) => {
                self.submissions_rejected.inc();
                return SubmitOutcome::Rejected(reason);
            }
        };
        if self.queue.push(sample).is_err() {
            self.submissions_shed.inc();
            return SubmitOutcome::Shed;
        }
        self.drain_pending(false);
        self.submissions_accepted.inc();
        let n = self.submissions.fetch_add(1, Ordering::Relaxed) + 1;
        if let (Some(every), Some(worker)) = (self.config.auto_retrain_every, &self.worker) {
            // After an auto-rollback the cadence backs off exponentially:
            // a persistently bad pipeline must not flap the fleet.
            let every = self
                .lifecycle
                .rollout()
                .map_or(every, |rollout| rollout.retrain_every(every));
            if n.is_multiple_of(every) {
                self.drain_pending(true);
                worker.request_retrain(self.next_seed());
            }
        }
        SubmitOutcome::Accepted
    }

    /// Move staged submissions into the collector. Opportunistic by
    /// default (skips when the collector lock is contended); `blocking`
    /// forces a full flush — used right before training snapshots.
    fn drain_pending(&self, blocking: bool) {
        if self.intake_paused.load(Ordering::Relaxed) {
            return;
        }
        if self.queue.is_empty() {
            return;
        }
        self.queue.with_pending(|pending| {
            if blocking {
                self.collector.ingest(pending);
            } else {
                self.collector.try_ingest(pending);
            }
        });
    }

    /// Diagnose a failing client: rank the candidate causes of `schema`
    /// for `features`, using the service's specialised model when one
    /// exists.
    ///
    /// The feature vector is validated first ([`DiagnoseError::InvalidProbe`])
    /// and the model's output last ([`DiagnoseError::NonFiniteScores`]):
    /// this path returns a ranked diagnosis or a typed error, never
    /// garbage and never a panic. Returns [`DiagnoseError::NoModel`] until
    /// a first generation has been published.
    pub fn diagnose(
        &self,
        features: &[f32],
        service: ServiceId,
        schema: &FeatureSchema,
    ) -> Result<Diagnosis, DiagnoseError> {
        if schema.n_features() == self.collector.schema().n_features() {
            if let Err(reason) = self.gate.check(features) {
                self.diagnoses_rejected.inc();
                return Err(DiagnoseError::InvalidProbe(reason));
            }
        } else if features.len() != schema.n_features() || features.iter().any(|v| !v.is_finite()) {
            // Diagnosing under a different schema (e.g. extension checks):
            // still refuse malformed rows.
            self.diagnoses_rejected.inc();
            return Err(DiagnoseError::InvalidProbe(
                if features.len() != schema.n_features() {
                    RejectReason::WidthMismatch
                } else {
                    RejectReason::NonFinite
                },
            ));
        }
        // Canary routing engages only while a candidate is staged; the
        // steady-state path stays a single registry read.
        if self.lifecycle.rollout().is_some() && self.registry.has_canary() {
            let key = probe_key(service, features);
            let Some(routed) = self.registry.route_for(service, key) else {
                self.diagnoses_unready.inc();
                return Err(DiagnoseError::NoModel);
            };
            return self.diagnose_routed(routed, features, schema);
        }
        let Some(model) = self.registry.model_for(service) else {
            self.diagnoses_unready.inc();
            return Err(DiagnoseError::NoModel);
        };
        let model_version = self.registry.version();
        let timer = self.diagnose_latency.start_timer();
        let ranking = model.rank_causes(features, schema);
        timer.stop();
        if !ranking.all_finite() {
            self.diagnoses_non_finite.inc();
            return Err(DiagnoseError::NonFiniteScores { model_version });
        }
        self.diagnoses_ok.inc();
        let top_cause = schema.feature(ranking.best());
        Ok(Diagnosis {
            ranking,
            top_cause,
            model_version,
        })
    }

    /// Serve a probe that was routed while a canary is observing traffic.
    ///
    /// Active-routed probes serve normally and feed the latency baseline.
    /// Canary-routed probes are scored by the candidate *and* the active
    /// baseline (captured under the same registry lock): the comparison
    /// feeds the rollout controller's agreement/latency observations, and
    /// a candidate producing non-finite scores is silently answered from
    /// the baseline — a poisoned canary costs the client nothing.
    fn diagnose_routed(
        &self,
        routed: Routed,
        features: &[f32],
        schema: &FeatureSchema,
    ) -> Result<Diagnosis, DiagnoseError> {
        let rollout = match self.lifecycle.rollout() {
            Some(rollout) => rollout,
            // Routing only engages when a controller exists; treat a
            // vanished controller as plain active serving.
            None => {
                return self.finish_diagnosis(
                    routed.model.rank_causes(features, schema),
                    routed.version,
                    schema,
                )
            }
        };
        match routed.target {
            RouteTarget::Active => {
                let started = Instant::now();
                let timer = self.diagnose_latency.start_timer();
                let ranking = routed.model.rank_causes(features, schema);
                timer.stop();
                rollout.note_active(started.elapsed().as_nanos() as u64);
                self.finish_diagnosis(ranking, routed.version, schema)
            }
            RouteTarget::Canary => {
                let started = Instant::now();
                let timer = self.diagnose_latency.start_timer();
                let canary_ranking = routed.model.rank_causes(features, schema);
                timer.stop();
                let canary_nanos = started.elapsed().as_nanos() as u64;
                let finite = canary_ranking.all_finite();
                let baseline = routed.baseline.map(|(model, version)| {
                    let active_started = Instant::now();
                    let ranking = model.rank_causes(features, schema);
                    rollout.note_active(active_started.elapsed().as_nanos() as u64);
                    (ranking, version)
                });
                let agree = match baseline.as_ref() {
                    Some((active_ranking, _)) => {
                        finite && canary_ranking.best() == active_ranking.best()
                    }
                    None => finite,
                };
                rollout.note_canary(routed.version, canary_nanos, finite, agree);
                if finite {
                    return self.finish_diagnosis(canary_ranking, routed.version, schema);
                }
                // Poisoned canary: fall back to the active baseline.
                match baseline {
                    Some((active_ranking, active_version)) => {
                        self.finish_diagnosis(active_ranking, active_version, schema)
                    }
                    None => {
                        self.diagnoses_non_finite.inc();
                        Err(DiagnoseError::NonFiniteScores {
                            model_version: routed.version,
                        })
                    }
                }
            }
        }
    }

    /// Shared tail of every diagnose path: refuse non-finite output,
    /// count the outcome, resolve the top cause.
    fn finish_diagnosis(
        &self,
        ranking: CauseRanking,
        model_version: u64,
        schema: &FeatureSchema,
    ) -> Result<Diagnosis, DiagnoseError> {
        if !ranking.all_finite() {
            self.diagnoses_non_finite.inc();
            return Err(DiagnoseError::NonFiniteScores { model_version });
        }
        self.diagnoses_ok.inc();
        let top_cause = schema.feature(ranking.best());
        Ok(Diagnosis {
            ranking,
            top_cause,
            model_version,
        })
    }

    /// Batched diagnosis: one admission check and one
    /// [`Backend::rank_causes_batch`] call over `rows`, returning a
    /// per-row result. The outer `Err` is [`DiagnoseError::NoModel`] only
    /// (nothing can be answered); per-row admission failures and
    /// non-finite outputs come back inline so one bad probe cannot poison
    /// its batch. Row results are bit-identical to per-row
    /// [`AnalysisService::diagnose`] calls — the backend contract requires
    /// it — which is what lets the serving edge offer batching without a
    /// second semantics.
    #[allow(clippy::type_complexity)]
    pub fn diagnose_batch(
        &self,
        rows: &[Vec<f32>],
        service: ServiceId,
        schema: &FeatureSchema,
    ) -> Result<Vec<Result<Diagnosis, DiagnoseError>>, DiagnoseError> {
        // While a canary observes traffic, rows must route individually
        // (each probe key may land on a different side of the split) to
        // keep the bit-identical-to-per-row contract. Canary phases are
        // transient, so the batch kernel is only bypassed briefly.
        if self.lifecycle.rollout().is_some() && self.registry.has_canary() {
            return Ok(rows
                .iter()
                .map(|row| self.diagnose(row, service, schema))
                .collect());
        }
        let Some(model) = self.registry.model_for(service) else {
            self.diagnoses_unready.inc();
            return Err(DiagnoseError::NoModel);
        };
        let model_version = self.registry.version();
        let serving_width = schema.n_features() == self.collector.schema().n_features();
        // Validate every row up front; only valid rows enter the batch
        // kernel, and `slot` remembers where each result goes.
        let mut results: Vec<Result<Diagnosis, DiagnoseError>> = Vec::with_capacity(rows.len());
        let mut valid: Vec<Vec<f32>> = Vec::with_capacity(rows.len());
        let mut slot: Vec<usize> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let reject = if serving_width {
                self.gate.check(row).err()
            } else if row.len() != schema.n_features() {
                Some(RejectReason::WidthMismatch)
            } else if row.iter().any(|v| !v.is_finite()) {
                Some(RejectReason::NonFinite)
            } else {
                None
            };
            match reject {
                Some(reason) => {
                    self.diagnoses_rejected.inc();
                    results.push(Err(DiagnoseError::InvalidProbe(reason)));
                }
                None => {
                    valid.push(row.clone());
                    slot.push(i);
                    results.push(Err(DiagnoseError::NoModel)); // placeholder
                }
            }
        }
        if !valid.is_empty() {
            let timer = self.diagnose_latency.start_timer();
            let rankings = model.rank_causes_batch(&valid, schema);
            timer.stop();
            for (i, ranking) in slot.iter().zip(rankings) {
                let row_result = if ranking.all_finite() {
                    self.diagnoses_ok.inc();
                    let top_cause = schema.feature(ranking.best());
                    Ok(Diagnosis {
                        ranking,
                        top_cause,
                        model_version,
                    })
                } else {
                    self.diagnoses_non_finite.inc();
                    Err(DiagnoseError::NonFiniteScores { model_version })
                };
                if let Some(entry) = results.get_mut(*i) {
                    *entry = row_result;
                }
            }
        }
        Ok(results)
    }

    /// Publish an externally trained (e.g. loaded-from-disk) model as the
    /// general model, bypassing the training pipeline. The backend passes
    /// the same validation gate trained generations do; on success the
    /// registry version bumps and health turns `Serving` — the hook behind
    /// `diagnet serve --model`.
    pub fn publish_external(&self, backend: Arc<dyn Backend>) -> Result<u64, NnError> {
        backend
            .validate()
            .map_err(|e| NnError::InvalidConfig(format!("refusing to publish model: {e}")))?;
        let version = self.lifecycle.publish_external(backend);
        self.health.record_success();
        Ok(version)
    }

    /// Run one supervised training generation of the configured pipeline:
    /// crash-isolated, budgeted, retried per
    /// [`ServiceConfig::supervision`]. On failure the last-good generation
    /// keeps serving and [`AnalysisService::health`] turns `Degraded`.
    pub fn retrain_now(&self) -> Result<TrainReport, TrainFailure> {
        self.drain_pending(true);
        let publisher: Arc<dyn GenerationPublisher> = Arc::clone(&self.lifecycle) as _;
        supervised_retrain_with(
            &self.collector,
            &publisher,
            &self.pipeline,
            &self.config.supervision,
            &self.health,
            self.next_seed(),
            &AtomicBool::new(false),
        )
    }

    /// Block until the next background training report (only meaningful
    /// with `auto_retrain_every`). Prefer
    /// [`AnalysisService::wait_background_report_timeout`] when a retrain
    /// may not be pending — this call blocks until one completes.
    pub fn wait_background_report(&self) -> Option<Result<TrainReport, TrainFailure>> {
        self.worker.as_ref().map(RetrainWorker::wait_report)
    }

    /// Like [`AnalysisService::wait_background_report`], but gives up after
    /// `timeout`. Outer `None`: no background worker configured; inner
    /// `None`: no report arrived in time.
    pub fn wait_background_report_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Option<Result<TrainReport, TrainFailure>>> {
        self.worker.as_ref().map(|w| w.wait_report_timeout(timeout))
    }

    /// What the service can currently promise: `Serving`, `Degraded`
    /// (training failing, last-good model serving) or `NoModel`.
    pub fn health(&self) -> HealthState {
        self.health.state()
    }

    /// Pause or resume moving staged submissions into the collector.
    /// While paused, accepted probes accumulate in the bounded queue and
    /// overflow is shed — the operator hook for draining a poisoned
    /// buffer, and the chaos harness's saturation lever.
    pub fn set_intake_paused(&self, paused: bool) {
        self.intake_paused.store(paused, Ordering::Relaxed);
        if !paused {
            self.drain_pending(true);
        }
    }

    /// Number of buffered samples (collector plus staged queue).
    pub fn buffered_samples(&self) -> usize {
        self.collector.len() + self.queue.len()
    }

    /// Number of staged-but-not-yet-ingested submissions.
    pub fn pending_submissions(&self) -> usize {
        self.queue.len()
    }

    /// Snapshot of the quarantine ring of rejected probes, oldest first.
    pub fn quarantined_probes(&self) -> Vec<QuarantinedProbe> {
        self.gate.quarantined()
    }

    /// True once a model is available for diagnosis.
    pub fn is_ready(&self) -> bool {
        self.registry.is_ready()
    }

    /// Current model-registry version.
    pub fn model_version(&self) -> u64 {
        self.registry.version()
    }

    /// Access the registry (e.g. to export a model to clients).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Current rollout phase: [`RolloutPhase::Idle`] when no controller is
    /// configured or no canary observes traffic.
    pub fn rollout_phase(&self) -> RolloutPhase {
        self.lifecycle
            .rollout()
            .map_or(RolloutPhase::Idle, |rollout| rollout.phase())
    }

    /// The durable store's generation lineage (manifest snapshot, oldest
    /// first); empty when the service runs without `--state-dir`.
    pub fn generation_records(&self) -> Vec<GenerationRecord> {
        self.lifecycle
            .store()
            .map(|store| store.records())
            .unwrap_or_default()
    }

    /// The manifest record recovered at startup, when the service resumed
    /// a stored generation instead of cold-starting.
    pub fn recovered_generation(&self) -> Option<&GenerationRecord> {
        self.recovered.as_ref()
    }

    /// A point-in-time snapshot of the process-wide metrics registry —
    /// the operator hook for dumping live serving/training metrics (see
    /// `OBSERVABILITY.md`). Render it with
    /// [`render_text`](diagnet_obs::Snapshot::render_text) or
    /// [`render_prometheus`](diagnet_obs::Snapshot::render_prometheus).
    /// Empty when the `obs` feature is compiled out.
    pub fn metrics_snapshot(&self) -> diagnet_obs::Snapshot {
        diagnet_obs::global().snapshot()
    }

    fn next_seed(&self) -> u64 {
        self.generation_seed.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;

    fn fast_service(auto: Option<u64>) -> (World, AnalysisService, Vec<Sample>) {
        let world = World::new();
        let mut model = DiagNetConfig::fast();
        model.epochs = 2;
        model.forest.n_trees = 5;
        let config = ServiceConfig {
            backend: BackendKind::DiagNet,
            model,
            buffer_capacity: 100_000,
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
            auto_retrain_every: auto,
            seed: 90,
            ..ServiceConfig::default()
        };
        let service = AnalysisService::new(config, FeatureSchema::full());
        let mut ds_cfg = DatasetConfig::small(&world, 90);
        ds_cfg.n_scenarios = 15;
        let samples = Dataset::generate(&world, &ds_cfg)
            .expect("generate")
            .samples;
        (world, service, samples)
    }

    #[test]
    fn diagnose_before_training_errors() {
        let (_, service, samples) = fast_service(None);
        let schema = FeatureSchema::full();
        let err = service
            .diagnose(&samples[0].features, samples[0].service, &schema)
            .unwrap_err();
        assert_eq!(err, DiagnoseError::NoModel);
        assert_eq!(service.health(), HealthState::NoModel);
    }

    #[test]
    fn submit_train_diagnose_cycle() {
        let (_, service, samples) = fast_service(None);
        for s in &samples {
            assert!(service.submit(s.clone()).accepted());
        }
        assert_eq!(service.buffered_samples(), samples.len());
        let report = service.retrain_now().unwrap();
        assert_eq!(report.version, 1);
        assert!(service.is_ready());
        assert_eq!(service.health(), HealthState::Serving);
        let schema = FeatureSchema::full();
        let faulty = samples.iter().find(|s| s.label.is_faulty()).unwrap();
        let diagnosis = service
            .diagnose(&faulty.features, faulty.service, &schema)
            .unwrap();
        assert_eq!(diagnosis.model_version, 1);
        assert_eq!(diagnosis.ranking.scores.len(), 55);
        assert_eq!(
            diagnosis.top_cause,
            schema.feature(diagnosis.ranking.best())
        );
    }

    #[test]
    fn invalid_probes_are_rejected_and_quarantined() {
        let (_, service, samples) = fast_service(None);
        let mut nan = samples[0].clone();
        nan.features[0] = f32::NAN;
        assert_eq!(
            service.submit(nan),
            SubmitOutcome::Rejected(RejectReason::NonFinite)
        );
        let mut short = samples[1].clone();
        short.features.truncate(3);
        assert_eq!(
            service.submit(short),
            SubmitOutcome::Rejected(RejectReason::WidthMismatch)
        );
        assert_eq!(service.buffered_samples(), 0, "rejects never buffer");
        let quarantined = service.quarantined_probes();
        assert_eq!(quarantined.len(), 2);
        assert_eq!(quarantined[0].reason, RejectReason::NonFinite);

        // The diagnose path refuses the same inputs with typed errors.
        let schema = FeatureSchema::full();
        let mut bad_row = samples[0].features.clone();
        bad_row[5] = f32::INFINITY;
        let err = service
            .diagnose(&bad_row, samples[0].service, &schema)
            .unwrap_err();
        assert_eq!(err, DiagnoseError::InvalidProbe(RejectReason::NonFinite));
    }

    #[test]
    fn paused_intake_stages_then_sheds() {
        let world = World::new();
        let config = ServiceConfig {
            general_services: world.catalog.general_ids(),
            admission: AdmissionConfig {
                max_pending: 5,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        };
        let service = AnalysisService::new(config, FeatureSchema::full());
        let mut ds_cfg = DatasetConfig::small(&world, 91);
        ds_cfg.n_scenarios = 1;
        let samples = Dataset::generate(&world, &ds_cfg)
            .expect("generate")
            .samples;

        service.set_intake_paused(true);
        let outcomes: Vec<SubmitOutcome> = samples
            .iter()
            .take(8)
            .map(|s| service.submit(s.clone()))
            .collect();
        assert_eq!(service.pending_submissions(), 5, "queue is bounded");
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == SubmitOutcome::Shed)
                .count(),
            3,
            "overflow is shed explicitly"
        );
        service.set_intake_paused(false);
        assert_eq!(service.pending_submissions(), 0, "resume flushes");
        assert_eq!(service.buffered_samples(), 5);
    }

    #[test]
    fn auto_retrain_fires() {
        let (_, service, samples) = fast_service(Some(1000));
        assert!(samples.len() >= 1000, "fixture too small for the trigger");
        for s in &samples {
            service.submit(s.clone());
        }
        let report = service.wait_background_report().unwrap().unwrap();
        assert_eq!(report.version, 1);
        assert!(service.is_ready());
        assert_eq!(service.health(), HealthState::Serving);
    }

    #[test]
    fn timeout_wait_does_not_hang_without_pending_retrain() {
        let (_, service, _) = fast_service(Some(1_000_000));
        // Worker exists but no retrain was requested: the timed wait
        // returns rather than blocking forever.
        let result = service
            .wait_background_report_timeout(std::time::Duration::from_millis(50))
            .expect("worker configured");
        assert!(result.is_none());
        // And without a worker, the outer layer is None.
        let (_, no_worker, _) = fast_service(None);
        assert!(no_worker
            .wait_background_report_timeout(std::time::Duration::from_millis(10))
            .is_none());
    }

    /// Delta-based asserts (the global metrics registry is shared across
    /// test threads); exercises the end-to-end hook the analysis-service
    /// example dumps.
    #[test]
    #[cfg(feature = "obs")]
    fn serving_metrics_flow_into_the_snapshot() {
        let accepted: &[(&str, &str)] = &[("outcome", "accepted")];
        let ok: &[(&str, &str)] = &[("outcome", "ok")];
        let before = diagnet_obs::global().snapshot();
        let sub0 = before.counter(SUBMISSIONS_TOTAL, accepted).unwrap_or(0);
        let diag0 = before.counter(DIAGNOSES_TOTAL, ok).unwrap_or(0);

        let (_, service, samples) = fast_service(None);
        let schema = FeatureSchema::full();
        assert!(service
            .diagnose(&samples[0].features, samples[0].service, &schema)
            .is_err());
        for s in &samples {
            service.submit(s.clone());
        }
        service.retrain_now().unwrap();
        service
            .diagnose(&samples[0].features, samples[0].service, &schema)
            .unwrap();

        let snap = service.metrics_snapshot();
        assert!(
            snap.counter(SUBMISSIONS_TOTAL, accepted).unwrap_or(0) >= sub0 + samples.len() as u64
        );
        assert!(snap.counter(DIAGNOSES_TOTAL, ok).unwrap_or(0) > diag0);
        assert!(
            snap.counter(DIAGNOSES_TOTAL, &[("outcome", "no_model")])
                .unwrap_or(0)
                >= 1
        );
        let lat = snap.histogram(DIAGNOSE_LATENCY_SECONDS, &[]).unwrap();
        assert!(lat.count >= 1);
        // The rendered dump carries the serving series an operator expects.
        let prom = snap.render_prometheus();
        assert!(prom.contains("diagnet_submissions_total{outcome=\"accepted\"}"));
        assert!(prom.contains("diagnet_retrain_duration_seconds_bucket"));
        assert!(prom.contains("diagnet_health_state"));
    }

    #[test]
    fn diagnosis_uses_specialised_model_when_available() {
        let (world, service, samples) = fast_service(None);
        for s in &samples {
            service.submit(s.clone());
        }
        service.retrain_now().unwrap();
        // All services got specialised models (min_service_samples = 1).
        assert_eq!(
            service.registry().specialized_services().len(),
            world.catalog.len()
        );
    }
}
