//! Serving-health tracking.
//!
//! The service's availability contract is *diagnosis first*: a failing
//! training pipeline must never take the request path down. Health is
//! therefore a property of the training loop, reported alongside — not
//! inside — `diagnose`:
//!
//! * [`HealthState::NoModel`] — nothing published yet (cold start, or the
//!   first generation keeps failing);
//! * [`HealthState::Serving`] — the most recent supervised retrain
//!   succeeded; the registry serves its newest generation;
//! * [`HealthState::Degraded`] — retraining is persistently failing, but
//!   a last-good generation remains published and keeps serving.
//!
//! The state is mirrored into the [`HEALTH_STATE`] gauge (0 = no model,
//! 1 = serving, 2 = degraded) so operators can alert on it without
//! scraping the API.

use diagnet_obs::Gauge;
use parking_lot::Mutex;
use std::fmt;

/// Name of the health gauge (0 = no model, 1 = serving, 2 = degraded).
pub const HEALTH_STATE: &str = "diagnet_health_state";

/// What the service can currently promise its clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthState {
    /// No model has ever been published; `diagnose` returns errors.
    NoModel,
    /// The latest training generation succeeded and is being served.
    Serving,
    /// Training is failing; the last-good generation keeps serving.
    Degraded {
        /// Human-readable description of the most recent failure.
        reason: String,
    },
}

impl HealthState {
    /// Gauge encoding of this state.
    pub fn gauge_value(&self) -> f64 {
        match self {
            HealthState::NoModel => 0.0,
            HealthState::Serving => 1.0,
            HealthState::Degraded { .. } => 2.0,
        }
    }

    /// True when a model is available for diagnosis (serving or degraded).
    pub fn can_diagnose(&self) -> bool {
        !matches!(self, HealthState::NoModel)
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::NoModel => f.write_str("no-model"),
            HealthState::Serving => f.write_str("serving"),
            HealthState::Degraded { reason } => write!(f, "degraded: {reason}"),
        }
    }
}

/// Thread-safe health register shared by the supervisor, the background
/// worker and the service facade.
#[derive(Debug)]
pub struct HealthMonitor {
    state: Mutex<HealthState>,
    gauge: Gauge,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthMonitor {
    /// A monitor starting in [`HealthState::NoModel`].
    pub fn new() -> Self {
        let gauge = diagnet_obs::global().gauge(
            HEALTH_STATE,
            &[],
            "serving health (0 = no model, 1 = serving, 2 = degraded)",
        );
        gauge.set(HealthState::NoModel.gauge_value());
        HealthMonitor {
            state: Mutex::new(HealthState::NoModel),
            gauge,
        }
    }

    /// A training generation was published successfully.
    pub fn record_success(&self) {
        self.set(HealthState::Serving);
    }

    /// A supervised retrain exhausted its attempts. `has_model` says
    /// whether a last-good generation is still published (degraded) or
    /// nothing ever was (no model).
    pub fn record_failure(&self, reason: impl Into<String>, has_model: bool) {
        if has_model {
            self.set(HealthState::Degraded {
                reason: reason.into(),
            });
        } else {
            self.set(HealthState::NoModel);
        }
    }

    /// Current state (cloned snapshot).
    pub fn state(&self) -> HealthState {
        self.state.lock().clone()
    }

    fn set(&self, next: HealthState) {
        self.gauge.set(next.gauge_value());
        *self.state.lock() = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_follow_training_outcomes() {
        let monitor = HealthMonitor::new();
        assert_eq!(monitor.state(), HealthState::NoModel);
        assert!(!monitor.state().can_diagnose());

        monitor.record_failure("first generation exploded", false);
        assert_eq!(
            monitor.state(),
            HealthState::NoModel,
            "nothing to fall back to"
        );

        monitor.record_success();
        assert_eq!(monitor.state(), HealthState::Serving);
        assert!(monitor.state().can_diagnose());

        monitor.record_failure("panic: chaos", true);
        let state = monitor.state();
        assert!(matches!(&state, HealthState::Degraded { reason } if reason.contains("chaos")));
        assert!(state.can_diagnose(), "degraded still serves");
        assert_eq!(state.gauge_value(), 2.0);

        monitor.record_success();
        assert_eq!(monitor.state(), HealthState::Serving);
    }

    #[test]
    fn display_is_operator_friendly() {
        assert_eq!(HealthState::Serving.to_string(), "serving");
        assert_eq!(HealthState::NoModel.to_string(), "no-model");
        let degraded = HealthState::Degraded {
            reason: "retrain timed out after 2s".into(),
        };
        assert_eq!(degraded.to_string(), "degraded: retrain timed out after 2s");
    }
}
