//! Canary rollout and health-driven auto-rollback.
//!
//! PR 5's publish gate judges a generation by *training-time* validation;
//! NetCause (PAPERS.md) argues a fault localizer must be judged by its
//! **live behaviour** — a model can pass every offline check and still
//! degrade in production (gray failure, Flock). This module closes that
//! gap:
//!
//! * [`GenerationLifecycle`] replaces the everything-swaps publish: a
//!   retrained generation is staged as a **canary** receiving a
//!   deterministic fraction of diagnose traffic
//!   ([`canary_slot`](crate::registry::canary_slot) of the probe key, so
//!   an experiment is replayable) and persisted to the durable
//!   [`ModelStore`] with status `canary`.
//! * [`RolloutController`] accumulates per-generation observations —
//!   latency vs. the active baseline, score finiteness, rank agreement
//!   (top-cause churn) — and after a healthy observation window
//!   **promotes** the candidate (atomic registry swap, manifest status
//!   `active`).
//! * Degradation (non-finite scores, latency blowout, excessive rank
//!   churn) triggers **auto-rollback** at the next observation: the
//!   canary is demoted, the last-good generation keeps serving (it never
//!   stopped), the manifest records `rolled-back`, health flips to
//!   degraded, and the supervisor's retrain cadence backs off
//!   exponentially so a persistently bad pipeline can't flap the fleet.
//!
//! The request path never sees a canary failure: a canary-routed probe
//! whose scores are non-finite is answered from the active baseline that
//! was captured under the same registry lock.

use crate::health::HealthMonitor;
use crate::registry::ModelRegistry;
use crate::store::{GenerationStatus, ModelStore};
use crate::trainer::{validate_generation, GenerationPublisher, PendingGeneration, TrainReport};
use diagnet::backend::Backend;
use diagnet_nn::error::NnError;
use diagnet_obs::{Counter, Gauge};
use diagnet_sim::service::ServiceId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Counter of diagnose requests observed during a canary phase (label
/// `target`: `canary`/`active`).
pub const CANARY_REQUESTS_TOTAL: &str = "diagnet_canary_requests_total";
/// Counter of canary-routed requests whose scores were non-finite.
pub const CANARY_NON_FINITE_TOTAL: &str = "diagnet_canary_non_finite_total";
/// Gauge: 1 while a canary is observing traffic, 0 otherwise.
pub const CANARY_PHASE: &str = "diagnet_canary_phase";
/// Counter of canaries promoted to active.
pub const CANARY_PROMOTIONS_TOTAL: &str = "diagnet_canary_promotions_total";
/// Gauge: running top-cause agreement between canary and active baseline.
pub const CANARY_RANK_AGREEMENT: &str = "diagnet_canary_rank_agreement";
/// Counter of auto-rollbacks (label `reason`:
/// `non_finite_scores`/`latency`/`rank_churn`).
pub const ROLLBACK_TOTAL: &str = "diagnet_rollback_total";
/// Gauge: current retrain-cadence backoff level (0 = normal cadence;
/// each rollback doubles the auto-retrain interval).
pub const ROLLBACK_BACKOFF_LEVEL: &str = "diagnet_rollback_backoff_level";

/// Deterministic probe key: FNV-1a/64 over the service id and the raw
/// feature bytes. The same probe always lands on the same side of the
/// canary split, making an experiment replayable offline.
pub fn probe_key(sid: ServiceId, features: &[f32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for b in (sid.0 as u64).to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    for f in features {
        for b in f.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

/// Tuning for the canary/rollback loop.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Fraction of diagnose traffic routed to the canary (0, 1].
    pub canary_frac: f32,
    /// Canary-served requests observed before the promote/rollback verdict.
    pub window: u64,
    /// Rollback when mean canary latency exceeds the active baseline by
    /// this factor (the latency-blowout budget).
    pub max_latency_ratio: f64,
    /// Rollback when the fraction of probes whose top-ranked cause agrees
    /// with the active baseline falls below this (rank churn).
    pub min_agreement: f64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            canary_frac: 0.2,
            window: 50,
            max_latency_ratio: 3.0,
            min_agreement: 0.5,
        }
    }
}

/// Externally visible rollout state, surfaced in `/healthz` and
/// `/v1/generations`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutPhase {
    /// No canary in flight; the active generation serves all traffic.
    Idle,
    /// A candidate is observing traffic.
    Canary {
        /// Registry version of the candidate.
        version: u64,
        /// Canary-served requests observed so far.
        observed: u64,
        /// Requests required before a verdict.
        window: u64,
    },
}

/// Live observations of one canary trial.
#[derive(Debug)]
struct Trial {
    version: u64,
    store_generation: Option<u64>,
    canary_requests: u64,
    canary_agree: u64,
    canary_nanos: u128,
    active_requests: u64,
    active_nanos: u128,
}

enum Verdict {
    Promote,
    Rollback(&'static str),
}

/// Composes the registry's canary routing, the durable store's manifest
/// and the [`HealthMonitor`] into the observe → promote/rollback loop.
#[derive(Debug)]
pub struct RolloutController {
    config: RolloutConfig,
    registry: Arc<ModelRegistry>,
    store: Option<Arc<ModelStore>>,
    health: Arc<HealthMonitor>,
    trial: Mutex<Option<Trial>>,
    backoff_level: AtomicU32,
    canary_requests: Counter,
    active_requests: Counter,
    non_finite: Counter,
    phase_gauge: Gauge,
    agreement_gauge: Gauge,
    promotions: Counter,
    backoff_gauge: Gauge,
}

impl RolloutController {
    /// A controller with no trial in flight.
    pub fn new(
        config: RolloutConfig,
        registry: Arc<ModelRegistry>,
        store: Option<Arc<ModelStore>>,
        health: Arc<HealthMonitor>,
    ) -> Self {
        let obs = diagnet_obs::global();
        let canary_requests = obs.counter(
            CANARY_REQUESTS_TOTAL,
            &[("target", "canary")],
            "diagnose requests observed during canary phases",
        );
        let active_requests = obs.counter(
            CANARY_REQUESTS_TOTAL,
            &[("target", "active")],
            "diagnose requests observed during canary phases",
        );
        let non_finite = obs.counter(
            CANARY_NON_FINITE_TOTAL,
            &[],
            "canary-routed requests with non-finite scores",
        );
        let phase_gauge = obs.gauge(CANARY_PHASE, &[], "1 while a canary is observing traffic");
        let agreement_gauge = obs.gauge(
            CANARY_RANK_AGREEMENT,
            &[],
            "running top-cause agreement between canary and active",
        );
        let promotions = obs.counter(CANARY_PROMOTIONS_TOTAL, &[], "canaries promoted to active");
        let backoff_gauge = obs.gauge(
            ROLLBACK_BACKOFF_LEVEL,
            &[],
            "retrain-cadence backoff level after rollbacks",
        );
        phase_gauge.set(0.0);
        backoff_gauge.set(0.0);
        RolloutController {
            config,
            registry,
            store,
            health,
            trial: Mutex::new(None),
            backoff_level: AtomicU32::new(0),
            canary_requests,
            active_requests,
            non_finite,
            phase_gauge,
            agreement_gauge,
            promotions,
            backoff_gauge,
        }
    }

    /// Rollout tuning in force.
    pub fn config(&self) -> &RolloutConfig {
        &self.config
    }

    /// Start observing a candidate that was just staged in the registry
    /// (and, when a store is attached, persisted with status `canary`).
    /// Replaces any previous trial — its candidate was already replaced
    /// in the registry.
    pub fn begin_trial(&self, version: u64, store_generation: Option<u64>) {
        *self.trial.lock() = Some(Trial {
            version,
            store_generation,
            canary_requests: 0,
            canary_agree: 0,
            canary_nanos: 0,
            active_requests: 0,
            active_nanos: 0,
        });
        self.phase_gauge.set(1.0);
        self.agreement_gauge.set(1.0);
    }

    /// Record an active-routed diagnose that ran during a canary phase
    /// (the latency baseline).
    pub fn note_active(&self, nanos: u64) {
        self.active_requests.inc();
        if let Some(trial) = self.trial.lock().as_mut() {
            trial.active_requests += 1;
            trial.active_nanos += u128::from(nanos);
        }
    }

    /// Record a canary-routed diagnose: its latency, whether its scores
    /// were all finite, and whether its top-ranked cause agreed with the
    /// active baseline. Evaluates the trial — non-finite scores roll the
    /// canary back immediately; at the end of the observation window the
    /// candidate is promoted or rolled back on its latency/churn record.
    pub fn note_canary(&self, version: u64, nanos: u64, finite: bool, agree: bool) {
        self.canary_requests.inc();
        if !finite {
            self.non_finite.inc();
        }
        let decision = {
            let mut guard = self.trial.lock();
            let Some(trial) = guard.as_mut() else {
                return;
            };
            if trial.version != version {
                return; // stale note for a trial that already ended
            }
            trial.canary_requests += 1;
            trial.canary_nanos += u128::from(nanos);
            if agree {
                trial.canary_agree += 1;
            }
            self.agreement_gauge
                .set(trial.canary_agree as f64 / trial.canary_requests as f64);
            let verdict = if !finite {
                Some(Verdict::Rollback("non_finite_scores"))
            } else if trial.canary_requests >= self.config.window {
                Some(self.evaluate(trial))
            } else {
                None
            };
            match verdict {
                Some(v) => {
                    let ended = guard.take();
                    Some((v, ended))
                }
                None => None,
            }
        };
        if let Some((verdict, Some(trial))) = decision {
            match verdict {
                Verdict::Promote => self.promote(&trial),
                Verdict::Rollback(reason) => self.rollback(&trial, reason),
            }
        }
    }

    /// End-of-window verdict from the accumulated observations.
    fn evaluate(&self, trial: &Trial) -> Verdict {
        if trial.active_requests > 0 && trial.canary_requests > 0 {
            let canary_mean = trial.canary_nanos as f64 / trial.canary_requests as f64;
            let active_mean = trial.active_nanos as f64 / trial.active_requests as f64;
            if active_mean > 0.0 && canary_mean > active_mean * self.config.max_latency_ratio {
                return Verdict::Rollback("latency");
            }
        }
        let agreement = trial.canary_agree as f64 / trial.canary_requests.max(1) as f64;
        if agreement < self.config.min_agreement {
            return Verdict::Rollback("rank_churn");
        }
        Verdict::Promote
    }

    fn promote(&self, trial: &Trial) {
        if self.registry.promote_canary().is_none() {
            // Superseded by a direct publish; nothing to promote.
            self.phase_gauge.set(0.0);
            return;
        }
        if let (Some(store), Some(generation)) = (self.store.as_ref(), trial.store_generation) {
            let _ = store.set_status(generation, GenerationStatus::Active);
        }
        self.health.record_success();
        self.backoff_level.store(0, Ordering::Relaxed);
        self.backoff_gauge.set(0.0);
        self.promotions.inc();
        self.phase_gauge.set(0.0);
    }

    fn rollback(&self, trial: &Trial, reason: &'static str) {
        self.registry.demote_canary();
        if let (Some(store), Some(generation)) = (self.store.as_ref(), trial.store_generation) {
            let _ = store.set_status(generation, GenerationStatus::RolledBack);
        }
        self.health.record_failure(
            format!("canary v{} rolled back: {reason}", trial.version),
            self.registry.is_ready(),
        );
        let level = self.backoff_level.fetch_add(1, Ordering::Relaxed).min(15) + 1;
        self.backoff_gauge.set(f64::from(level));
        diagnet_obs::global()
            .counter(
                ROLLBACK_TOTAL,
                &[("reason", reason)],
                "canary auto-rollbacks by reason",
            )
            .inc();
        self.phase_gauge.set(0.0);
    }

    /// Current rollout phase. A trial whose candidate vanished from the
    /// registry (superseded by a direct publish) is reconciled to idle.
    pub fn phase(&self) -> RolloutPhase {
        let mut guard = self.trial.lock();
        if let Some(trial) = guard.as_ref() {
            match self.registry.canary_info() {
                Some((version, _)) if version == trial.version => {
                    return RolloutPhase::Canary {
                        version: trial.version,
                        observed: trial.canary_requests,
                        window: self.config.window,
                    };
                }
                _ => {
                    *guard = None;
                    self.phase_gauge.set(0.0);
                }
            }
        }
        RolloutPhase::Idle
    }

    /// Auto-retrain cadence with rollback backoff applied: every rollback
    /// doubles the interval (capped at 2¹⁵×) until a canary is promoted.
    pub fn retrain_every(&self, base: u64) -> u64 {
        let level = self.backoff_level.load(Ordering::Relaxed).min(15);
        base.saturating_mul(1u64 << level)
    }

    /// Current rollback backoff level (0 = normal cadence).
    pub fn backoff_level(&self) -> u32 {
        self.backoff_level.load(Ordering::Relaxed)
    }
}

/// The publish seam wired for durability and gradual rollout: validates a
/// generation, stages it as a canary (when a controller is attached and a
/// baseline exists) or publishes it directly, and persists the artefact
/// to the store.
#[derive(Debug)]
pub struct GenerationLifecycle {
    registry: Arc<ModelRegistry>,
    store: Option<Arc<ModelStore>>,
    rollout: Option<Arc<RolloutController>>,
}

impl GenerationLifecycle {
    /// A lifecycle over `registry`, optionally persisting to `store` and
    /// canarying through `rollout`.
    pub fn new(
        registry: Arc<ModelRegistry>,
        store: Option<Arc<ModelStore>>,
        rollout: Option<Arc<RolloutController>>,
    ) -> Self {
        GenerationLifecycle {
            registry,
            store,
            rollout,
        }
    }

    /// The attached rollout controller, if any.
    pub fn rollout(&self) -> Option<&Arc<RolloutController>> {
        self.rollout.as_ref()
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<ModelStore>> {
        self.store.as_ref()
    }

    /// Manifest generation of the newest *active* record — the parent of
    /// whatever is published next.
    fn active_store_generation(&self) -> Option<u64> {
        let store = self.store.as_ref()?;
        store
            .records()
            .iter()
            .filter(|r| r.status == GenerationStatus::Active)
            .map(|r| r.generation)
            .max()
    }

    /// Persist `backend` with `status`; `None` when no store is attached
    /// or the write failed (already counted under
    /// `diagnet_store_persist_total{outcome="error"}` — persistence
    /// failures must not fail a publish that already swapped in memory).
    fn persist(
        &self,
        backend: &dyn Backend,
        parent: Option<u64>,
        status: GenerationStatus,
    ) -> Option<u64> {
        let store = self.store.as_ref()?;
        let token = backend.describe().kind.token();
        match store.persist(backend, parent, token, status) {
            Ok(record) => Some(record.generation),
            Err(_) => None,
        }
    }

    /// Publish an externally supplied model (`diagnet serve --model`, the
    /// warm-start path): straight to active, persisted as such.
    pub fn publish_external(&self, backend: Arc<dyn Backend>) -> u64 {
        let parent = self.active_store_generation();
        let version = self
            .registry
            .publish_backend(Arc::clone(&backend), BTreeMap::new());
        self.persist(backend.as_ref(), parent, GenerationStatus::Active);
        version
    }
}

impl GenerationPublisher for GenerationLifecycle {
    /// The gated publish: validate every model, then either stage the
    /// generation as a canary (controller attached *and* an active
    /// baseline exists to compare against) or swap it straight to active.
    /// Either way the artefact lands in the store first-class, so a crash
    /// right after the swap loses nothing.
    fn publish_pending(&self, pending: PendingGeneration) -> Result<TrainReport, NnError> {
        let PendingGeneration {
            generation,
            n_samples,
            n_faulty,
            started,
        } = pending;
        validate_generation(&generation)?;
        let parent = self.active_store_generation();
        let canary = match self.rollout.as_ref() {
            Some(rollout) if self.registry.is_ready() => Some(rollout),
            _ => None,
        };
        let version = match canary {
            Some(rollout) => {
                let frac = rollout.config().canary_frac;
                let version = self.registry.begin_canary(
                    Arc::clone(&generation.general),
                    generation.specialized,
                    frac,
                );
                let store_generation = self.persist(
                    generation.general.as_ref(),
                    parent,
                    GenerationStatus::Canary,
                );
                rollout.begin_trial(version, store_generation);
                version
            }
            None => {
                let version = self
                    .registry
                    .publish_backend(Arc::clone(&generation.general), generation.specialized);
                self.persist(
                    generation.general.as_ref(),
                    parent,
                    GenerationStatus::Active,
                );
                version
            }
        };
        Ok(TrainReport {
            version,
            backend: generation.backend,
            n_samples,
            n_faulty,
            specialized: generation.specialized_ids,
            duration_secs: started.elapsed().as_secs_f64(),
        })
    }

    fn has_model(&self) -> bool {
        self.registry.is_ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_key_is_deterministic_and_spreads() {
        let a = probe_key(ServiceId(1), &[0.5, 1.0, -2.0]);
        assert_eq!(a, probe_key(ServiceId(1), &[0.5, 1.0, -2.0]));
        assert_ne!(a, probe_key(ServiceId(2), &[0.5, 1.0, -2.0]));
        assert_ne!(a, probe_key(ServiceId(1), &[0.5, 1.0, -2.5]));
    }

    #[test]
    fn backoff_doubles_per_rollback_level() {
        let registry = Arc::new(ModelRegistry::new());
        let health = Arc::new(HealthMonitor::new());
        let controller = RolloutController::new(
            RolloutConfig::default(),
            Arc::clone(&registry),
            None,
            health,
        );
        assert_eq!(controller.retrain_every(8), 8);
        controller.backoff_level.store(2, Ordering::Relaxed);
        assert_eq!(controller.retrain_every(8), 32);
        controller.backoff_level.store(40, Ordering::Relaxed);
        assert_eq!(controller.retrain_every(8), 8 << 15, "level is capped");
        assert_eq!(controller.retrain_every(u64::MAX), u64::MAX, "saturates");
    }

    #[test]
    fn phase_reconciles_superseded_trial() {
        let registry = Arc::new(ModelRegistry::new());
        let health = Arc::new(HealthMonitor::new());
        let controller = RolloutController::new(
            RolloutConfig::default(),
            Arc::clone(&registry),
            None,
            health,
        );
        assert_eq!(controller.phase(), RolloutPhase::Idle);
        // A trial whose candidate is not in the registry (superseded) is
        // reconciled back to idle instead of reporting a phantom canary.
        controller.begin_trial(7, None);
        assert_eq!(controller.phase(), RolloutPhase::Idle);
        assert!(controller.trial.lock().is_none());
    }
}
