//! Training supervision: crash isolation, wall-clock budgets, retries.
//!
//! A training generation is the platform's most fragile moving part — it
//! runs arbitrary numeric code over attacker-adjacent data. The
//! supervisor wraps every generation (synchronous `retrain_now`,
//! `auto_retrain_every`, and the background [`RetrainWorker`]) so that no
//! training failure mode reaches the request path:
//!
//! * **panics** are caught with `catch_unwind` and converted into
//!   [`TrainFailure::Panicked`];
//! * **stalls** are bounded by an optional wall-clock budget — the attempt
//!   runs on its own thread and is abandoned (not killed: safe Rust
//!   cannot kill a thread) when the budget elapses; an abandoned attempt
//!   checks its flag before publishing, so a late finish cannot clobber
//!   the registry;
//! * **transient failures** (panic/timeout) are retried up to
//!   [`SupervisionConfig::max_attempts`] with exponential backoff and
//!   deterministic jitter; training *errors* ([`NnError`]) are
//!   deterministic in the data and seed, so they fail fast;
//! * on persistent failure the registry keeps serving its **last-good
//!   generation** and the [`HealthMonitor`] flips to `Degraded`.
//!
//! [`RetrainWorker`]: crate::trainer::RetrainWorker

use crate::collector::ProbeCollector;
use crate::health::HealthMonitor;
use crate::registry::ModelRegistry;
use crate::trainer::{build_generation, GenerationPublisher, TrainPipeline, TrainReport};
use crate::trainer::{RETRAIN_DURATION_SECONDS, RETRAIN_TOTAL};
use diagnet_nn::error::NnError;
use diagnet_rng::SplitMix64;
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Name of the counter of retrain retries (label `backend`).
pub const RETRAIN_RETRIES_TOTAL: &str = "diagnet_retrain_retries_total";
/// Name of the counter of failed retrain attempts (labels `backend`,
/// `kind`: `panic`/`timeout`/`error`/`spawn`).
pub const RETRAIN_FAILURES_TOTAL: &str = "diagnet_retrain_failures_total";

/// Supervision tuning for training generations.
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Maximum attempts per generation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget per attempt; `None` lets an attempt run
    /// unbounded on the calling thread.
    pub budget: Option<Duration>,
    /// Seed of the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            budget: None,
            jitter_seed: 0x5EED_BACC,
        }
    }
}

/// Why a supervised retrain gave up.
#[derive(Debug)]
pub enum TrainFailure {
    /// Every attempt panicked; holds the last panic message.
    Panicked(String),
    /// Every attempt exceeded the wall-clock budget.
    TimedOut(Duration),
    /// Training returned a deterministic error (not retried).
    Error(NnError),
    /// The supervisor was cancelled (worker shutdown) before finishing.
    Cancelled,
    /// The OS refused to spawn the attempt thread (resource pressure).
    Spawn(String),
}

impl fmt::Display for TrainFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainFailure::Panicked(msg) => write!(f, "training panicked: {msg}"),
            TrainFailure::TimedOut(budget) => {
                write!(f, "training exceeded its {:?} budget", budget)
            }
            TrainFailure::Error(e) => write!(f, "training failed: {e}"),
            TrainFailure::Cancelled => f.write_str("training cancelled by shutdown"),
            TrainFailure::Spawn(msg) => write!(f, "cannot spawn training thread: {msg}"),
        }
    }
}

impl std::error::Error for TrainFailure {}

impl TrainFailure {
    /// Metric-label token of this failure kind.
    pub fn token(&self) -> &'static str {
        match self {
            TrainFailure::Panicked(_) => "panic",
            TrainFailure::TimedOut(_) => "timeout",
            TrainFailure::Error(_) => "error",
            TrainFailure::Cancelled => "cancelled",
            TrainFailure::Spawn(_) => "spawn",
        }
    }

    /// Transient failures are worth retrying; training errors are
    /// deterministic in the data and seed, so retrying them only delays
    /// the degraded verdict.
    fn retryable(&self) -> bool {
        matches!(
            self,
            TrainFailure::Panicked(_) | TrainFailure::TimedOut(_) | TrainFailure::Spawn(_)
        )
    }
}

/// Backoff before retry number `retry` (1-based): exponential from
/// [`SupervisionConfig::base_backoff`], capped at
/// [`SupervisionConfig::max_backoff`], with deterministic jitter in
/// `[delay/2, delay)` derived from the jitter seed — reproducible runs,
/// no synchronised retry stampede across workers with different seeds.
pub fn backoff_delay(config: &SupervisionConfig, retry: u32) -> Duration {
    let doublings = retry.saturating_sub(1).min(16);
    let exp = config
        .base_backoff
        .saturating_mul(1u32 << doublings)
        .min(config.max_backoff);
    let frac =
        SplitMix64::derive(config.jitter_seed, retry as u64) as f64 / (u64::MAX as f64 + 1.0);
    exp.div_f64(2.0) + exp.div_f64(2.0).mul_f64(frac)
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sleep `delay` in slices, returning early when `cancel` flips.
fn sleep_cancellable(delay: Duration, cancel: &AtomicBool) {
    let slice = Duration::from_millis(10);
    let mut remaining = delay;
    while remaining > Duration::ZERO {
        if cancel.load(Ordering::Relaxed) {
            return;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// One crash-isolated attempt: build the generation, then (unless the
/// budget already expired) validate and publish it.
fn attempt_once(
    collector: &ProbeCollector,
    publisher: &dyn GenerationPublisher,
    pipeline: &dyn TrainPipeline,
    seed: u64,
    abandoned: Option<&AtomicBool>,
) -> Result<TrainReport, NnError> {
    let pending = build_generation(collector, pipeline, seed)?;
    if abandoned.is_some_and(|a| a.load(Ordering::Acquire)) {
        return Err(NnError::InvalidConfig(
            "training attempt abandoned after budget timeout".into(),
        ));
    }
    publisher.publish_pending(pending)
}

fn flatten(
    outcome: Result<Result<TrainReport, NnError>, Box<dyn Any + Send>>,
) -> Result<TrainReport, TrainFailure> {
    match outcome {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(TrainFailure::Error(e)),
        Err(payload) => Err(TrainFailure::Panicked(panic_message(payload))),
    }
}

fn run_attempt(
    collector: &Arc<ProbeCollector>,
    publisher: &Arc<dyn GenerationPublisher>,
    pipeline: &Arc<dyn TrainPipeline>,
    budget: Option<Duration>,
    seed: u64,
) -> Result<TrainReport, TrainFailure> {
    let Some(budget) = budget else {
        return flatten(catch_unwind(AssertUnwindSafe(|| {
            attempt_once(collector, publisher.as_ref(), pipeline.as_ref(), seed, None)
        })));
    };
    let abandoned = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let (c, r, p, a) = (
        Arc::clone(collector),
        Arc::clone(publisher),
        Arc::clone(pipeline),
        Arc::clone(&abandoned),
    );
    let spawned = std::thread::Builder::new()
        .name("diagnet-retrain-attempt".into())
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                attempt_once(&c, r.as_ref(), p.as_ref(), seed, Some(&a))
            }));
            let _ = tx.send(outcome);
        });
    let handle = match spawned {
        Ok(handle) => handle,
        // Thread creation is the one supervised step that can fail before
        // any training code runs; treat it like the other transient
        // failures instead of panicking on the serving path.
        Err(e) => return Err(TrainFailure::Spawn(e.to_string())),
    };
    match rx.recv_timeout(budget) {
        Ok(outcome) => {
            let _ = handle.join();
            flatten(outcome)
        }
        Err(_) => {
            // Detach the stalled attempt; it will observe `abandoned`
            // before publishing, so a late finish cannot publish.
            abandoned.store(true, Ordering::Release);
            Err(TrainFailure::TimedOut(budget))
        }
    }
}

/// Run one training generation under full supervision: crash isolation,
/// optional per-attempt budget, retry-with-backoff on transient failures,
/// health bookkeeping. On `Err` the registry still serves whatever it
/// served before — the last-good generation.
pub fn supervised_retrain(
    collector: &Arc<ProbeCollector>,
    registry: &Arc<ModelRegistry>,
    pipeline: &Arc<dyn TrainPipeline>,
    supervision: &SupervisionConfig,
    health: &HealthMonitor,
    seed: u64,
    cancel: &AtomicBool,
) -> Result<TrainReport, TrainFailure> {
    let publisher: Arc<dyn GenerationPublisher> = Arc::clone(registry) as _;
    supervised_retrain_with(
        collector,
        &publisher,
        pipeline,
        supervision,
        health,
        seed,
        cancel,
    )
}

/// [`supervised_retrain`] generalised over the publish seam
/// ([`GenerationPublisher`]): the lifecycle manager substitutes itself so
/// every supervised generation is canaried and persisted.
pub fn supervised_retrain_with(
    collector: &Arc<ProbeCollector>,
    publisher: &Arc<dyn GenerationPublisher>,
    pipeline: &Arc<dyn TrainPipeline>,
    supervision: &SupervisionConfig,
    health: &HealthMonitor,
    seed: u64,
    cancel: &AtomicBool,
) -> Result<TrainReport, TrainFailure> {
    let _span = diagnet_obs::span("platform.retrain.supervised");
    let obs = diagnet_obs::global();
    let backend = pipeline.kind().token();
    let mut attempt = 0u32;
    loop {
        if cancel.load(Ordering::Relaxed) {
            return Err(TrainFailure::Cancelled);
        }
        let timer = obs
            .histogram(
                RETRAIN_DURATION_SECONDS,
                &[("backend", backend)],
                "wall-clock duration of one training generation",
            )
            .start_timer();
        let result = run_attempt(collector, publisher, pipeline, supervision.budget, seed);
        timer.stop();
        let outcome = if result.is_ok() { "ok" } else { "error" };
        obs.counter(
            RETRAIN_TOTAL,
            &[("backend", backend), ("outcome", outcome)],
            "retrain attempts by outcome",
        )
        .inc();
        match result {
            Ok(report) => {
                health.record_success();
                return Ok(report);
            }
            Err(failure) => {
                obs.counter(
                    RETRAIN_FAILURES_TOTAL,
                    &[("backend", backend), ("kind", failure.token())],
                    "failed retrain attempts by failure kind",
                )
                .inc();
                attempt += 1;
                if !failure.retryable() || attempt >= supervision.max_attempts {
                    health.record_failure(failure.to_string(), publisher.has_model());
                    return Err(failure);
                }
                obs.counter(
                    RETRAIN_RETRIES_TOTAL,
                    &[("backend", backend)],
                    "retrain retries after transient failures",
                )
                .inc();
                sleep_cancellable(backoff_delay(supervision, attempt), cancel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{Generation, StandardPipeline};
    use diagnet::backend::{BackendConfig, BackendKind};
    use diagnet::config::DiagNetConfig;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::metrics::FeatureSchema;
    use diagnet_sim::world::World;
    use std::sync::atomic::AtomicU32;

    fn fast_pipeline(world: &World) -> Arc<dyn TrainPipeline> {
        let mut model = DiagNetConfig::fast();
        model.epochs = 2;
        model.forest.n_trees = 5;
        Arc::new(StandardPipeline {
            kind: BackendKind::DiagNet,
            config: BackendConfig::from_diagnet(model),
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
        })
    }

    fn loaded(seed: u64) -> (World, Arc<ProbeCollector>) {
        let world = World::new();
        let collector = Arc::new(ProbeCollector::new(100_000, FeatureSchema::full()));
        let mut cfg = DatasetConfig::small(&world, seed);
        cfg.n_scenarios = 15;
        for s in Dataset::generate(&world, &cfg).expect("generate").samples {
            collector.submit(s);
        }
        (world, collector)
    }

    /// A pipeline that fails `fail_first` times, then delegates.
    #[derive(Debug)]
    struct FlakyPipeline {
        inner: Arc<dyn TrainPipeline>,
        remaining: AtomicU32,
    }

    impl TrainPipeline for FlakyPipeline {
        fn kind(&self) -> BackendKind {
            self.inner.kind()
        }

        fn train_generation(&self, data: &Dataset, seed: u64) -> Result<Generation, NnError> {
            if self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                panic!("flaky: injected failure");
            }
            self.inner.train_generation(data, seed)
        }
    }

    #[test]
    fn success_path_publishes_and_reports_serving() {
        let (world, collector) = loaded(101);
        let registry = Arc::new(ModelRegistry::new());
        let health = HealthMonitor::new();
        let report = supervised_retrain(
            &collector,
            &registry,
            &fast_pipeline(&world),
            &SupervisionConfig::default(),
            &health,
            101,
            &AtomicBool::new(false),
        )
        .unwrap();
        assert_eq!(report.version, 1);
        assert!(registry.is_ready());
        assert_eq!(health.state(), crate::health::HealthState::Serving);
    }

    #[test]
    fn panics_are_retried_until_recovery() {
        let (world, collector) = loaded(102);
        let registry = Arc::new(ModelRegistry::new());
        let health = HealthMonitor::new();
        let flaky: Arc<dyn TrainPipeline> = Arc::new(FlakyPipeline {
            inner: fast_pipeline(&world),
            remaining: AtomicU32::new(2),
        });
        let supervision = SupervisionConfig {
            base_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        };
        let report = supervised_retrain(
            &collector,
            &registry,
            &flaky,
            &supervision,
            &health,
            102,
            &AtomicBool::new(false),
        )
        .expect("third attempt recovers");
        assert_eq!(report.version, 1);
        assert_eq!(health.state(), crate::health::HealthState::Serving);
    }

    #[test]
    fn persistent_panics_degrade_without_touching_last_good() {
        let (world, collector) = loaded(103);
        let registry = Arc::new(ModelRegistry::new());
        let health = HealthMonitor::new();
        // Publish a good generation first.
        supervised_retrain(
            &collector,
            &registry,
            &fast_pipeline(&world),
            &SupervisionConfig::default(),
            &health,
            103,
            &AtomicBool::new(false),
        )
        .unwrap();
        let v1 = registry.version();
        let always_bad: Arc<dyn TrainPipeline> = Arc::new(FlakyPipeline {
            inner: fast_pipeline(&world),
            remaining: AtomicU32::new(u32::MAX),
        });
        let supervision = SupervisionConfig {
            base_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        };
        let failure = supervised_retrain(
            &collector,
            &registry,
            &always_bad,
            &supervision,
            &health,
            104,
            &AtomicBool::new(false),
        )
        .unwrap_err();
        assert!(matches!(failure, TrainFailure::Panicked(_)));
        assert_eq!(registry.version(), v1, "last-good generation untouched");
        assert!(matches!(
            health.state(),
            crate::health::HealthState::Degraded { .. }
        ));
    }

    #[test]
    fn training_errors_fail_fast_without_retry() {
        let world = World::new();
        let empty = Arc::new(ProbeCollector::new(10, FeatureSchema::full()));
        let registry = Arc::new(ModelRegistry::new());
        let health = HealthMonitor::new();
        let t0 = std::time::Instant::now();
        let failure = supervised_retrain(
            &empty,
            &registry,
            &fast_pipeline(&world),
            &SupervisionConfig::default(),
            &health,
            105,
            &AtomicBool::new(false),
        )
        .unwrap_err();
        assert!(matches!(failure, TrainFailure::Error(_)));
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "deterministic errors must not back off"
        );
        assert_eq!(
            health.state(),
            crate::health::HealthState::NoModel,
            "no last-good generation to degrade onto"
        );
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let config = SupervisionConfig::default();
        let d1 = backoff_delay(&config, 1);
        assert_eq!(d1, backoff_delay(&config, 1), "deterministic");
        assert!(d1 >= config.base_backoff / 2 && d1 < config.base_backoff);
        let d2 = backoff_delay(&config, 2);
        assert!(d2 >= config.base_backoff, "exponential growth");
        let deep = backoff_delay(&config, 30);
        assert!(deep < config.max_backoff, "capped (jitter keeps it below)");
        let other_seed = SupervisionConfig {
            jitter_seed: 7,
            ..SupervisionConfig::default()
        };
        assert_ne!(
            backoff_delay(&other_seed, 1),
            d1,
            "different seeds desynchronise"
        );
    }
}
