//! Probe ingestion: a bounded, thread-safe buffer of labelled
//! observations.
//!
//! Clients "periodically fetch network features from landmarks and visit
//! mockup services" (§IV-A(c)); those samples flow here. The buffer is
//! bounded — when full, the *oldest* samples are evicted, so the training
//! window slides with time (the paper retrained on the freshest two weeks
//! of data).

use diagnet_sim::dataset::{Dataset, Sample};
use diagnet_sim::metrics::FeatureSchema;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Thread-safe sliding buffer of samples.
#[derive(Debug)]
pub struct ProbeCollector {
    buffer: Mutex<VecDeque<Sample>>,
    capacity: usize,
    schema: FeatureSchema,
}

impl ProbeCollector {
    /// A collector holding at most `capacity` samples, expressed in
    /// `schema` (normally the full schema — clients report everything
    /// they can measure).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, schema: FeatureSchema) -> Self {
        assert!(capacity > 0, "ProbeCollector: capacity must be positive");
        ProbeCollector {
            buffer: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            schema,
        }
    }

    /// Ingest one sample. Returns `false` (and drops the sample) when its
    /// feature width does not match the collector's schema; evicts the
    /// oldest sample when full.
    pub fn submit(&self, sample: Sample) -> bool {
        if sample.features.len() != self.schema.n_features() {
            return false;
        }
        let mut buf = self.buffer.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(sample);
        true
    }

    /// Move every sample out of `pending` into the buffer under a single
    /// lock acquisition (the drain side of the service's bounded
    /// submission queue). Width is re-checked defensively; mismatching
    /// rows are dropped. Evicts oldest when full.
    pub fn ingest(&self, pending: &mut VecDeque<Sample>) {
        let mut buf = self.buffer.lock();
        self.ingest_into(&mut buf, pending);
    }

    /// Like [`ProbeCollector::ingest`] but gives up without blocking when
    /// the buffer lock is contended (e.g. a training snapshot in
    /// progress). Returns `false` when nothing was moved.
    pub fn try_ingest(&self, pending: &mut VecDeque<Sample>) -> bool {
        let Some(mut buf) = self.buffer.try_lock() else {
            return false;
        };
        self.ingest_into(&mut buf, pending);
        true
    }

    fn ingest_into(&self, buf: &mut VecDeque<Sample>, pending: &mut VecDeque<Sample>) {
        for sample in pending.drain(..) {
            if sample.features.len() != self.schema.n_features() {
                continue;
            }
            if buf.len() == self.capacity {
                buf.pop_front();
            }
            buf.push_back(sample);
        }
    }

    /// Current number of buffered samples.
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().is_empty()
    }

    /// Number of buffered *faulty* samples (ground-truth labelled).
    pub fn n_faulty(&self) -> usize {
        self.buffer
            .lock()
            .iter()
            .filter(|s| s.label.is_faulty())
            .count()
    }

    /// Snapshot the buffer as a [`Dataset`] without consuming it.
    pub fn snapshot(&self) -> Dataset {
        let buf = self.buffer.lock();
        Dataset {
            schema: self.schema.clone(),
            samples: buf.iter().cloned().collect(),
        }
    }

    /// Drain the buffer into a [`Dataset`] (leaves the collector empty).
    pub fn drain(&self) -> Dataset {
        let mut buf = self.buffer.lock();
        Dataset {
            schema: self.schema.clone(),
            samples: buf.drain(..).collect(),
        }
    }

    /// The schema samples must conform to.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;
    use std::sync::Arc;

    fn samples(n_scenarios: usize, seed: u64) -> Vec<Sample> {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, seed);
        cfg.n_scenarios = n_scenarios;
        Dataset::generate(&world, &cfg).expect("generate").samples
    }

    #[test]
    fn submit_and_snapshot() {
        let collector = ProbeCollector::new(1000, FeatureSchema::full());
        let samples = samples(2, 1);
        for s in &samples {
            assert!(collector.submit(s.clone()));
        }
        assert_eq!(collector.len(), samples.len());
        let snap = collector.snapshot();
        assert_eq!(snap.len(), samples.len());
        assert_eq!(collector.len(), samples.len(), "snapshot must not consume");
    }

    #[test]
    fn drain_empties() {
        let collector = ProbeCollector::new(1000, FeatureSchema::full());
        for s in samples(1, 2) {
            collector.submit(s);
        }
        let ds = collector.drain();
        assert!(!ds.is_empty());
        assert!(collector.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let collector = ProbeCollector::new(10, FeatureSchema::full());
        let all = samples(1, 3); // 100 samples
        for s in &all {
            collector.submit(s.clone());
        }
        assert_eq!(collector.len(), 10);
        let snap = collector.snapshot();
        // The survivors are the 10 newest.
        assert_eq!(snap.samples, all[all.len() - 10..].to_vec());
    }

    #[test]
    fn wrong_width_rejected() {
        let collector = ProbeCollector::new(10, FeatureSchema::known());
        let mut s = samples(1, 4)[0].clone();
        assert_eq!(s.features.len(), 55);
        assert!(
            !collector.submit(s.clone()),
            "55-wide sample vs 40-wide schema"
        );
        s.features.truncate(40);
        assert!(collector.submit(s));
    }

    #[test]
    fn concurrent_submissions_all_land() {
        let collector = Arc::new(ProbeCollector::new(100_000, FeatureSchema::full()));
        let all = samples(2, 5);
        let chunk = all.len() / 4;
        std::thread::scope(|scope| {
            for part in all.chunks(chunk.max(1)) {
                let collector = Arc::clone(&collector);
                scope.spawn(move || {
                    for s in part {
                        collector.submit(s.clone());
                    }
                });
            }
        });
        assert_eq!(collector.len(), all.len());
    }
}
