//! Chaos fault-injection harness (compiled behind the `chaos` feature).
//!
//! The paper injects six fault families into the *network* under test
//! (§IV-A, `tc netem`); this module injects faults into the *platform
//! itself* so the resilience layer can be proven rather than assumed:
//!
//! * [`ChaosBackend`] — a [`Backend`] decorator that panics, stalls,
//!   returns NaN scores, or fails N calls then recovers;
//! * [`ChaosPipeline`] — a [`TrainPipeline`] decorator driven by a
//!   scripted fault schedule (panic / stall / error / NaN-model per
//!   generation), so tests can stage "three failed generations, then
//!   recovery" deterministically;
//! * [`ProbeCorruptor`] — a deterministic probe mangler (NaN injection,
//!   truncation, absurd magnitudes) for exercising admission control.
//!
//! Everything is seed-driven: a chaos test is exactly reproducible.

use crate::trainer::{Generation, TrainPipeline};
use diagnet::backend::{Backend, BackendEnvelope, BackendInfo, ExtensionInfo};
use diagnet::ranking::CauseRanking;
use diagnet_nn::error::NnError;
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::{Dataset, Sample};
use diagnet_sim::metrics::FeatureSchema;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Serving faults.
// ---------------------------------------------------------------------------

/// What a [`ChaosBackend`] does on each ranking call.
#[derive(Debug)]
pub enum ServeFault {
    /// Panic on every call.
    Panic,
    /// Sleep before delegating.
    Slow(Duration),
    /// Return all-NaN scores (a "diverged model" that parses fine).
    NanScores,
    /// Panic for the first `n` calls, then behave (fail-N-then-recover).
    FailFirstN(AtomicU64),
    /// Behave for the first `n` calls, then return all-NaN scores — a
    /// **gray failure** (Flock): training-time validation passes (the
    /// publish gate's probe spends calls from the budget), live serving
    /// degrades later. Only behavioural observation — the canary rollout
    /// loop — can catch it.
    NanAfterN(AtomicU64),
}

/// A [`Backend`] decorator that injects serving faults. Deliberately does
/// **not** override [`Backend::validate`]: the default probe-row check
/// runs against the decorated scoring path, which is exactly how the
/// publish gate catches a NaN-scoring generation.
pub struct ChaosBackend {
    inner: Arc<dyn Backend>,
    fault: ServeFault,
}

impl ChaosBackend {
    /// Wrap `inner` with `fault`.
    pub fn new(inner: Arc<dyn Backend>, fault: ServeFault) -> Self {
        ChaosBackend { inner, fault }
    }

    /// Convenience: fail the first `n` calls, then recover.
    pub fn fail_first(inner: Arc<dyn Backend>, n: u64) -> Self {
        ChaosBackend::new(inner, ServeFault::FailFirstN(AtomicU64::new(n)))
    }

    /// Convenience: behave for the first `n` ranking calls, then emit NaN
    /// scores (gray failure). Note [`Backend::validate`] itself scores one
    /// probe row, consuming one call from the budget.
    pub fn nan_after(inner: Arc<dyn Backend>, n: u64) -> Self {
        ChaosBackend::new(inner, ServeFault::NanAfterN(AtomicU64::new(n)))
    }

    fn apply_fault(&self) -> bool {
        match &self.fault {
            ServeFault::Panic => panic!("chaos: injected serving panic"),
            ServeFault::Slow(delay) => {
                std::thread::sleep(*delay);
                false
            }
            ServeFault::NanScores => true,
            ServeFault::FailFirstN(remaining) => {
                if remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    panic!("chaos: injected serving panic (fail-first-N)");
                }
                false
            }
            ServeFault::NanAfterN(remaining) => remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_err(),
        }
    }

    fn nan_ranking(schema: &FeatureSchema) -> CauseRanking {
        CauseRanking::from_scores(vec![f32::NAN; schema.n_features()])
    }
}

impl fmt::Debug for ChaosBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosBackend")
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

impl Backend for ChaosBackend {
    fn describe(&self) -> BackendInfo {
        self.inner.describe()
    }

    fn rank_causes(&self, features: &[f32], schema: &FeatureSchema) -> CauseRanking {
        if self.apply_fault() {
            return Self::nan_ranking(schema);
        }
        self.inner.rank_causes(features, schema)
    }

    fn rank_causes_batch(&self, rows: &[Vec<f32>], schema: &FeatureSchema) -> Vec<CauseRanking> {
        if self.apply_fault() {
            return rows.iter().map(|_| Self::nan_ranking(schema)).collect();
        }
        self.inner.rank_causes_batch(rows, schema)
    }

    fn extend(&self, schema: &FeatureSchema) -> Result<ExtensionInfo, NnError> {
        self.inner.extend(schema)
    }

    fn specialize_for(
        &self,
        service_data: &Dataset,
        seed: u64,
    ) -> Result<Box<dyn Backend>, NnError> {
        self.inner.specialize_for(service_data, seed)
    }

    fn to_envelope(&self) -> BackendEnvelope {
        self.inner.to_envelope()
    }

    fn as_any(&self) -> &dyn Any {
        self.inner.as_any()
    }
}

// ---------------------------------------------------------------------------
// Training faults.
// ---------------------------------------------------------------------------

/// What a [`ChaosPipeline`] does to one training generation.
#[derive(Debug, Clone, Copy)]
pub enum TrainFault {
    /// Panic mid-generation.
    Panic,
    /// Sleep before training (drives the supervisor's budget timeout).
    Stall(Duration),
    /// Return a training error.
    Error,
    /// Train normally, then wrap every produced model in a NaN-scoring
    /// [`ChaosBackend`] — a "diverged generation" the publish gate must
    /// refuse.
    NanModels,
    /// Train normally, then wrap every produced model in a
    /// [`ServeFault::NanAfterN`] decorator with this per-model call
    /// budget — a **gray generation** that sails through the publish gate
    /// and only degrades under live traffic; the canary rollout loop must
    /// catch and roll it back.
    GrayModels(u64),
}

/// A [`TrainPipeline`] decorator that replays a scripted fault schedule:
/// each `train_generation` call pops the next fault (front first); an
/// exhausted schedule delegates cleanly, which is how recovery scenarios
/// are staged.
#[derive(Debug)]
pub struct ChaosPipeline {
    inner: Arc<dyn TrainPipeline>,
    schedule: Mutex<VecDeque<TrainFault>>,
}

impl ChaosPipeline {
    /// Wrap `inner` with a fault schedule.
    pub fn scripted(inner: Arc<dyn TrainPipeline>, faults: Vec<TrainFault>) -> Self {
        ChaosPipeline {
            inner,
            schedule: Mutex::new(faults.into()),
        }
    }

    /// Append a fault to the schedule (e.g. re-arm between phases).
    pub fn push_fault(&self, fault: TrainFault) {
        self.schedule.lock().push_back(fault);
    }

    /// Faults not yet consumed.
    pub fn remaining_faults(&self) -> usize {
        self.schedule.lock().len()
    }
}

impl TrainPipeline for ChaosPipeline {
    fn kind(&self) -> diagnet::backend::BackendKind {
        self.inner.kind()
    }

    fn train_generation(&self, data: &Dataset, seed: u64) -> Result<Generation, NnError> {
        let fault = self.schedule.lock().pop_front();
        match fault {
            None => self.inner.train_generation(data, seed),
            Some(TrainFault::Panic) => panic!("chaos: injected training panic"),
            Some(TrainFault::Stall(delay)) => {
                std::thread::sleep(delay);
                self.inner.train_generation(data, seed)
            }
            Some(TrainFault::Error) => Err(NnError::InvalidTrainingData(
                "chaos: injected training error".into(),
            )),
            Some(TrainFault::NanModels) => {
                let generation = self.inner.train_generation(data, seed)?;
                Ok(Generation {
                    backend: generation.backend,
                    general: Arc::new(ChaosBackend::new(generation.general, ServeFault::NanScores)),
                    specialized: generation
                        .specialized
                        .into_iter()
                        .map(|(sid, m)| {
                            (
                                sid,
                                Arc::new(ChaosBackend::new(m, ServeFault::NanScores))
                                    as Arc<dyn Backend>,
                            )
                        })
                        .collect(),
                    specialized_ids: generation.specialized_ids,
                })
            }
            Some(TrainFault::GrayModels(budget)) => {
                let generation = self.inner.train_generation(data, seed)?;
                Ok(Generation {
                    backend: generation.backend,
                    general: Arc::new(ChaosBackend::nan_after(generation.general, budget)),
                    specialized: generation
                        .specialized
                        .into_iter()
                        .map(|(sid, m)| {
                            (
                                sid,
                                Arc::new(ChaosBackend::nan_after(m, budget)) as Arc<dyn Backend>,
                            )
                        })
                        .collect(),
                    specialized_ids: generation.specialized_ids,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Probe corruption.
// ---------------------------------------------------------------------------

/// How a probe was mangled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// One feature replaced with NaN.
    Nan,
    /// One feature replaced with +Inf.
    Inf,
    /// The feature vector truncated to half its width.
    Truncated,
    /// One feature replaced with an absurd magnitude.
    Huge,
}

/// Deterministically corrupts a configurable fraction of probes — the
/// "10 % corrupt probes" leg of the chaos acceptance scenario.
#[derive(Debug)]
pub struct ProbeCorruptor {
    rate: f64,
    rng: Mutex<SplitMix64>,
}

impl ProbeCorruptor {
    /// Corrupt roughly `rate` (in `[0, 1]`) of the probes passed through,
    /// deterministically in `seed`.
    pub fn new(rate: f64, seed: u64) -> Self {
        ProbeCorruptor {
            rate,
            rng: Mutex::new(SplitMix64::new(seed)),
        }
    }

    /// Maybe mangle `sample`; reports what was done to it.
    pub fn maybe_corrupt(&self, sample: &mut Sample) -> Option<CorruptionKind> {
        let mut rng = self.rng.lock();
        if rng.next_f64() >= self.rate {
            return None;
        }
        let kind = match rng.next_below(4) {
            0 => CorruptionKind::Nan,
            1 => CorruptionKind::Inf,
            2 => CorruptionKind::Truncated,
            _ => CorruptionKind::Huge,
        };
        let n = sample.features.len().max(1);
        let j = rng.next_below(n);
        match kind {
            CorruptionKind::Nan => sample.features[j] = f32::NAN,
            CorruptionKind::Inf => sample.features[j] = f32::INFINITY,
            CorruptionKind::Truncated => sample.features.truncate(n / 2),
            CorruptionKind::Huge => sample.features[j] = 4.2e30,
        }
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet::backend::ForestBackend;
    use diagnet_forest::ForestConfig;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;

    fn small_backend() -> Arc<dyn Backend> {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 21);
        cfg.n_scenarios = 8;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        Arc::new(ForestBackend::train(
            &ForestConfig::default(),
            &ds,
            &FeatureSchema::known(),
            21,
        ))
    }

    #[test]
    fn nan_scores_fail_the_validate_probe() {
        let chaotic = ChaosBackend::new(small_backend(), ServeFault::NanScores);
        assert!(chaotic.validate().is_err(), "publish gate must catch NaNs");
        let ranking = chaotic.rank_causes(
            &vec![0.0; FeatureSchema::full().n_features()],
            &FeatureSchema::full(),
        );
        assert!(!ranking.all_finite());
    }

    #[test]
    fn fail_first_n_recovers() {
        let chaotic = ChaosBackend::fail_first(small_backend(), 2);
        let schema = FeatureSchema::full();
        let probe = vec![0.0; schema.n_features()];
        for _ in 0..2 {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaotic.rank_causes(&probe, &schema)
            }));
            assert!(outcome.is_err(), "first calls must panic");
        }
        let ranking = chaotic.rank_causes(&probe, &schema);
        assert!(ranking.all_finite(), "recovered after N failures");
    }

    #[test]
    fn corruptor_is_deterministic_and_rate_bound() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 22);
        cfg.n_scenarios = 10;
        let samples = Dataset::generate(&world, &cfg).expect("generate").samples;

        let run = |seed: u64| {
            let corruptor = ProbeCorruptor::new(0.1, seed);
            let mut kinds = Vec::new();
            for s in &samples {
                let mut s = s.clone();
                kinds.push(corruptor.maybe_corrupt(&mut s));
            }
            kinds
        };
        let a = run(7);
        assert_eq!(a, run(7), "deterministic in the seed");
        let corrupted = a.iter().filter(|k| k.is_some()).count();
        let rate = corrupted as f64 / samples.len() as f64;
        assert!(
            (0.05..0.2).contains(&rate),
            "~10% corruption expected, got {rate}"
        );
    }
}
