//! Versioned model registry.
//!
//! The analysis service "builds and shares the root cause inference
//! model" (paper Fig. 1). Publications atomically swap `Arc` snapshots
//! behind a `parking_lot::RwLock`, so a diagnosis that started with
//! version *n* keeps using it even while version *n + 1* is being
//! published.
//!
//! Since the backend refactor the registry stores `Arc<dyn Backend>`: any
//! model behind the [`Backend`] trait (DiagNet, the forest baseline, naive
//! Bayes, or something new) can be served and hot-swapped. The historic
//! DiagNet-typed [`ModelRegistry::publish`] entry points remain as thin
//! wrappers.

use diagnet::backend::Backend;
use diagnet::model::DiagNet;
use diagnet_sim::service::ServiceId;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Name of the counter of registry publications (label `scope`:
/// `general` for a full generation, `specialized` for a single-service
/// incremental publish).
pub const REGISTRY_PUBLISH_TOTAL: &str = "diagnet_registry_publish_total";
/// Name of the gauge holding the most recently published registry version.
pub const REGISTRY_VERSION: &str = "diagnet_registry_version";

/// Publications are rare (one per training generation), so handles are
/// resolved per call rather than cached.
fn record_publish(scope: &'static str, version: u64) {
    let obs = diagnet_obs::global();
    obs.counter(
        REGISTRY_PUBLISH_TOTAL,
        &[("scope", scope)],
        "model registry publications",
    )
    .inc();
    obs.gauge(
        REGISTRY_VERSION,
        &[],
        "most recently published registry version",
    )
    .set(version as f64);
}

/// A candidate generation observing live traffic before promotion.
#[derive(Debug)]
struct CanaryState {
    general: Arc<dyn Backend>,
    specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
    version: u64,
    frac: f32,
}

/// Inner state guarded by the lock.
#[derive(Debug, Default)]
struct State {
    general: Option<Arc<dyn Backend>>,
    specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
    /// Version of the *active* generation. Never moves backwards: a
    /// rollback simply discards the canary, whose (higher) version was
    /// never active.
    version: u64,
    /// High-water mark of every version ever handed out (active publishes
    /// *and* canary candidates), so a direct publish landing during a
    /// canary phase cannot collide with the candidate's version.
    last_assigned: u64,
    canary: Option<CanaryState>,
}

/// Where [`ModelRegistry::route_for`] sent a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget {
    /// The active generation served this probe.
    Active,
    /// The canary candidate served this probe.
    Canary,
}

/// A routing decision: the model to score with, the generation it belongs
/// to, and — when routed to the canary — the active baseline captured
/// under the *same* lock, so churn comparisons are generation-consistent.
#[derive(Debug, Clone)]
pub struct Routed {
    /// Model that should serve this probe.
    pub model: Arc<dyn Backend>,
    /// Registry version of [`Routed::model`].
    pub version: u64,
    /// Which generation was selected.
    pub target: RouteTarget,
    /// Active model + version for side-by-side comparison; `Some` only
    /// when the probe was routed to the canary and an active model exists.
    pub baseline: Option<(Arc<dyn Backend>, u64)>,
}

/// Deterministic canary slotting: the top 24 bits of the probe key as a
/// unit fraction, compared against the configured traffic fraction. The
/// same probe key always lands on the same side, so a canary experiment
/// is replayable.
pub fn canary_slot(key: u64, frac: f32) -> bool {
    let unit = (key >> 40) as f64 / f64::from(1u32 << 24);
    (unit as f32) < frac
}

/// Thread-safe registry of the general model and per-service specialised
/// models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    state: RwLock<State>,
}

impl ModelRegistry {
    /// An empty registry (no models yet).
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Publish a new generation of models behind the backend abstraction,
    /// bumping the version. A direct publish supersedes any in-flight
    /// canary (the candidate's baseline just changed under it, so its
    /// observations are void) — the rollout controller notices the
    /// candidate is gone and abandons the trial.
    pub fn publish_backend(
        &self,
        general: Arc<dyn Backend>,
        specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
    ) -> u64 {
        let mut state = self.state.write();
        state.general = Some(general);
        state.specialized = specialized;
        state.last_assigned += 1;
        state.version = state.last_assigned;
        state.canary = None;
        record_publish("general", state.version);
        state.version
    }

    /// Publish a new generation of DiagNet models (wrapper over
    /// [`ModelRegistry::publish_backend`]).
    pub fn publish(&self, general: DiagNet, specialized: BTreeMap<ServiceId, DiagNet>) -> u64 {
        self.publish_backend(
            Arc::new(general),
            specialized
                .into_iter()
                .map(|(sid, m)| (sid, Arc::new(m) as Arc<dyn Backend>))
                .collect(),
        )
    }

    /// Publish (or replace) the specialised backend of a single service
    /// without touching the others — the cheap onboarding path of §IV-F.
    pub fn publish_specialized_backend(&self, sid: ServiceId, model: Arc<dyn Backend>) -> u64 {
        let mut state = self.state.write();
        state.specialized.insert(sid, model);
        state.last_assigned += 1;
        state.version = state.last_assigned;
        record_publish("specialized", state.version);
        state.version
    }

    /// DiagNet-typed wrapper over
    /// [`ModelRegistry::publish_specialized_backend`].
    pub fn publish_specialized(&self, sid: ServiceId, model: DiagNet) -> u64 {
        self.publish_specialized_backend(sid, Arc::new(model))
    }

    /// The model to use for `sid`: its specialised model when published,
    /// the general model otherwise, `None` before any publication.
    pub fn model_for(&self, sid: ServiceId) -> Option<Arc<dyn Backend>> {
        let state = self.state.read();
        state
            .specialized
            .get(&sid)
            .cloned()
            .or_else(|| state.general.clone())
    }

    /// The general model, if published.
    pub fn general(&self) -> Option<Arc<dyn Backend>> {
        self.state.read().general.clone()
    }

    /// Current registry version (0 = nothing published yet).
    pub fn version(&self) -> u64 {
        self.state.read().version
    }

    /// Services with a specialised model, in ascending id order (the
    /// map is ordered, so no extra sort is needed).
    pub fn specialized_services(&self) -> Vec<ServiceId> {
        self.state.read().specialized.keys().copied().collect()
    }

    /// True once any model has been published.
    pub fn is_ready(&self) -> bool {
        self.state.read().general.is_some()
    }

    /// Stage a candidate generation as a canary receiving `frac` of
    /// diagnose traffic. Allocates and returns the candidate's version
    /// (above every version ever assigned) without touching the active
    /// generation — the version gauge moves only on promotion. Replaces
    /// any previous canary.
    pub fn begin_canary(
        &self,
        general: Arc<dyn Backend>,
        specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
        frac: f32,
    ) -> u64 {
        let mut state = self.state.write();
        state.last_assigned += 1;
        let version = state.last_assigned;
        state.canary = Some(CanaryState {
            general,
            specialized,
            version,
            frac,
        });
        version
    }

    /// Promote the canary to active in one atomic swap: readers see either
    /// the old active generation or the whole candidate, never a mixture.
    /// Returns the promoted version, or `None` when no canary is staged.
    pub fn promote_canary(&self) -> Option<u64> {
        let mut state = self.state.write();
        let canary = state.canary.take()?;
        state.general = Some(canary.general);
        state.specialized = canary.specialized;
        state.version = canary.version;
        record_publish("canary", canary.version);
        Some(canary.version)
    }

    /// Discard the canary, restoring 100 % of traffic to the active
    /// generation (which never stopped serving — its version is
    /// unchanged). Returns the demoted candidate's version.
    pub fn demote_canary(&self) -> Option<u64> {
        let mut state = self.state.write();
        let canary = state.canary.take()?;
        Some(canary.version)
    }

    /// Version and traffic fraction of the staged canary, if any.
    pub fn canary_info(&self) -> Option<(u64, f32)> {
        self.state
            .read()
            .canary
            .as_ref()
            .map(|c| (c.version, c.frac))
    }

    /// True while a canary is staged. Cheap; the diagnose hot path checks
    /// this before computing a probe key.
    pub fn has_canary(&self) -> bool {
        self.state.read().canary.is_some()
    }

    /// Route one probe: the canary when staged *and* the deterministic
    /// [`canary_slot`] of `key` falls inside its traffic fraction, the
    /// active generation otherwise. Model, version, and (for canary
    /// routes) the active baseline are read under a single lock guard, so
    /// the caller always observes a whole generation.
    pub fn route_for(&self, sid: ServiceId, key: u64) -> Option<Routed> {
        let state = self.state.read();
        if let Some(canary) = state.canary.as_ref() {
            if canary_slot(key, canary.frac) {
                let model = canary
                    .specialized
                    .get(&sid)
                    .cloned()
                    .unwrap_or_else(|| canary.general.clone());
                let baseline = state
                    .specialized
                    .get(&sid)
                    .cloned()
                    .or_else(|| state.general.clone())
                    .map(|m| (m, state.version));
                return Some(Routed {
                    model,
                    version: canary.version,
                    target: RouteTarget::Canary,
                    baseline,
                });
            }
        }
        let model = state
            .specialized
            .get(&sid)
            .cloned()
            .or_else(|| state.general.clone())?;
        Some(Routed {
            model,
            version: state.version,
            target: RouteTarget::Active,
            baseline: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet::backend::BackendKind;
    use diagnet::config::DiagNetConfig;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;
    use std::sync::OnceLock;

    fn trained_pair() -> &'static (DiagNet, DiagNet) {
        static CELL: OnceLock<(DiagNet, DiagNet)> = OnceLock::new();
        CELL.get_or_init(|| {
            let world = World::new();
            let mut cfg = DatasetConfig::small(&world, 71);
            cfg.n_scenarios = 15;
            let ds = Dataset::generate(&world, &cfg).expect("generate");
            let split = ds.split(0.8, 71);
            let mut mc = DiagNetConfig::fast();
            mc.epochs = 2;
            let general = DiagNet::train(&mc, &split.train, 71).unwrap();
            let spec = general
                .specialize(&split.train.filter_service(ServiceId(0)), 71)
                .unwrap();
            (general, spec)
        })
    }

    /// Downcast a served backend to the DiagNet the tests published.
    fn as_diagnet(model: &Arc<dyn Backend>) -> &DiagNet {
        model.as_any().downcast_ref().expect("published a DiagNet")
    }

    #[test]
    fn empty_registry_serves_nothing() {
        let reg = ModelRegistry::new();
        assert!(!reg.is_ready());
        assert_eq!(reg.version(), 0);
        assert!(reg.model_for(ServiceId(0)).is_none());
        assert!(reg.general().is_none());
    }

    #[test]
    fn publish_and_dispatch() {
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        let mut specs = BTreeMap::new();
        specs.insert(ServiceId(0), spec.clone());
        let v = reg.publish(general.clone(), specs);
        assert_eq!(v, 1);
        assert!(reg.is_ready());
        // Service 0 gets its specialised model, others the general one.
        let m0 = reg.model_for(ServiceId(0)).unwrap();
        let m1 = reg.model_for(ServiceId(1)).unwrap();
        assert_eq!(as_diagnet(&m0).network, spec.network);
        assert_eq!(as_diagnet(&m1).network, general.network);
        assert_eq!(reg.specialized_services(), vec![ServiceId(0)]);
    }

    #[test]
    fn incremental_specialised_publication() {
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        assert_eq!(reg.version(), 1);
        reg.publish_specialized(ServiceId(3), spec.clone());
        assert_eq!(reg.version(), 2);
        let m3 = reg.model_for(ServiceId(3)).unwrap();
        assert_eq!(as_diagnet(&m3).network, spec.network);
        // General stayed in place.
        let g = reg.general().unwrap();
        assert_eq!(as_diagnet(&g).network, general.network);
    }

    #[test]
    fn snapshots_survive_republication() {
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        let snapshot = reg.model_for(ServiceId(5)).unwrap();
        // New generation published while we hold the old Arc.
        reg.publish(spec.clone(), BTreeMap::new());
        assert_eq!(
            as_diagnet(&snapshot).network,
            general.network,
            "held snapshot must not change"
        );
        let g = reg.general().unwrap();
        assert_eq!(as_diagnet(&g).network, spec.network);
    }

    /// The global registry is shared across concurrently running tests, so
    /// this asserts deltas, not absolute values.
    #[test]
    #[cfg(feature = "obs")]
    fn publications_are_counted() {
        let before = diagnet_obs::global()
            .snapshot()
            .counter(REGISTRY_PUBLISH_TOTAL, &[("scope", "general")])
            .unwrap_or(0);
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        reg.publish_specialized(ServiceId(1), spec.clone());
        let snap = diagnet_obs::global().snapshot();
        let after = snap
            .counter(REGISTRY_PUBLISH_TOTAL, &[("scope", "general")])
            .unwrap_or(0);
        assert!(after > before, "general publish not counted");
        assert!(
            snap.counter(REGISTRY_PUBLISH_TOTAL, &[("scope", "specialized")])
                .unwrap_or(0)
                >= 1
        );
        // Every test registry starts at version 0, so whoever wrote the
        // gauge last published at least version 1.
        assert!(snap.gauge(REGISTRY_VERSION, &[]).unwrap() >= 1.0);
    }

    #[test]
    fn serves_any_backend_kind() {
        use diagnet::backend::ForestBackend;
        use diagnet_forest::ForestConfig;
        use diagnet_sim::metrics::FeatureSchema;

        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 72);
        cfg.n_scenarios = 10;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let forest =
            ForestBackend::train(&ForestConfig::default(), &ds, &FeatureSchema::known(), 72);
        let reg = ModelRegistry::new();
        reg.publish_backend(Arc::new(forest), BTreeMap::new());
        let served = reg.model_for(ServiceId(1)).unwrap();
        assert_eq!(served.describe().kind, BackendKind::Forest);
        let schema = FeatureSchema::full();
        let ranking = served.rank_causes(&ds.samples[0].features, &schema);
        assert_eq!(ranking.scores.len(), schema.n_features());
    }

    #[test]
    fn canary_promote_and_demote_versioning() {
        let (general, candidate) = trained_pair();
        let reg = ModelRegistry::new();
        assert_eq!(reg.publish(general.clone(), BTreeMap::new()), 1);

        let cv = reg.begin_canary(Arc::new(candidate.clone()), BTreeMap::new(), 0.5);
        assert_eq!(cv, 2, "candidate version allocated above active");
        assert_eq!(reg.version(), 1, "active version untouched by staging");
        assert_eq!(reg.canary_info(), Some((2, 0.5)));

        // Demote: active generation and version unchanged, canary gone.
        assert_eq!(reg.demote_canary(), Some(2));
        assert!(!reg.has_canary());
        assert_eq!(reg.version(), 1);
        assert_eq!(
            as_diagnet(&reg.general().unwrap()).network,
            general.network,
            "active model untouched by rollback"
        );

        // A fresh canary gets a fresh version even after the demotion.
        let cv2 = reg.begin_canary(Arc::new(candidate.clone()), BTreeMap::new(), 1.0);
        assert_eq!(cv2, 3);
        assert_eq!(reg.promote_canary(), Some(3));
        assert_eq!(reg.version(), 3);
        assert_eq!(
            as_diagnet(&reg.general().unwrap()).network,
            candidate.network
        );
        assert_eq!(reg.promote_canary(), None, "nothing left to promote");
    }

    #[test]
    fn direct_publish_supersedes_canary_without_version_collision() {
        let (general, candidate) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        let cv = reg.begin_canary(Arc::new(candidate.clone()), BTreeMap::new(), 0.5);
        let direct = reg.publish(general.clone(), BTreeMap::new());
        assert!(
            direct > cv,
            "direct publish must not reuse the candidate version"
        );
        assert!(!reg.has_canary(), "direct publish voids the canary");
    }

    #[test]
    fn route_for_is_deterministic_and_respects_fraction() {
        let (general, candidate) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        reg.begin_canary(Arc::new(candidate.clone()), BTreeMap::new(), 0.25);

        let mut canary_hits = 0usize;
        for key in 0..512u64 {
            // Spread keys across the top bits the slotter inspects.
            let spread = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let a = reg.route_for(ServiceId(1), spread).unwrap();
            let b = reg.route_for(ServiceId(1), spread).unwrap();
            assert_eq!(a.target, b.target, "same key must route the same way");
            match a.target {
                RouteTarget::Canary => {
                    canary_hits += 1;
                    assert_eq!(a.version, 2);
                    let (baseline, bv) = a.baseline.expect("canary route carries baseline");
                    assert_eq!(bv, 1);
                    assert_eq!(as_diagnet(&baseline).network, general.network);
                    assert_eq!(as_diagnet(&a.model).network, candidate.network);
                }
                RouteTarget::Active => {
                    assert_eq!(a.version, 1);
                    assert!(a.baseline.is_none());
                    assert_eq!(as_diagnet(&a.model).network, general.network);
                }
            }
        }
        assert!(
            canary_hits > 64 && canary_hits < 256,
            "~25 % of spread keys should hit the canary, got {canary_hits}/512"
        );

        // Fraction extremes.
        assert!(canary_slot(u64::MAX / 2, 1.0));
        assert!(!canary_slot(u64::MAX / 2, 0.0));
    }
}
