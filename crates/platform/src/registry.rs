//! Versioned model registry.
//!
//! The analysis service "builds and shares the root cause inference
//! model" (paper Fig. 1). Publications atomically swap `Arc` snapshots
//! behind a `parking_lot::RwLock`, so a diagnosis that started with
//! version *n* keeps using it even while version *n + 1* is being
//! published.
//!
//! Since the backend refactor the registry stores `Arc<dyn Backend>`: any
//! model behind the [`Backend`] trait (DiagNet, the forest baseline, naive
//! Bayes, or something new) can be served and hot-swapped. The historic
//! DiagNet-typed [`ModelRegistry::publish`] entry points remain as thin
//! wrappers.

use diagnet::backend::Backend;
use diagnet::model::DiagNet;
use diagnet_sim::service::ServiceId;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Name of the counter of registry publications (label `scope`:
/// `general` for a full generation, `specialized` for a single-service
/// incremental publish).
pub const REGISTRY_PUBLISH_TOTAL: &str = "diagnet_registry_publish_total";
/// Name of the gauge holding the most recently published registry version.
pub const REGISTRY_VERSION: &str = "diagnet_registry_version";

/// Publications are rare (one per training generation), so handles are
/// resolved per call rather than cached.
fn record_publish(scope: &'static str, version: u64) {
    let obs = diagnet_obs::global();
    obs.counter(
        REGISTRY_PUBLISH_TOTAL,
        &[("scope", scope)],
        "model registry publications",
    )
    .inc();
    obs.gauge(
        REGISTRY_VERSION,
        &[],
        "most recently published registry version",
    )
    .set(version as f64);
}

/// Inner state guarded by the lock.
#[derive(Debug, Default)]
struct State {
    general: Option<Arc<dyn Backend>>,
    specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
    version: u64,
}

/// Thread-safe registry of the general model and per-service specialised
/// models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    state: RwLock<State>,
}

impl ModelRegistry {
    /// An empty registry (no models yet).
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Publish a new generation of models behind the backend abstraction,
    /// bumping the version.
    pub fn publish_backend(
        &self,
        general: Arc<dyn Backend>,
        specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
    ) -> u64 {
        let mut state = self.state.write();
        state.general = Some(general);
        state.specialized = specialized;
        state.version += 1;
        record_publish("general", state.version);
        state.version
    }

    /// Publish a new generation of DiagNet models (wrapper over
    /// [`ModelRegistry::publish_backend`]).
    pub fn publish(&self, general: DiagNet, specialized: BTreeMap<ServiceId, DiagNet>) -> u64 {
        self.publish_backend(
            Arc::new(general),
            specialized
                .into_iter()
                .map(|(sid, m)| (sid, Arc::new(m) as Arc<dyn Backend>))
                .collect(),
        )
    }

    /// Publish (or replace) the specialised backend of a single service
    /// without touching the others — the cheap onboarding path of §IV-F.
    pub fn publish_specialized_backend(&self, sid: ServiceId, model: Arc<dyn Backend>) -> u64 {
        let mut state = self.state.write();
        state.specialized.insert(sid, model);
        state.version += 1;
        record_publish("specialized", state.version);
        state.version
    }

    /// DiagNet-typed wrapper over
    /// [`ModelRegistry::publish_specialized_backend`].
    pub fn publish_specialized(&self, sid: ServiceId, model: DiagNet) -> u64 {
        self.publish_specialized_backend(sid, Arc::new(model))
    }

    /// The model to use for `sid`: its specialised model when published,
    /// the general model otherwise, `None` before any publication.
    pub fn model_for(&self, sid: ServiceId) -> Option<Arc<dyn Backend>> {
        let state = self.state.read();
        state
            .specialized
            .get(&sid)
            .cloned()
            .or_else(|| state.general.clone())
    }

    /// The general model, if published.
    pub fn general(&self) -> Option<Arc<dyn Backend>> {
        self.state.read().general.clone()
    }

    /// Current registry version (0 = nothing published yet).
    pub fn version(&self) -> u64 {
        self.state.read().version
    }

    /// Services with a specialised model, in ascending id order (the
    /// map is ordered, so no extra sort is needed).
    pub fn specialized_services(&self) -> Vec<ServiceId> {
        self.state.read().specialized.keys().copied().collect()
    }

    /// True once any model has been published.
    pub fn is_ready(&self) -> bool {
        self.state.read().general.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet::backend::BackendKind;
    use diagnet::config::DiagNetConfig;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;
    use std::sync::OnceLock;

    fn trained_pair() -> &'static (DiagNet, DiagNet) {
        static CELL: OnceLock<(DiagNet, DiagNet)> = OnceLock::new();
        CELL.get_or_init(|| {
            let world = World::new();
            let mut cfg = DatasetConfig::small(&world, 71);
            cfg.n_scenarios = 15;
            let ds = Dataset::generate(&world, &cfg).expect("generate");
            let split = ds.split(0.8, 71);
            let mut mc = DiagNetConfig::fast();
            mc.epochs = 2;
            let general = DiagNet::train(&mc, &split.train, 71).unwrap();
            let spec = general
                .specialize(&split.train.filter_service(ServiceId(0)), 71)
                .unwrap();
            (general, spec)
        })
    }

    /// Downcast a served backend to the DiagNet the tests published.
    fn as_diagnet(model: &Arc<dyn Backend>) -> &DiagNet {
        model.as_any().downcast_ref().expect("published a DiagNet")
    }

    #[test]
    fn empty_registry_serves_nothing() {
        let reg = ModelRegistry::new();
        assert!(!reg.is_ready());
        assert_eq!(reg.version(), 0);
        assert!(reg.model_for(ServiceId(0)).is_none());
        assert!(reg.general().is_none());
    }

    #[test]
    fn publish_and_dispatch() {
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        let mut specs = BTreeMap::new();
        specs.insert(ServiceId(0), spec.clone());
        let v = reg.publish(general.clone(), specs);
        assert_eq!(v, 1);
        assert!(reg.is_ready());
        // Service 0 gets its specialised model, others the general one.
        let m0 = reg.model_for(ServiceId(0)).unwrap();
        let m1 = reg.model_for(ServiceId(1)).unwrap();
        assert_eq!(as_diagnet(&m0).network, spec.network);
        assert_eq!(as_diagnet(&m1).network, general.network);
        assert_eq!(reg.specialized_services(), vec![ServiceId(0)]);
    }

    #[test]
    fn incremental_specialised_publication() {
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        assert_eq!(reg.version(), 1);
        reg.publish_specialized(ServiceId(3), spec.clone());
        assert_eq!(reg.version(), 2);
        let m3 = reg.model_for(ServiceId(3)).unwrap();
        assert_eq!(as_diagnet(&m3).network, spec.network);
        // General stayed in place.
        let g = reg.general().unwrap();
        assert_eq!(as_diagnet(&g).network, general.network);
    }

    #[test]
    fn snapshots_survive_republication() {
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        let snapshot = reg.model_for(ServiceId(5)).unwrap();
        // New generation published while we hold the old Arc.
        reg.publish(spec.clone(), BTreeMap::new());
        assert_eq!(
            as_diagnet(&snapshot).network,
            general.network,
            "held snapshot must not change"
        );
        let g = reg.general().unwrap();
        assert_eq!(as_diagnet(&g).network, spec.network);
    }

    /// The global registry is shared across concurrently running tests, so
    /// this asserts deltas, not absolute values.
    #[test]
    #[cfg(feature = "obs")]
    fn publications_are_counted() {
        let before = diagnet_obs::global()
            .snapshot()
            .counter(REGISTRY_PUBLISH_TOTAL, &[("scope", "general")])
            .unwrap_or(0);
        let (general, spec) = trained_pair();
        let reg = ModelRegistry::new();
        reg.publish(general.clone(), BTreeMap::new());
        reg.publish_specialized(ServiceId(1), spec.clone());
        let snap = diagnet_obs::global().snapshot();
        let after = snap
            .counter(REGISTRY_PUBLISH_TOTAL, &[("scope", "general")])
            .unwrap_or(0);
        assert!(after > before, "general publish not counted");
        assert!(
            snap.counter(REGISTRY_PUBLISH_TOTAL, &[("scope", "specialized")])
                .unwrap_or(0)
                >= 1
        );
        // Every test registry starts at version 0, so whoever wrote the
        // gauge last published at least version 1.
        assert!(snap.gauge(REGISTRY_VERSION, &[]).unwrap() >= 1.0);
    }

    #[test]
    fn serves_any_backend_kind() {
        use diagnet::backend::ForestBackend;
        use diagnet_forest::ForestConfig;
        use diagnet_sim::metrics::FeatureSchema;

        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 72);
        cfg.n_scenarios = 10;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let forest =
            ForestBackend::train(&ForestConfig::default(), &ds, &FeatureSchema::known(), 72);
        let reg = ModelRegistry::new();
        reg.publish_backend(Arc::new(forest), BTreeMap::new());
        let served = reg.model_for(ServiceId(1)).unwrap();
        assert_eq!(served.describe().kind, BackendKind::Forest);
        let schema = FeatureSchema::full();
        let ranking = served.rank_causes(&ds.samples[0].features, &schema);
        assert_eq!(ranking.scores.len(), schema.n_features());
    }
}
