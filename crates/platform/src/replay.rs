//! Online (prequential) evaluation: replay a measurement campaign through
//! the analysis service, diagnosing each failure with the models available
//! *at that moment*, then ingesting the sample — test-then-train.
//!
//! This answers the deployment question the paper's offline split cannot:
//! how fast does diagnosis quality ramp up as the service accumulates
//! probes and rolls out model generations?

use crate::service::AnalysisService;
use diagnet_eval::ranking::rank_of_truth;
use diagnet_sim::dataset::Sample;
use diagnet_sim::metrics::FeatureSchema;

/// Quality summary of one model generation during a replay.
#[derive(Debug, Clone)]
pub struct GenerationStats {
    /// Registry version these diagnoses used (0 = before any model).
    pub generation: u64,
    /// Faulty samples diagnosed under this generation.
    pub n_diagnosed: usize,
    /// Recall@1 over those diagnoses.
    pub recall1: f32,
    /// Recall@5 over those diagnoses.
    pub recall5: f32,
    /// Campaign hour at which this generation was superseded (or the
    /// replay ended).
    pub until_h: f64,
}

/// Replay a time-ordered sample stream through `service`.
///
/// Every faulty sample is first diagnosed (if a model is published), then
/// submitted; a synchronous retrain fires every `retrain_every`
/// submissions. Returns per-generation prequential quality.
pub fn replay(
    service: &AnalysisService,
    stream: &[(f64, Sample)],
    schema: &FeatureSchema,
    retrain_every: usize,
) -> Vec<GenerationStats> {
    assert!(retrain_every > 0, "replay: retrain_every must be positive");
    // Accumulators per generation: (hits@1, hits@5, n, last_t).
    let mut stats: Vec<GenerationStats> = Vec::new();
    let mut current: Option<(u64, usize, usize, usize)> = None;
    let flush = |current: &mut Option<(u64, usize, usize, usize)>,
                 t: f64,
                 out: &mut Vec<GenerationStats>| {
        if let Some((generation, h1, h5, n)) = current.take() {
            if n > 0 {
                out.push(GenerationStats {
                    generation,
                    n_diagnosed: n,
                    recall1: h1 as f32 / n as f32,
                    recall5: h5 as f32 / n as f32,
                    until_h: t,
                });
            }
        }
    };
    let mut submitted = 0usize;
    for (t, sample) in stream {
        // 1. Test: diagnose the failure with today's model.
        if sample.label.is_faulty() && service.is_ready() {
            let version = service.model_version();
            let truth = schema
                .index_of(sample.label.cause().expect("faulty"))
                .expect("cause in schema");
            if let Ok(diagnosis) = service.diagnose(&sample.features, sample.service, schema) {
                let rank = rank_of_truth(&diagnosis.ranking.scores, truth);
                match &mut current {
                    Some((generation, h1, h5, n)) if *generation == version => {
                        *h1 += usize::from(rank < 1);
                        *h5 += usize::from(rank < 5);
                        *n += 1;
                    }
                    _ => {
                        flush(&mut current, *t, &mut stats);
                        current = Some((version, usize::from(rank < 1), usize::from(rank < 5), 1));
                    }
                }
            }
        }
        // 2. Train: ingest the sample; retrain on schedule.
        if service.submit(sample.clone()).accepted() {
            submitted += 1;
            if submitted.is_multiple_of(retrain_every) {
                // Ignore failures (e.g. a window with no general-service
                // samples yet): the previous generation stays live.
                let _ = service.retrain_now();
            }
        }
    }
    let last_t = stream.last().map_or(0.0, |(t, _)| *t);
    flush(&mut current, last_t, &mut stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use diagnet::config::DiagNetConfig;
    use diagnet_sim::region::ALL_REGIONS;
    use diagnet_sim::timeline::{Campaign, CampaignConfig};
    use diagnet_sim::world::World;

    fn replay_fixture(retrain_every: usize) -> Vec<GenerationStats> {
        let world = World::new();
        let mut model = DiagNetConfig::fast();
        model.epochs = 2;
        model.forest.n_trees = 5;
        let service = AnalysisService::new(
            ServiceConfig {
                backend: diagnet::backend::BackendKind::DiagNet,
                model,
                buffer_capacity: 100_000,
                general_services: world.catalog.general_ids(),
                min_service_samples: 1,
                auto_retrain_every: None,
                seed: 700,
                ..ServiceConfig::default()
            },
            FeatureSchema::full(),
        );
        let campaign = Campaign::generate(&CampaignConfig {
            days: 3,
            windows_per_day: 6,
            seed: 700,
            ..Default::default()
        });
        let stream = campaign.run(&world, &ALL_REGIONS, &world.catalog.all_ids(), 2.0, 700);
        replay(&service, &stream, &FeatureSchema::full(), retrain_every)
    }

    #[test]
    fn generations_progress_and_recall_is_sane() {
        let stats = replay_fixture(1200);
        assert!(
            stats.len() >= 2,
            "expect multiple generations: {}",
            stats.len()
        );
        // Generations strictly increase, times are monotone.
        for pair in stats.windows(2) {
            assert!(pair[0].generation < pair[1].generation);
            assert!(pair[0].until_h <= pair[1].until_h);
        }
        for s in &stats {
            assert!(s.n_diagnosed > 0);
            assert!((0.0..=1.0).contains(&s.recall1));
            assert!(s.recall5 >= s.recall1);
        }
        // Once trained, diagnoses must beat chance (R@5 ≈ 9 %).
        let late = stats.last().unwrap();
        assert!(
            late.recall5 > 0.2,
            "late-generation Recall@5 = {}",
            late.recall5
        );
    }

    #[test]
    fn no_diagnoses_before_first_generation() {
        // With a huge retrain threshold, no model is ever published and no
        // generation stats are produced.
        let stats = replay_fixture(10_000_000);
        assert!(stats.is_empty());
    }
}
