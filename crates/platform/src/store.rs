//! Durable, crash-safe model store.
//!
//! A process crash must not lose trained generations: `diagnet serve
//! --state-dir` persists every published generation as a checksummed
//! artefact plus a small line-oriented manifest recording its lineage
//! (generation number, parent, backend kind, checksum, byte length,
//! lifecycle status). On startup the service recovers the newest *active*
//! generation and serves bit-identical diagnoses without retraining.
//!
//! Crash safety is write-temp → fsync → rename → fsync-dir for both the
//! artefact and the manifest: a SIGKILL at any instant leaves either the
//! old state or the new state on disk, never a torn file under a live
//! name (a leftover `*.tmp` is swept on open). Every artefact read back
//! is verified against its manifest checksum and byte length, then
//! decoded and health-checked (`Backend::validate`) before it can serve;
//! recovery skips corrupt generations with a typed [`StoreError`] and
//! counts each outcome under `diagnet_store_recovery_total`.
//!
//! Serialisation is behind the [`ArtefactCodec`] seam: the store's own
//! logic (atomicity, checksums, manifest, recovery) is dependency-free,
//! while the production [`JsonCodec`](crate::store_codec::JsonCodec)
//! lives in its own module so environments without the serde stack can
//! swap it out.

use diagnet::backend::Backend;
use diagnet::integrity;
use diagnet_nn::error::NnError;
use parking_lot::Mutex;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Counter of startup-recovery outcomes (label `outcome`:
/// `recovered` = an active generation was restored; `corrupt` = an
/// artefact failed its checksum/decode/validate and was skipped;
/// `empty` = no recoverable active generation;
/// `manifest_line_skipped` = a corrupt manifest line was ignored on open).
pub const STORE_RECOVERY_TOTAL: &str = "diagnet_store_recovery_total";
/// Counter of persistence attempts (label `outcome`: `ok`/`error`).
pub const STORE_PERSIST_TOTAL: &str = "diagnet_store_persist_total";

/// Manifest file name inside the state directory.
pub const MANIFEST_FILE: &str = "manifest";
/// Manifest format header (first line); bump on incompatible changes.
const MANIFEST_HEADER: &str = "diagnet-store v1";

fn recovery_counter(outcome: &'static str) -> diagnet_obs::Counter {
    diagnet_obs::global().counter(
        STORE_RECOVERY_TOTAL,
        &[("outcome", outcome)],
        "model-store startup recovery outcomes",
    )
}

/// Encode/decode seam between the store and the serialisation stack.
/// Implementations must be deterministic: the same backend must encode to
/// the same bytes within a process, or the bit-identical-recovery
/// guarantee is void.
pub trait ArtefactCodec: Send + Sync + fmt::Debug {
    /// Serialise a backend to artefact bytes.
    fn encode(&self, backend: &dyn Backend) -> Result<Vec<u8>, NnError>;
    /// Deserialise artefact bytes back to a backend.
    fn decode(&self, bytes: &[u8]) -> Result<Box<dyn Backend>, NnError>;
}

/// Lifecycle status of a stored generation (`DESIGN.md` §14 state
/// machine: trained → canary → active → rolled-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationStatus {
    /// Published to the canary phase; serving a traffic fraction.
    Canary,
    /// Promoted (or directly published): the serving generation.
    Active,
    /// Demoted by the rollback controller; never served again.
    RolledBack,
}

impl GenerationStatus {
    /// Manifest token of this status.
    pub fn token(self) -> &'static str {
        match self {
            GenerationStatus::Canary => "canary",
            GenerationStatus::Active => "active",
            GenerationStatus::RolledBack => "rolled-back",
        }
    }

    /// Parse a manifest token.
    pub fn parse(token: &str) -> Option<GenerationStatus> {
        match token {
            "canary" => Some(GenerationStatus::Canary),
            "active" => Some(GenerationStatus::Active),
            "rolled-back" => Some(GenerationStatus::RolledBack),
            _ => None,
        }
    }
}

impl fmt::Display for GenerationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One manifest row: the durable lineage of a stored generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationRecord {
    /// Durable generation number (store-owned sequence, 1-based; distinct
    /// from the in-process registry version, which resets on restart).
    pub generation: u64,
    /// Generation that was active when this one was trained.
    pub parent: Option<u64>,
    /// Backend kind token (`diagnet`/`forest`/`bayes`).
    pub backend: String,
    /// FNV-1a/64 checksum of the artefact bytes.
    pub checksum: u64,
    /// Artefact byte length (cheap torn-write screen before hashing).
    pub bytes: u64,
    /// Lifecycle status.
    pub status: GenerationStatus,
    /// Artefact file name, relative to the store directory.
    pub file: String,
}

impl GenerationRecord {
    fn render(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        format!(
            "gen {} parent {} backend {} checksum {} bytes {} status {} file {}",
            self.generation,
            parent,
            self.backend,
            integrity::render_checksum(self.checksum),
            self.bytes,
            self.status.token(),
            self.file,
        )
    }

    fn parse(line: &str) -> Result<GenerationRecord, String> {
        let mut fields = line.split_whitespace();
        let mut want = |key: &str| -> Result<String, String> {
            match (fields.next(), fields.next()) {
                (Some(k), Some(v)) if k == key => Ok(v.to_string()),
                (Some(k), _) => Err(format!("expected field `{key}`, found `{k}`")),
                (None, _) => Err(format!("missing field `{key}`")),
            }
        };
        let generation = want("gen")?
            .parse::<u64>()
            .map_err(|e| format!("bad generation: {e}"))?;
        let parent_text = want("parent")?;
        let parent = if parent_text == "-" {
            None
        } else {
            Some(
                parent_text
                    .parse::<u64>()
                    .map_err(|e| format!("bad parent: {e}"))?,
            )
        };
        let backend = want("backend")?;
        let checksum = integrity::parse_checksum(&want("checksum")?)
            .ok_or_else(|| "bad checksum field".to_string())?;
        let bytes = want("bytes")?
            .parse::<u64>()
            .map_err(|e| format!("bad byte length: {e}"))?;
        let status_text = want("status")?;
        let status = GenerationStatus::parse(&status_text)
            .ok_or_else(|| format!("unknown status `{status_text}`"))?;
        let file = want("file")?;
        if file.contains('/') || file.contains("..") {
            return Err(format!("artefact file `{file}` escapes the store dir"));
        }
        Ok(GenerationRecord {
            generation,
            parent,
            backend,
            checksum,
            bytes,
            status,
            file,
        })
    }
}

/// Why a store operation failed. Every variant is typed so callers (the
/// lifecycle manager, `diagnet info`) can report artefact problems
/// without panicking.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What was being done (`"create"`, `"read"`, `"rename"`, …).
        action: &'static str,
        /// The offending path.
        path: PathBuf,
        /// OS error text.
        detail: String,
    },
    /// The manifest header is missing or from an unknown format version.
    ManifestHeader(String),
    /// An artefact's bytes do not match its manifest record.
    Corrupt {
        /// Generation whose artefact is damaged.
        generation: u64,
        /// What the verification found (length mismatch, checksum text).
        detail: String,
    },
    /// The codec could not encode/decode an artefact.
    Codec(String),
    /// No record exists for the requested generation.
    UnknownGeneration(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                action,
                path,
                detail,
            } => write!(f, "cannot {action} `{}`: {detail}", path.display()),
            StoreError::ManifestHeader(detail) => write!(f, "bad store manifest: {detail}"),
            StoreError::Corrupt { generation, detail } => {
                write!(f, "generation {generation} artefact is corrupt: {detail}")
            }
            StoreError::Codec(detail) => write!(f, "artefact codec failed: {detail}"),
            StoreError::UnknownGeneration(generation) => {
                write!(f, "no stored generation {generation}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Canonical artefact file name of a generation.
pub fn artefact_name(generation: u64) -> String {
    format!("gen-{generation:06}.model")
}

/// The durable model store: a state directory holding checksummed
/// generation artefacts plus the lineage manifest.
#[derive(Debug)]
pub struct ModelStore {
    dir: PathBuf,
    codec: Arc<dyn ArtefactCodec>,
    records: Mutex<Vec<GenerationRecord>>,
}

impl ModelStore {
    /// Open (creating if needed) the store at `dir`. Leftover `*.tmp`
    /// files from a crash mid-publish are swept; corrupt manifest lines
    /// are skipped (counted under
    /// `diagnet_store_recovery_total{outcome="manifest_line_skipped"}`)
    /// so one damaged row cannot take out the whole lineage.
    pub fn open(
        dir: impl Into<PathBuf>,
        codec: Arc<dyn ArtefactCodec>,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io {
            action: "create",
            path: dir.clone(),
            detail: e.to_string(),
        })?;
        sweep_tmp_files(&dir);
        let records = read_manifest(&dir)?;
        Ok(ModelStore {
            dir,
            codec,
            records: Mutex::new(records),
        })
    }

    /// The state directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the manifest, oldest generation first.
    pub fn records(&self) -> Vec<GenerationRecord> {
        self.records.lock().clone()
    }

    /// Persist `backend` as the next generation with `status`, returning
    /// its manifest record. Both the artefact and the updated manifest are
    /// written atomically (temp → fsync → rename → fsync-dir), so a crash
    /// at any point leaves the previous state intact.
    pub fn persist(
        &self,
        backend: &dyn Backend,
        parent: Option<u64>,
        backend_token: &str,
        status: GenerationStatus,
    ) -> Result<GenerationRecord, StoreError> {
        let result = self.persist_inner(backend, parent, backend_token, status);
        let outcome = if result.is_ok() { "ok" } else { "error" };
        diagnet_obs::global()
            .counter(
                STORE_PERSIST_TOTAL,
                &[("outcome", outcome)],
                "model-store artefact persistence attempts",
            )
            .inc();
        result
    }

    fn persist_inner(
        &self,
        backend: &dyn Backend,
        parent: Option<u64>,
        backend_token: &str,
        status: GenerationStatus,
    ) -> Result<GenerationRecord, StoreError> {
        let bytes = self
            .codec
            .encode(backend)
            .map_err(|e| StoreError::Codec(e.to_string()))?;
        let mut records = self.records.lock();
        let generation = records.iter().map(|r| r.generation).max().unwrap_or(0) + 1;
        let record = GenerationRecord {
            generation,
            parent,
            backend: backend_token.to_string(),
            checksum: integrity::artefact_checksum(&bytes),
            bytes: bytes.len() as u64,
            status,
            file: artefact_name(generation),
        };
        self.write_atomic(&record.file, &bytes)?;
        records.push(record.clone());
        self.write_manifest(&records)?;
        Ok(record)
    }

    /// Move `generation` to `status` in the manifest (the promote /
    /// rollback bookkeeping), rewriting the manifest atomically.
    pub fn set_status(
        &self,
        generation: u64,
        status: GenerationStatus,
    ) -> Result<GenerationRecord, StoreError> {
        let mut records = self.records.lock();
        let record = records
            .iter_mut()
            .find(|r| r.generation == generation)
            .ok_or(StoreError::UnknownGeneration(generation))?;
        record.status = status;
        let updated = record.clone();
        self.write_manifest(&records)?;
        Ok(updated)
    }

    /// Read, verify (length + checksum), decode and health-check one
    /// stored generation.
    pub fn load_generation(&self, generation: u64) -> Result<Box<dyn Backend>, StoreError> {
        let record = self
            .records
            .lock()
            .iter()
            .find(|r| r.generation == generation)
            .cloned()
            .ok_or(StoreError::UnknownGeneration(generation))?;
        self.load_record(&record)
    }

    fn load_record(&self, record: &GenerationRecord) -> Result<Box<dyn Backend>, StoreError> {
        let path = self.dir.join(&record.file);
        let bytes = fs::read(&path).map_err(|e| StoreError::Io {
            action: "read",
            path: path.clone(),
            detail: e.to_string(),
        })?;
        if bytes.len() as u64 != record.bytes {
            return Err(StoreError::Corrupt {
                generation: record.generation,
                detail: format!(
                    "length mismatch: manifest says {} bytes, file has {}",
                    record.bytes,
                    bytes.len()
                ),
            });
        }
        integrity::verify_checksum(&bytes, record.checksum).map_err(|detail| {
            StoreError::Corrupt {
                generation: record.generation,
                detail,
            }
        })?;
        let backend = self
            .codec
            .decode(&bytes)
            .map_err(|e| StoreError::Codec(e.to_string()))?;
        backend.validate().map_err(|e| StoreError::Corrupt {
            generation: record.generation,
            detail: format!("decoded model failed validation: {e}"),
        })?;
        Ok(backend)
    }

    /// Startup recovery: the newest generation marked *active* whose
    /// artefact verifies, decodes and validates. Corrupt generations are
    /// skipped (returned with their typed errors) and each outcome is
    /// counted under `diagnet_store_recovery_total`.
    #[allow(clippy::type_complexity)]
    pub fn recover(
        &self,
    ) -> (
        Option<(GenerationRecord, Box<dyn Backend>)>,
        Vec<(u64, StoreError)>,
    ) {
        let mut actives: Vec<GenerationRecord> = self
            .records
            .lock()
            .iter()
            .filter(|r| r.status == GenerationStatus::Active)
            .cloned()
            .collect();
        actives.sort_by_key(|r| std::cmp::Reverse(r.generation));
        let mut skipped = Vec::new();
        for record in actives {
            match self.load_record(&record) {
                Ok(backend) => {
                    recovery_counter("recovered").inc();
                    return (Some((record, backend)), skipped);
                }
                Err(e) => {
                    recovery_counter("corrupt").inc();
                    skipped.push((record.generation, e));
                }
            }
        }
        recovery_counter("empty").inc();
        (None, skipped)
    }

    fn write_manifest(&self, records: &[GenerationRecord]) -> Result<(), StoreError> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for record in records {
            text.push_str(&record.render());
            text.push('\n');
        }
        self.write_atomic(MANIFEST_FILE, text.as_bytes())
    }

    /// Write-temp → fsync → rename → fsync-dir. `name` must be a plain
    /// file name inside the store directory.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let dest = self.dir.join(name);
        let mut file = File::create(&tmp).map_err(|e| StoreError::Io {
            action: "create",
            path: tmp.clone(),
            detail: e.to_string(),
        })?;
        file.write_all(bytes).map_err(|e| StoreError::Io {
            action: "write",
            path: tmp.clone(),
            detail: e.to_string(),
        })?;
        file.sync_all().map_err(|e| StoreError::Io {
            action: "sync",
            path: tmp.clone(),
            detail: e.to_string(),
        })?;
        drop(file);
        fs::rename(&tmp, &dest).map_err(|e| StoreError::Io {
            action: "rename",
            path: tmp.clone(),
            detail: e.to_string(),
        })?;
        // Durability of the rename itself: fsync the directory. Best
        // effort — a failure here narrows the crash window but the rename
        // already happened.
        if let Ok(dirfd) = File::open(&self.dir) {
            let _ = dirfd.sync_all();
        }
        Ok(())
    }
}

/// Parse the manifest at `dir` without opening a full store — the
/// read-only path `diagnet info` uses to print lineage. Missing manifest
/// = empty lineage; corrupt lines are skipped and counted.
pub fn read_manifest(dir: &Path) -> Result<Vec<GenerationRecord>, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(StoreError::Io {
                action: "read",
                path,
                detail: e.to_string(),
            })
        }
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header.trim() == MANIFEST_HEADER => {}
        Some(header) => {
            return Err(StoreError::ManifestHeader(format!(
                "unknown header `{}`",
                header.trim()
            )))
        }
        None => return Ok(Vec::new()),
    }
    let mut records = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match GenerationRecord::parse(line) {
            Ok(record) => records.push(record),
            Err(_) => recovery_counter("manifest_line_skipped").inc(),
        }
    }
    records.sort_by_key(|r| r.generation);
    Ok(records)
}

/// Remove leftover `*.tmp` files (a crash mid-publish). Best effort.
fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path
            .extension()
            .is_some_and(|ext| ext.eq_ignore_ascii_case("tmp"));
        if is_tmp {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_render_parse_round_trip() {
        let record = GenerationRecord {
            generation: 7,
            parent: Some(6),
            backend: "diagnet".to_string(),
            checksum: 0xdead_beef_0123_4567,
            bytes: 8_912,
            status: GenerationStatus::Canary,
            file: artefact_name(7),
        };
        let parsed = GenerationRecord::parse(&record.render()).unwrap();
        assert_eq!(parsed, record);

        let root = GenerationRecord {
            parent: None,
            status: GenerationStatus::Active,
            ..record
        };
        assert_eq!(GenerationRecord::parse(&root.render()).unwrap(), root);
    }

    #[test]
    fn malformed_records_are_typed_errors() {
        for bad in [
            "",
            "gen x parent - backend b checksum fnv1a64:0000000000000000 bytes 1 status active file f",
            "gen 1 parent - backend b checksum nope bytes 1 status active file f",
            "gen 1 parent - backend b checksum fnv1a64:0000000000000000 bytes 1 status lost file f",
            "gen 1 parent - backend b checksum fnv1a64:0000000000000000 bytes 1 status active file ../evil",
            "version 1 parent - backend b",
        ] {
            assert!(GenerationRecord::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn status_tokens_round_trip() {
        for status in [
            GenerationStatus::Canary,
            GenerationStatus::Active,
            GenerationStatus::RolledBack,
        ] {
            assert_eq!(GenerationStatus::parse(status.token()), Some(status));
        }
        assert_eq!(GenerationStatus::parse("happy"), None);
    }
}
