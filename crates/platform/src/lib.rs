//! # diagnet-platform — the root-cause *analysis service*
//!
//! The paper describes DiagNet as "a distributed platform for the root
//! cause analysis of Internet-based services" (abstract): clients and
//! landmarks continuously produce measurements, a central analysis
//! service combines them with ground truth to train the inference model,
//! and the model is then "provided to clients as an online analysis
//! service" (Fig. 1, §III-A). This crate implements that service side:
//!
//! * [`collector`] — thread-safe probe ingestion with a bounded sample
//!   buffer (clients push labelled observations; training drains them);
//! * [`registry`] — a versioned model registry holding the general model
//!   plus per-service specialised models behind an `RwLock`, with atomic
//!   swap-on-publish so in-flight diagnoses keep their model snapshot;
//! * [`trainer`] — retraining orchestration: drains the collector, trains
//!   general + specialised models and publishes them, either on demand or
//!   from a background worker thread fed through a crossbeam channel;
//! * [`service`] — the [`service::AnalysisService`] facade clients talk
//!   to: `submit` probes, `diagnose` failures;
//! * [`replay`] — prequential (test-then-train) evaluation of the service
//!   over a simulated measurement campaign;
//! * [`admission`] — probe admission control: schema/finiteness/magnitude
//!   validation, a bounded quarantine ring for rejects, and a bounded
//!   submission queue with explicit load shedding;
//! * [`supervisor`] — crash-isolated, budgeted, retry-with-backoff
//!   training supervision that keeps the last-good model serving when a
//!   generation fails;
//! * [`health`] — the service's coarse health state
//!   (`Serving`/`Degraded`/`NoModel`) exported as a gauge;
//! * [`store`] — the durable, crash-safe model store: checksummed
//!   atomic artefacts plus a lineage manifest under `--state-dir`, so a
//!   SIGKILL'd server restarts serving bit-identical diagnoses without
//!   retraining ([`store_codec`] holds the serde-backed artefact codec);
//! * [`rollout`] — canary rollout and health-driven auto-rollback: a
//!   retrained generation observes a deterministic traffic fraction and
//!   is promoted on a healthy window or rolled back on degradation;
//! * [`chaos`] (feature `chaos`, test-only) — fault-injecting backend and
//!   pipeline decorators plus a probe corruptor, used by the chaos suite
//!   to prove diagnosis availability under training failures.
//!
//! Everything is `Send + Sync`; concurrent clients can submit and
//! diagnose while a retrain runs.
//!
//! Every layer feeds the process-wide metrics registry (re-exported here
//! as [`obs`]): submissions, diagnoses, registry publications and retrain
//! generations are counted and timed, and
//! [`AnalysisService::metrics_snapshot`](service::AnalysisService::metrics_snapshot)
//! dumps the live registry. See `OBSERVABILITY.md` at the repo root; build
//! with `--no-default-features` to compile all of it out.

pub use diagnet_obs as obs;

pub mod admission;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod collector;
pub mod health;
pub mod registry;
pub mod replay;
pub mod rollout;
pub mod service;
pub mod store;
pub mod store_codec;
pub mod supervisor;
pub mod trainer;

pub use admission::{AdmissionConfig, ProbeGate, QuarantinedProbe, RejectReason};
pub use collector::ProbeCollector;
pub use health::{HealthMonitor, HealthState};
pub use registry::ModelRegistry;
pub use replay::{replay, GenerationStats};
pub use rollout::{GenerationLifecycle, RolloutConfig, RolloutController, RolloutPhase};
pub use service::{AnalysisService, DiagnoseError, Diagnosis, ServiceConfig, SubmitOutcome};
pub use store::{GenerationRecord, GenerationStatus, ModelStore, StoreError};
pub use store_codec::JsonCodec;
pub use supervisor::{supervised_retrain, SupervisionConfig, TrainFailure};
pub use trainer::{GenerationPublisher, RetrainWorker, TrainPipeline, TrainReport};
