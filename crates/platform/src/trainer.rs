//! Retraining orchestration.
//!
//! [`retrain_backend`] performs one synchronous training generation for
//! any registered [`BackendKind`]: snapshot the collector, train on the
//! configured base services, specialise per service where the backend
//! supports it, and publish to the registry. [`retrain`] is the historic
//! DiagNet-typed wrapper. [`RetrainWorker`] runs the same logic on a
//! dedicated thread, triggered through a crossbeam channel, so probe
//! ingestion and diagnosis never block on training.

use crate::collector::ProbeCollector;
use crate::registry::ModelRegistry;
use diagnet::backend::{Backend, BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet::transfer::SpecializedModels;
use diagnet_nn::error::NnError;
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::service::ServiceId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Name of the retrain wall-clock histogram (label `backend`).
pub const RETRAIN_DURATION_SECONDS: &str = "diagnet_retrain_duration_seconds";
/// Name of the counter of retrain attempts (labels `backend`, `outcome`:
/// `ok`/`error`).
pub const RETRAIN_TOTAL: &str = "diagnet_retrain_total";

/// Outcome of one training generation.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Registry version the generation was published as.
    pub version: u64,
    /// Backend kind that was trained.
    pub backend: BackendKind,
    /// Samples used.
    pub n_samples: usize,
    /// Faulty samples among them.
    pub n_faulty: usize,
    /// Services that received a specialised model.
    pub specialized: Vec<ServiceId>,
    /// Wall-clock training duration, seconds.
    pub duration_secs: f64,
}

/// Train one generation of `kind` from the collector's current contents
/// and publish it. The collector is snapshotted, not drained: the sliding
/// window keeps accumulating.
///
/// `general_services` picks the services the general model trains on
/// (paper: eight). When the backend supports specialisation (DiagNet),
/// specialised models are built for every service with at least
/// `min_service_samples` samples; other backends publish the general model
/// alone.
///
/// A DiagNet generation is internally parallel: `DiagNet::train` fits the
/// coarse network and the auxiliary forest concurrently (`rayon::join`),
/// and `SpecializedModels::train` specialises all eligible services in
/// parallel. Per-member seeds are derived by index, so a generation is
/// bit-for-bit reproducible regardless of thread count.
pub fn retrain_backend(
    collector: &ProbeCollector,
    registry: &ModelRegistry,
    kind: BackendKind,
    config: &BackendConfig,
    general_services: &[ServiceId],
    min_service_samples: usize,
    seed: u64,
) -> Result<TrainReport, NnError> {
    let _span = diagnet_obs::span("platform.retrain");
    let obs = diagnet_obs::global();
    let timer = obs
        .histogram(
            RETRAIN_DURATION_SECONDS,
            &[("backend", kind.token())],
            "wall-clock duration of one training generation",
        )
        .start_timer();
    let result = run_retrain(
        collector,
        registry,
        kind,
        config,
        general_services,
        min_service_samples,
        seed,
    );
    timer.stop();
    let outcome = if result.is_ok() { "ok" } else { "error" };
    obs.counter(
        RETRAIN_TOTAL,
        &[("backend", kind.token()), ("outcome", outcome)],
        "retrain attempts by outcome",
    )
    .inc();
    result
}

fn run_retrain(
    collector: &ProbeCollector,
    registry: &ModelRegistry,
    kind: BackendKind,
    config: &BackendConfig,
    general_services: &[ServiceId],
    min_service_samples: usize,
    seed: u64,
) -> Result<TrainReport, NnError> {
    let t0 = Instant::now();
    let data = collector.snapshot();
    if data.is_empty() {
        return Err(NnError::InvalidTrainingData("collector is empty".into()));
    }
    let general_data = data.filter_services(general_services);
    if general_data.is_empty() {
        return Err(NnError::InvalidTrainingData(
            "no samples for any of the general services".into(),
        ));
    }

    if kind != BackendKind::DiagNet {
        // Baseline backends have no transfer learning: one general model.
        let general = kind.train(config, &general_data, &FeatureSchema::known(), seed)?;
        let version = registry.publish_backend(Arc::from(general), HashMap::new());
        return Ok(TrainReport {
            version,
            backend: kind,
            n_samples: data.len(),
            n_faulty: data.n_faulty(),
            specialized: Vec::new(),
            duration_secs: t0.elapsed().as_secs_f64(),
        });
    }

    let general = DiagNet::train(&config.diagnet, &general_data, seed)?;

    // Specialise every service with enough data.
    let mut present: Vec<ServiceId> = data.samples.iter().map(|s| s.service).collect();
    present.sort();
    present.dedup();
    let eligible: Vec<ServiceId> = present
        .into_iter()
        .filter(|&sid| data.filter_service(sid).len() >= min_service_samples)
        .collect();
    let suite = SpecializedModels::train(general, &data, &eligible, seed ^ 0x7E7E)?;

    let specialized: HashMap<ServiceId, Arc<dyn Backend>> = suite
        .models
        .iter()
        .map(|(&sid, m)| (sid, Arc::new(m.clone()) as Arc<dyn Backend>))
        .collect();
    let version = registry.publish_backend(Arc::new(suite.general), specialized);
    Ok(TrainReport {
        version,
        backend: BackendKind::DiagNet,
        n_samples: data.len(),
        n_faulty: data.n_faulty(),
        specialized: eligible,
        duration_secs: t0.elapsed().as_secs_f64(),
    })
}

/// DiagNet-typed wrapper over [`retrain_backend`], kept for call sites
/// that predate the backend abstraction.
pub fn retrain(
    collector: &ProbeCollector,
    registry: &ModelRegistry,
    config: &DiagNetConfig,
    general_services: &[ServiceId],
    min_service_samples: usize,
    seed: u64,
) -> Result<TrainReport, NnError> {
    retrain_backend(
        collector,
        registry,
        BackendKind::DiagNet,
        &BackendConfig::from_diagnet(config.clone()),
        general_services,
        min_service_samples,
        seed,
    )
}

/// Commands accepted by the background worker.
enum Command {
    Retrain { seed: u64 },
    Shutdown,
}

/// A background retraining worker on a dedicated thread.
pub struct RetrainWorker {
    commands: crossbeam::channel::Sender<Command>,
    reports: crossbeam::channel::Receiver<Result<TrainReport, NnError>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RetrainWorker {
    /// Spawn the worker. It holds shared handles on the collector and
    /// registry and trains backends of `kind` on demand.
    pub fn spawn(
        collector: Arc<ProbeCollector>,
        registry: Arc<ModelRegistry>,
        kind: BackendKind,
        config: BackendConfig,
        general_services: Vec<ServiceId>,
        min_service_samples: usize,
    ) -> Self {
        let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<Command>();
        let (rep_tx, rep_rx) = crossbeam::channel::unbounded();
        let handle = std::thread::Builder::new()
            .name("diagnet-retrain".into())
            .spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        Command::Retrain { seed } => {
                            let report = retrain_backend(
                                &collector,
                                &registry,
                                kind,
                                &config,
                                &general_services,
                                min_service_samples,
                                seed,
                            );
                            if rep_tx.send(report).is_err() {
                                break; // owner gone
                            }
                        }
                        Command::Shutdown => break,
                    }
                }
            })
            .expect("spawn retrain worker");
        RetrainWorker {
            commands: cmd_tx,
            reports: rep_rx,
            handle: Some(handle),
        }
    }

    /// Request a retrain; does not block.
    pub fn request_retrain(&self, seed: u64) {
        let _ = self.commands.send(Command::Retrain { seed });
    }

    /// Wait for the next training report.
    pub fn wait_report(&self) -> Result<TrainReport, NnError> {
        self.reports
            .recv()
            .unwrap_or_else(|_| Err(NnError::InvalidTrainingData("worker gone".into())))
    }

    /// Try to fetch a report without blocking.
    pub fn try_report(&self) -> Option<Result<TrainReport, NnError>> {
        self.reports.try_recv().ok()
    }

    /// Wait for the next report up to `timeout`; `None` when none arrives
    /// in time (e.g. no retrain was ever requested — the blocking
    /// [`RetrainWorker::wait_report`] would hang in that case).
    pub fn wait_report_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Result<TrainReport, NnError>> {
        self.reports.recv_timeout(timeout).ok()
    }
}

impl Drop for RetrainWorker {
    fn drop(&mut self) {
        let _ = self.commands.send(Command::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::{Dataset, DatasetConfig};
    use diagnet_sim::world::World;

    fn loaded_collector(seed: u64) -> (World, Arc<ProbeCollector>) {
        let world = World::new();
        let collector = Arc::new(ProbeCollector::new(100_000, FeatureSchema::full()));
        let mut cfg = DatasetConfig::small(&world, seed);
        cfg.n_scenarios = 15;
        for s in Dataset::generate(&world, &cfg).samples {
            collector.submit(s);
        }
        (world, collector)
    }

    fn fast_config() -> DiagNetConfig {
        let mut c = DiagNetConfig::fast();
        c.epochs = 2;
        c.forest.n_trees = 5;
        c
    }

    #[test]
    fn synchronous_retrain_publishes() {
        let (world, collector) = loaded_collector(81);
        let registry = ModelRegistry::new();
        let report = retrain(
            &collector,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            81,
        )
        .unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.backend, BackendKind::DiagNet);
        assert_eq!(report.n_samples, collector.len(), "snapshot, not drain");
        assert_eq!(report.specialized.len(), world.catalog.len());
        assert!(registry.is_ready());
        assert!(report.duration_secs > 0.0);
    }

    #[test]
    fn empty_collector_is_an_error() {
        let world = World::new();
        let collector = ProbeCollector::new(10, FeatureSchema::full());
        let registry = ModelRegistry::new();
        assert!(retrain(
            &collector,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            1
        )
        .is_err());
        assert!(!registry.is_ready());
    }

    #[test]
    fn baseline_backends_retrain_and_publish() {
        let (world, collector) = loaded_collector(85);
        let registry = ModelRegistry::new();
        let mut config = BackendConfig::from_diagnet(fast_config());
        config.bayes.kde_cap = 64;
        for (i, kind) in [BackendKind::Forest, BackendKind::NaiveBayes]
            .into_iter()
            .enumerate()
        {
            let report = retrain_backend(
                &collector,
                &registry,
                kind,
                &config,
                &world.catalog.general_ids(),
                1,
                85,
            )
            .unwrap();
            assert_eq!(report.version, i as u64 + 1);
            assert_eq!(report.backend, kind);
            assert!(report.specialized.is_empty(), "baselines do not specialise");
            let served = registry.general().unwrap();
            assert_eq!(served.describe().kind, kind);
        }
    }

    /// Delta-based asserts: the global registry is shared with other tests
    /// running in the same process.
    #[test]
    #[cfg(feature = "obs")]
    fn retrains_are_timed_and_counted() {
        let ok_labels: &[(&str, &str)] = &[("backend", "diagnet"), ("outcome", "ok")];
        let before_ok = diagnet_obs::global()
            .snapshot()
            .counter(RETRAIN_TOTAL, ok_labels)
            .unwrap_or(0);
        let (world, collector) = loaded_collector(86);
        let registry = ModelRegistry::new();
        retrain(
            &collector,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            86,
        )
        .unwrap();
        let empty = ProbeCollector::new(10, FeatureSchema::full());
        assert!(retrain(
            &empty,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            1
        )
        .is_err());

        let snap = diagnet_obs::global().snapshot();
        assert!(snap.counter(RETRAIN_TOTAL, ok_labels).unwrap_or(0) >= before_ok + 1);
        assert!(
            snap.counter(
                RETRAIN_TOTAL,
                &[("backend", "diagnet"), ("outcome", "error")]
            )
            .unwrap_or(0)
                >= 1,
            "failed retrain not counted"
        );
        let hist = snap
            .histogram(RETRAIN_DURATION_SECONDS, &[("backend", "diagnet")])
            .unwrap();
        assert!(hist.count >= 1);
        assert!(hist.sum > 0.0);
        let span = snap
            .histogram(
                diagnet_obs::span::SPAN_HISTOGRAM,
                &[("span", "platform.retrain")],
            )
            .unwrap();
        assert!(span.count >= 1);
    }

    #[test]
    fn background_worker_round_trip() {
        let (world, collector) = loaded_collector(83);
        let registry = Arc::new(ModelRegistry::new());
        let worker = RetrainWorker::spawn(
            Arc::clone(&collector),
            Arc::clone(&registry),
            BackendKind::DiagNet,
            BackendConfig::from_diagnet(fast_config()),
            world.catalog.general_ids(),
            1,
        );
        assert!(worker.try_report().is_none());
        worker.request_retrain(83);
        let report = worker.wait_report().unwrap();
        assert_eq!(report.version, 1);
        assert!(registry.is_ready());
        // Second generation bumps the version.
        worker.request_retrain(84);
        let report = worker.wait_report().unwrap();
        assert_eq!(report.version, 2);
    }
}
