//! Retraining orchestration.
//!
//! A training generation is split into composable stages so the
//! supervisor (see [`supervisor`](crate::supervisor)) can isolate each
//! one:
//!
//! * [`TrainPipeline`] — the strategy object that turns a snapshot of
//!   probe data into a [`Generation`] (general + specialised models).
//!   [`StandardPipeline`] is the production implementation for any
//!   [`BackendKind`]; the chaos harness wraps pipelines with fault
//!   injectors.
//! * [`build_generation`] — snapshot the collector and run the pipeline
//!   (the slow, crash-prone stage).
//! * [`publish_generation`] — the publish gate: every model of the
//!   generation must pass its [`Backend::validate`] health check (finite
//!   parameters, finite probe scores) before the registry swaps to it. A
//!   diverged generation is refused and the last-good version keeps
//!   serving.
//!
//! [`retrain_backend`] chains the stages synchronously; [`retrain`] is the
//! historic DiagNet-typed wrapper. [`RetrainWorker`] runs supervised
//! generations on a dedicated thread, triggered through a crossbeam
//! channel, so probe ingestion and diagnosis never block on training. The
//! worker shuts down promptly on `Drop`: a shutdown flag makes it skip any
//! queued retrain commands, and the thread is joined.

use crate::collector::ProbeCollector;
use crate::health::HealthMonitor;
use crate::registry::ModelRegistry;
use crate::supervisor::{supervised_retrain_with, SupervisionConfig, TrainFailure};
use diagnet::backend::{Backend, BackendConfig, BackendKind};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet::transfer::SpecializedModels;
use diagnet_nn::error::NnError;
use diagnet_sim::dataset::Dataset;
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::service::ServiceId;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Name of the retrain wall-clock histogram (label `backend`).
pub const RETRAIN_DURATION_SECONDS: &str = "diagnet_retrain_duration_seconds";
/// Name of the counter of retrain attempts (labels `backend`, `outcome`:
/// `ok`/`error`).
pub const RETRAIN_TOTAL: &str = "diagnet_retrain_total";

/// Outcome of one training generation.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Registry version the generation was published as.
    pub version: u64,
    /// Backend kind that was trained.
    pub backend: BackendKind,
    /// Samples used.
    pub n_samples: usize,
    /// Faulty samples among them.
    pub n_faulty: usize,
    /// Services that received a specialised model.
    pub specialized: Vec<ServiceId>,
    /// Wall-clock training duration, seconds.
    pub duration_secs: f64,
}

/// One trained (but not yet published) generation of models.
pub struct Generation {
    /// Backend kind of every model in the generation.
    pub backend: BackendKind,
    /// The general model.
    pub general: Arc<dyn Backend>,
    /// Per-service specialised models.
    pub specialized: BTreeMap<ServiceId, Arc<dyn Backend>>,
    /// Services that received a specialised model (sorted).
    pub specialized_ids: Vec<ServiceId>,
}

impl fmt::Debug for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Generation")
            .field("backend", &self.backend)
            .field("specialized_ids", &self.specialized_ids)
            .finish_non_exhaustive()
    }
}

/// Strategy for training one generation from a data snapshot. The
/// production implementation is [`StandardPipeline`]; the chaos harness
/// decorates pipelines with fault injectors, and tests substitute
/// deterministic fakes.
pub trait TrainPipeline: Send + Sync + fmt::Debug {
    /// Backend kind this pipeline produces (metric labels, reports).
    fn kind(&self) -> BackendKind;

    /// Train a generation on `data` with `seed`.
    fn train_generation(&self, data: &Dataset, seed: u64) -> Result<Generation, NnError>;
}

/// The production pipeline: train the configured backend on the general
/// services and (for DiagNet) specialise every service with enough data.
#[derive(Debug, Clone)]
pub struct StandardPipeline {
    /// Which backend every generation trains.
    pub kind: BackendKind,
    /// Hyper-parameters for every backend kind.
    pub config: BackendConfig,
    /// Services the general model trains on.
    pub general_services: Vec<ServiceId>,
    /// Minimum samples before a service gets a specialised model.
    pub min_service_samples: usize,
}

impl TrainPipeline for StandardPipeline {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    /// A DiagNet generation is internally parallel: `DiagNet::train` fits
    /// the coarse network and the auxiliary forest concurrently
    /// (`rayon::join`), and `SpecializedModels::train` specialises all
    /// eligible services in parallel. Per-member seeds are derived by
    /// index, so a generation is bit-for-bit reproducible regardless of
    /// thread count.
    fn train_generation(&self, data: &Dataset, seed: u64) -> Result<Generation, NnError> {
        let general_data = data.filter_services(&self.general_services);
        if general_data.is_empty() {
            return Err(NnError::InvalidTrainingData(
                "no samples for any of the general services".into(),
            ));
        }

        if self.kind != BackendKind::DiagNet {
            // Baseline backends have no transfer learning: one general model.
            let general =
                self.kind
                    .train(&self.config, &general_data, &FeatureSchema::known(), seed)?;
            return Ok(Generation {
                backend: self.kind,
                general: Arc::from(general),
                specialized: BTreeMap::new(),
                specialized_ids: Vec::new(),
            });
        }

        let general = DiagNet::train(&self.config.diagnet, &general_data, seed)?;

        // Specialise every service with enough data.
        let mut present: Vec<ServiceId> = data.samples.iter().map(|s| s.service).collect();
        present.sort();
        present.dedup();
        let eligible: Vec<ServiceId> = present
            .into_iter()
            .filter(|&sid| data.filter_service(sid).len() >= self.min_service_samples)
            .collect();
        let suite = SpecializedModels::train(general, data, &eligible, seed ^ 0x7E7E)?;

        let specialized: BTreeMap<ServiceId, Arc<dyn Backend>> = suite
            .models
            .iter()
            .map(|(&sid, m)| (sid, Arc::new(m.clone()) as Arc<dyn Backend>))
            .collect();
        Ok(Generation {
            backend: BackendKind::DiagNet,
            general: Arc::new(suite.general),
            specialized,
            specialized_ids: eligible,
        })
    }
}

/// A trained generation plus the bookkeeping needed for its report.
#[derive(Debug)]
pub struct PendingGeneration {
    /// The models awaiting publication.
    pub generation: Generation,
    /// Samples in the training snapshot.
    pub n_samples: usize,
    /// Faulty samples among them.
    pub n_faulty: usize,
    /// When the build started (feeds `duration_secs`).
    pub started: Instant,
}

/// Snapshot the collector and run `pipeline` over it — the slow stage of
/// a generation. The collector is snapshotted, not drained: the sliding
/// window keeps accumulating.
pub fn build_generation(
    collector: &ProbeCollector,
    pipeline: &dyn TrainPipeline,
    seed: u64,
) -> Result<PendingGeneration, NnError> {
    let started = Instant::now();
    let data = collector.snapshot();
    if data.is_empty() {
        return Err(NnError::InvalidTrainingData("collector is empty".into()));
    }
    let n_samples = data.len();
    let n_faulty = data.n_faulty();
    let generation = pipeline.train_generation(&data, seed)?;
    Ok(PendingGeneration {
        generation,
        n_samples,
        n_faulty,
        started,
    })
}

/// The publish gate's test alone: health-check every model of the
/// generation ([`Backend::validate`]). A generation with non-finite
/// weights or scores is refused with a typed error. Shared by the classic
/// registry swap and the lifecycle's canary staging.
pub fn validate_generation(generation: &Generation) -> Result<(), NnError> {
    generation
        .general
        .validate()
        .map_err(|e| NnError::InvalidConfig(format!("refusing to publish general model: {e}")))?;
    for (sid, model) in &generation.specialized {
        model.validate().map_err(|e| {
            NnError::InvalidConfig(format!(
                "refusing to publish specialised model for service {}: {e}",
                sid.0
            ))
        })?;
    }
    Ok(())
}

/// The publish gate: health-check every model of the generation
/// ([`Backend::validate`]) and only then atomically swap the registry to
/// it. A generation with non-finite weights or scores is refused — the
/// registry keeps serving its last-good version.
pub fn publish_generation(
    registry: &ModelRegistry,
    pending: PendingGeneration,
) -> Result<TrainReport, NnError> {
    let PendingGeneration {
        generation,
        n_samples,
        n_faulty,
        started,
    } = pending;
    validate_generation(&generation)?;
    let version = registry.publish_backend(generation.general, generation.specialized);
    Ok(TrainReport {
        version,
        backend: generation.backend,
        n_samples,
        n_faulty,
        specialized: generation.specialized_ids,
        duration_secs: started.elapsed().as_secs_f64(),
    })
}

/// Where a supervised generation is published once trained: directly into
/// a [`ModelRegistry`] (the classic everything-swaps publish) or through a
/// [`GenerationLifecycle`](crate::rollout::GenerationLifecycle) that
/// stages it as a canary and persists it to the durable store.
pub trait GenerationPublisher: Send + Sync + fmt::Debug {
    /// Gate and publish a pending generation.
    fn publish_pending(&self, pending: PendingGeneration) -> Result<TrainReport, NnError>;

    /// True when some generation is currently serving (drives whether a
    /// training failure degrades health or leaves the service model-less).
    fn has_model(&self) -> bool;
}

impl GenerationPublisher for ModelRegistry {
    fn publish_pending(&self, pending: PendingGeneration) -> Result<TrainReport, NnError> {
        publish_generation(self, pending)
    }

    fn has_model(&self) -> bool {
        self.is_ready()
    }
}

/// Train one generation of `kind` from the collector's current contents
/// and publish it (unsupervised: panics propagate; use
/// [`supervised_retrain`] for crash isolation).
///
/// `general_services` picks the services the general model trains on
/// (paper: eight). When the backend supports specialisation (DiagNet),
/// specialised models are built for every service with at least
/// `min_service_samples` samples; other backends publish the general model
/// alone.
pub fn retrain_backend(
    collector: &ProbeCollector,
    registry: &ModelRegistry,
    kind: BackendKind,
    config: &BackendConfig,
    general_services: &[ServiceId],
    min_service_samples: usize,
    seed: u64,
) -> Result<TrainReport, NnError> {
    let _span = diagnet_obs::span("platform.retrain");
    let obs = diagnet_obs::global();
    let timer = obs
        .histogram(
            RETRAIN_DURATION_SECONDS,
            &[("backend", kind.token())],
            "wall-clock duration of one training generation",
        )
        .start_timer();
    let pipeline = StandardPipeline {
        kind,
        config: config.clone(),
        general_services: general_services.to_vec(),
        min_service_samples,
    };
    let result = build_generation(collector, &pipeline, seed)
        .and_then(|pending| publish_generation(registry, pending));
    timer.stop();
    let outcome = if result.is_ok() { "ok" } else { "error" };
    obs.counter(
        RETRAIN_TOTAL,
        &[("backend", kind.token()), ("outcome", outcome)],
        "retrain attempts by outcome",
    )
    .inc();
    result
}

/// DiagNet-typed wrapper over [`retrain_backend`], kept for call sites
/// that predate the backend abstraction.
pub fn retrain(
    collector: &ProbeCollector,
    registry: &ModelRegistry,
    config: &DiagNetConfig,
    general_services: &[ServiceId],
    min_service_samples: usize,
    seed: u64,
) -> Result<TrainReport, NnError> {
    retrain_backend(
        collector,
        registry,
        BackendKind::DiagNet,
        &BackendConfig::from_diagnet(config.clone()),
        general_services,
        min_service_samples,
        seed,
    )
}

/// Commands accepted by the background worker.
enum Command {
    Retrain { seed: u64 },
    Shutdown,
}

/// A background retraining worker on a dedicated thread. Every generation
/// runs under the supervisor: panics are caught, stalls are bounded by the
/// configured budget, transient failures retry with backoff, and the
/// shared [`HealthMonitor`] tracks the outcome.
pub struct RetrainWorker {
    commands: crossbeam::channel::Sender<Command>,
    reports: crossbeam::channel::Receiver<Result<TrainReport, TrainFailure>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RetrainWorker {
    /// Spawn the worker. It holds shared handles on the collector,
    /// registry and health monitor and runs `pipeline` generations on
    /// demand under `supervision`. `Err` means the OS refused the worker
    /// thread; the caller decides whether to degrade or propagate.
    pub fn spawn(
        collector: Arc<ProbeCollector>,
        registry: Arc<ModelRegistry>,
        pipeline: Arc<dyn TrainPipeline>,
        supervision: SupervisionConfig,
        health: Arc<HealthMonitor>,
    ) -> Result<Self, TrainFailure> {
        let publisher: Arc<dyn GenerationPublisher> = registry;
        RetrainWorker::spawn_with(collector, publisher, pipeline, supervision, health)
    }

    /// [`RetrainWorker::spawn`] generalised over the publish seam: the
    /// lifecycle manager passes itself here so supervised generations are
    /// canaried and persisted instead of swap-published.
    pub fn spawn_with(
        collector: Arc<ProbeCollector>,
        publisher: Arc<dyn GenerationPublisher>,
        pipeline: Arc<dyn TrainPipeline>,
        supervision: SupervisionConfig,
        health: Arc<HealthMonitor>,
    ) -> Result<Self, TrainFailure> {
        let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<Command>();
        let (rep_tx, rep_rx) = crossbeam::channel::unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("diagnet-retrain".into())
            .spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    // Queued commands are skipped once shutdown begins, so
                    // Drop never waits behind a backlog of generations.
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    match cmd {
                        Command::Retrain { seed } => {
                            let report = supervised_retrain_with(
                                &collector,
                                &publisher,
                                &pipeline,
                                &supervision,
                                &health,
                                seed,
                                &flag,
                            );
                            if rep_tx.send(report).is_err() {
                                break; // owner gone
                            }
                        }
                        Command::Shutdown => break,
                    }
                }
            })
            .map_err(|e| TrainFailure::Spawn(e.to_string()))?;
        Ok(RetrainWorker {
            commands: cmd_tx,
            reports: rep_rx,
            shutdown,
            handle: Some(handle),
        })
    }

    /// Request a retrain; does not block.
    pub fn request_retrain(&self, seed: u64) {
        let _ = self.commands.send(Command::Retrain { seed });
    }

    /// Wait for the next training report.
    pub fn wait_report(&self) -> Result<TrainReport, TrainFailure> {
        self.reports.recv().unwrap_or(Err(TrainFailure::Cancelled))
    }

    /// Try to fetch a report without blocking.
    pub fn try_report(&self) -> Option<Result<TrainReport, TrainFailure>> {
        self.reports.try_recv().ok()
    }

    /// Wait for the next report up to `timeout`; `None` when none arrives
    /// in time (e.g. no retrain was ever requested — the blocking
    /// [`RetrainWorker::wait_report`] would hang in that case).
    pub fn wait_report_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Result<TrainReport, TrainFailure>> {
        self.reports.recv_timeout(timeout).ok()
    }
}

impl Drop for RetrainWorker {
    fn drop(&mut self) {
        // Flag first: the worker skips queued commands and the supervisor
        // stops retrying/backing off at its next cancellation checkpoint.
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.commands.send(Command::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_sim::dataset::DatasetConfig;
    use diagnet_sim::world::World;

    fn loaded_collector(seed: u64) -> (World, Arc<ProbeCollector>) {
        let world = World::new();
        let collector = Arc::new(ProbeCollector::new(100_000, FeatureSchema::full()));
        let mut cfg = DatasetConfig::small(&world, seed);
        cfg.n_scenarios = 15;
        for s in Dataset::generate(&world, &cfg).expect("generate").samples {
            collector.submit(s);
        }
        (world, collector)
    }

    fn fast_config() -> DiagNetConfig {
        let mut c = DiagNetConfig::fast();
        c.epochs = 2;
        c.forest.n_trees = 5;
        c
    }

    fn fast_pipeline(world: &World) -> Arc<dyn TrainPipeline> {
        Arc::new(StandardPipeline {
            kind: BackendKind::DiagNet,
            config: BackendConfig::from_diagnet(fast_config()),
            general_services: world.catalog.general_ids(),
            min_service_samples: 1,
        })
    }

    #[test]
    fn synchronous_retrain_publishes() {
        let (world, collector) = loaded_collector(81);
        let registry = ModelRegistry::new();
        let report = retrain(
            &collector,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            81,
        )
        .unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.backend, BackendKind::DiagNet);
        assert_eq!(report.n_samples, collector.len(), "snapshot, not drain");
        assert_eq!(report.specialized.len(), world.catalog.len());
        assert!(registry.is_ready());
        assert!(report.duration_secs > 0.0);
    }

    #[test]
    fn empty_collector_is_an_error() {
        let world = World::new();
        let collector = ProbeCollector::new(10, FeatureSchema::full());
        let registry = ModelRegistry::new();
        assert!(retrain(
            &collector,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            1
        )
        .is_err());
        assert!(!registry.is_ready());
    }

    #[test]
    fn baseline_backends_retrain_and_publish() {
        let (world, collector) = loaded_collector(85);
        let registry = ModelRegistry::new();
        let mut config = BackendConfig::from_diagnet(fast_config());
        config.bayes.kde_cap = 64;
        for (i, kind) in [BackendKind::Forest, BackendKind::NaiveBayes]
            .into_iter()
            .enumerate()
        {
            let report = retrain_backend(
                &collector,
                &registry,
                kind,
                &config,
                &world.catalog.general_ids(),
                1,
                85,
            )
            .unwrap();
            assert_eq!(report.version, i as u64 + 1);
            assert_eq!(report.backend, kind);
            assert!(report.specialized.is_empty(), "baselines do not specialise");
            let served = registry.general().unwrap();
            assert_eq!(served.describe().kind, kind);
        }
    }

    /// Delta-based asserts: the global registry is shared with other tests
    /// running in the same process.
    #[test]
    #[cfg(feature = "obs")]
    fn retrains_are_timed_and_counted() {
        let ok_labels: &[(&str, &str)] = &[("backend", "diagnet"), ("outcome", "ok")];
        let before_ok = diagnet_obs::global()
            .snapshot()
            .counter(RETRAIN_TOTAL, ok_labels)
            .unwrap_or(0);
        let (world, collector) = loaded_collector(86);
        let registry = ModelRegistry::new();
        retrain(
            &collector,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            86,
        )
        .unwrap();
        let empty = ProbeCollector::new(10, FeatureSchema::full());
        assert!(retrain(
            &empty,
            &registry,
            &fast_config(),
            &world.catalog.general_ids(),
            1,
            1
        )
        .is_err());

        let snap = diagnet_obs::global().snapshot();
        assert!(snap.counter(RETRAIN_TOTAL, ok_labels).unwrap_or(0) > before_ok);
        assert!(
            snap.counter(
                RETRAIN_TOTAL,
                &[("backend", "diagnet"), ("outcome", "error")]
            )
            .unwrap_or(0)
                >= 1,
            "failed retrain not counted"
        );
        let hist = snap
            .histogram(RETRAIN_DURATION_SECONDS, &[("backend", "diagnet")])
            .unwrap();
        assert!(hist.count >= 1);
        assert!(hist.sum > 0.0);
        let span = snap
            .histogram(
                diagnet_obs::span::SPAN_HISTOGRAM,
                &[("span", "platform.retrain")],
            )
            .unwrap();
        assert!(span.count >= 1);
    }

    #[test]
    fn background_worker_round_trip() {
        let (world, collector) = loaded_collector(83);
        let registry = Arc::new(ModelRegistry::new());
        let health = Arc::new(HealthMonitor::new());
        let worker = RetrainWorker::spawn(
            Arc::clone(&collector),
            Arc::clone(&registry),
            fast_pipeline(&world),
            SupervisionConfig::default(),
            Arc::clone(&health),
        )
        .expect("spawn retrain worker");
        assert!(worker.try_report().is_none());
        worker.request_retrain(83);
        let report = worker.wait_report().unwrap();
        assert_eq!(report.version, 1);
        assert!(registry.is_ready());
        assert_eq!(health.state(), crate::health::HealthState::Serving);
        // Second generation bumps the version.
        worker.request_retrain(84);
        let report = worker.wait_report().unwrap();
        assert_eq!(report.version, 2);
    }

    #[test]
    fn drop_skips_queued_generations() {
        let (world, collector) = loaded_collector(87);
        let registry = Arc::new(ModelRegistry::new());
        let worker = RetrainWorker::spawn(
            Arc::clone(&collector),
            Arc::clone(&registry),
            fast_pipeline(&world),
            SupervisionConfig::default(),
            Arc::new(HealthMonitor::new()),
        )
        .expect("spawn retrain worker");
        // Queue a deep backlog, then drop. Without the shutdown flag the
        // worker would train every queued generation before joining.
        for i in 0..50 {
            worker.request_retrain(1000 + i);
        }
        let t0 = Instant::now();
        drop(worker);
        // One in-flight generation may finish (it cannot be killed), but
        // the other 49 must be skipped: far below 49 × training time.
        let one_generation_budget = std::time::Duration::from_secs(30);
        assert!(
            t0.elapsed() < one_generation_budget,
            "drop waited on the queued backlog: {:?}",
            t0.elapsed()
        );
        assert!(
            registry.version() < 50,
            "queued generations should have been skipped"
        );
    }
}
