//! Property-based tests of trees and forests: probabilistic outputs,
//! determinism and structural bounds for arbitrary datasets.

use diagnet_forest::{DecisionTree, ExtensibleForest, ForestConfig, RandomForest, TreeConfig};
use diagnet_rng::SplitMix64;
use proptest::prelude::*;

/// A labelled dataset: n samples × d features, c classes, generated from a
/// seed (arbitrary but reproducible structure).
#[derive(Debug, Clone)]
struct Data {
    rows: Vec<Vec<f32>>,
    labels: Vec<usize>,
    n_classes: usize,
}

fn dataset() -> impl Strategy<Value = Data> {
    (5usize..60, 1usize..6, 2usize..5, 0u64..10_000).prop_map(|(n, d, c, seed)| {
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..d).map(|_| rng.uniform(-10.0, 10.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..n).map(|_| rng.next_below(c)).collect();
        Data {
            rows,
            labels,
            n_classes: c,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tree leaves always emit proper distributions and respect max depth.
    #[test]
    fn tree_probabilities_and_depth(data in dataset(), depth in 1usize..6) {
        let cfg = TreeConfig { max_depth: depth, ..Default::default() };
        let idx: Vec<usize> = (0..data.rows.len()).collect();
        let tree = DecisionTree::fit(
            &cfg, &data.rows, &data.labels, data.n_classes, &idx, &mut SplitMix64::new(1),
        );
        prop_assert!(tree.depth() <= depth);
        for row in data.rows.iter().take(10) {
            let p = tree.predict_proba(row);
            prop_assert_eq!(p.len(), data.n_classes);
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Training twice with the same seed gives identical predictions; the
    /// prediction is always a legal class.
    #[test]
    fn forest_deterministic_and_legal(data in dataset(), seed in 0u64..1000) {
        let cfg = ForestConfig { n_trees: 7, max_depth: 4, seed, ..Default::default() };
        let f1 = RandomForest::fit(&cfg, &data.rows, &data.labels, data.n_classes);
        let f2 = RandomForest::fit(&cfg, &data.rows, &data.labels, data.n_classes);
        for row in data.rows.iter().take(10) {
            prop_assert_eq!(f1.predict_proba(row), f2.predict_proba(row));
            prop_assert!(f1.predict(row) < data.n_classes);
        }
    }

    /// A forest trained on perfectly separable data classifies its own
    /// training set (almost) perfectly.
    #[test]
    fn forest_fits_separable_data(n in 20usize..80, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let cls = i % 2;
                vec![cls as f32 * 10.0 + rng.uniform(-1.0, 1.0)]
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let forest = RandomForest::fit(&ForestConfig::paper_default(seed), &rows, &labels, 2);
        let correct = rows.iter().zip(&labels).filter(|(r, &l)| forest.predict(r) == l).count();
        prop_assert!(correct as f32 / n as f32 > 0.9);
    }

    /// Extensible forest scores: correct length, non-negative, normalised
    /// together with the nominal mass, and every cause keeps support > 0
    /// whenever the forest is not fully certain.
    #[test]
    fn extensible_scores_well_formed(seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let n_causes = 6;
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|i| {
                let mut row: Vec<f32> = (0..n_causes).map(|_| rng.uniform(0.0, 1.0)).collect();
                if i % 3 != 0 {
                    row[i % n_causes] += 5.0;
                }
                row
            })
            .collect();
        let labels: Vec<usize> =
            (0..60).map(|i| if i % 3 == 0 { n_causes } else { i % n_causes }).collect();
        let cfg = ForestConfig { n_trees: 9, seed, ..Default::default() };
        let model = ExtensibleForest::fit(&cfg, &rows, &labels, n_causes);
        for row in rows.iter().take(10) {
            let s = model.scores(row);
            prop_assert_eq!(s.len(), n_causes);
            prop_assert!(s.iter().all(|&v| v >= 0.0));
            let total: f32 = s.iter().sum();
            // Scores + untouched nominal share = 1 after redistribution.
            prop_assert!((total - 1.0).abs() < 1e-3, "total {total}");
        }
    }

    /// Bootstrap subsets never panic even when tiny.
    #[test]
    fn tiny_index_sets_are_fine(data in dataset(), pick in 0usize..5) {
        let idx = vec![pick % data.rows.len()];
        let tree = DecisionTree::fit(
            &TreeConfig::default(), &data.rows, &data.labels, data.n_classes, &idx,
            &mut SplitMix64::new(3),
        );
        prop_assert_eq!(tree.n_nodes(), 1);
    }
}
