//! CART decision trees with the Gini impurity criterion.
//!
//! Trees store class *distributions* at leaves (not just the majority
//! class) so that forests can average calibrated probabilities — the score
//! vectors the extensible wrapper redistributes.

use diagnet_rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Tree-growing configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (paper: 10).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features examined per split; `None` = all
    /// (single trees), forests typically use `√m`.
    pub n_feature_candidates: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 2,
            n_feature_candidates: None,
        }
    }
}

/// A tree node. Indices refer into [`DecisionTree::nodes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    /// Terminal node holding a class distribution.
    Leaf {
        /// Normalised class frequencies of the training samples that
        /// reached this leaf.
        probs: Vec<f32>,
    },
    /// Internal split: `feature < threshold` goes left, else right.
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// Per-feature split counts — a cheap proxy for Gini importance used to
/// compare the forest's notion of informative features against DiagNet's
/// attention (NetPoirot-style analysis).
fn accumulate_split_counts(nodes: &[Node], out: &mut [usize]) {
    for node in nodes {
        if let Node::Split { feature, .. } = node {
            if let Some(slot) = out.get_mut(*feature) {
                *slot += 1;
            }
        }
    }
}

/// A fitted CART classification tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

/// Gini impurity of a class-count histogram.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

impl DecisionTree {
    /// Fit a tree on `rows` (each of equal length) with integer labels
    /// `y < n_classes`. `indices` selects the training subset (bootstrap
    /// sample for forests); `rng` drives feature subsampling.
    ///
    /// # Panics
    /// Panics if inputs are inconsistent or empty.
    pub fn fit(
        config: &TreeConfig,
        rows: &[Vec<f32>],
        y: &[usize],
        n_classes: usize,
        indices: &[usize],
        rng: &mut SplitMix64,
    ) -> Self {
        assert_eq!(rows.len(), y.len(), "DecisionTree::fit: row/label mismatch");
        assert!(!indices.is_empty(), "DecisionTree::fit: empty index set");
        assert!(n_classes > 0, "DecisionTree::fit: need at least one class");
        assert!(
            y.iter().all(|&l| l < n_classes),
            "DecisionTree::fit: label out of range"
        );
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
        };
        let mut idx = indices.to_vec();
        tree.build(config, rows, y, &mut idx, 0, rng);
        tree
    }

    /// Recursively grow the subtree over `indices`, returning its node id.
    fn build(
        &mut self,
        config: &TreeConfig,
        rows: &[Vec<f32>],
        y: &[usize],
        indices: &mut [usize],
        depth: usize,
        rng: &mut SplitMix64,
    ) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices.iter() {
            counts[y[i]] += 1;
        }
        let total = indices.len();
        let node_gini = gini(&counts, total);
        let make_leaf = |counts: &[usize]| Node::Leaf {
            probs: counts.iter().map(|&c| c as f32 / total as f32).collect(),
        };
        if depth >= config.max_depth || total < config.min_samples_split || node_gini == 0.0 {
            self.nodes.push(make_leaf(&counts));
            return self.nodes.len() - 1;
        }
        let n_features = rows[0].len();
        let candidates: Vec<usize> = match config.n_feature_candidates {
            Some(k) if k < n_features => rng.sample_indices(n_features, k),
            _ => (0..n_features).collect(),
        };
        // Best split: (weighted child impurity, feature, threshold).
        let mut best: Option<(f64, usize, f32)> = None;
        let mut sorted: Vec<(f32, usize)> = Vec::with_capacity(total);
        for &feat in &candidates {
            sorted.clear();
            sorted.extend(indices.iter().map(|&i| (rows[i][feat], y[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = counts.clone();
            for w in 0..total - 1 {
                let (v, cls) = sorted[w];
                left_counts[cls] += 1;
                right_counts[cls] -= 1;
                let next_v = sorted[w + 1].0;
                if next_v <= v {
                    continue; // no boundary between equal values
                }
                let n_left = w + 1;
                let n_right = total - n_left;
                let score = (n_left as f64 * gini(&left_counts, n_left)
                    + n_right as f64 * gini(&right_counts, n_right))
                    / total as f64;
                // Zero-gain splits are accepted (`<=`): problems like XOR
                // have no first-level gain yet are separable deeper down.
                if best.map_or(score <= node_gini, |(b, _, _)| score < b) {
                    best = Some((score, feat, 0.5 * (v + next_v)));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            self.nodes.push(make_leaf(&counts));
            return self.nodes.len() - 1;
        };
        // Partition indices in place.
        let mut lo = 0usize;
        let mut hi = indices.len();
        while lo < hi {
            if rows[indices[lo]][feature] < threshold {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        debug_assert!(lo > 0 && lo < indices.len(), "split must separate samples");
        // Reserve this node's slot before recursing so children get later
        // ids and the tree serialises in preorder.
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { probs: Vec::new() }); // placeholder
        let (left_idx, right_idx) = indices.split_at_mut(lo);
        let left = self.build(config, rows, y, left_idx, depth + 1, rng);
        let right = self.build(config, rows, y, right_idx, depth + 1, rng);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    /// Class-probability estimate for one sample.
    pub fn predict_proba(&self, row: &[f32]) -> Vec<f32> {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs } => return probs.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Accumulate this tree's probability estimate into `out` (len
    /// `n_classes`), avoiding a per-call allocation in forest voting.
    pub fn accumulate_proba(&self, row: &[f32], out: &mut [f32]) {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs } => {
                    for (o, &p) in out.iter_mut().zip(probs) {
                        *o += p;
                    }
                    return;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Most likely class for one sample.
    pub fn predict(&self, row: &[f32]) -> usize {
        let probs = self.predict_proba(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of nodes (for size assertions / benchmarks).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulate this tree's per-feature split counts into `out`.
    pub fn accumulate_feature_usage(&self, out: &mut [usize]) {
        accumulate_split_counts(&self.nodes, out);
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially separable 1-D dataset.
    fn step_data(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32]).collect();
        let y: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        (rows, y)
    }

    fn all_indices(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn learns_a_step_function() {
        let (rows, y) = step_data(40);
        let tree = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            2,
            &all_indices(40),
            &mut SplitMix64::new(1),
        );
        for (row, &label) in rows.iter().zip(&y) {
            assert_eq!(tree.predict(row), label);
        }
        // A single split suffices.
        assert_eq!(tree.n_nodes(), 3);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn respects_max_depth() {
        // XOR-ish data needs depth 2; cap at 1 and verify the cap.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&cfg, &rows, &y, 2, &all_indices(4), &mut SplitMix64::new(2));
        assert!(tree.depth() <= 1);
        let deep = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            2,
            &all_indices(4),
            &mut SplitMix64::new(2),
        );
        for (row, &label) in rows.iter().zip(&y) {
            assert_eq!(deep.predict(row), label, "depth-unlimited tree solves XOR");
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let tree = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            3,
            &all_indices(3),
            &mut SplitMix64::new(3),
        );
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_proba(&[2.0]), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn constant_features_yield_prior_leaf() {
        let rows = vec![vec![5.0]; 10];
        let y: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let tree = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            2,
            &all_indices(10),
            &mut SplitMix64::new(4),
        );
        assert_eq!(tree.n_nodes(), 1, "no valid split on constant data");
        assert_eq!(tree.predict_proba(&[5.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (rows, y) = step_data(30);
        let cfg = TreeConfig {
            max_depth: 2,
            min_samples_split: 10,
            ..Default::default()
        };
        let tree = DecisionTree::fit(
            &cfg,
            &rows,
            &y,
            2,
            &all_indices(30),
            &mut SplitMix64::new(5),
        );
        for row in &rows {
            let p = tree.predict_proba(row);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn bootstrap_subset_training() {
        let (rows, y) = step_data(40);
        // Train only on even indices; still learns the boundary.
        let subset: Vec<usize> = (0..40).step_by(2).collect();
        let tree = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            2,
            &subset,
            &mut SplitMix64::new(6),
        );
        assert_eq!(tree.predict(&[5.0]), 0);
        assert_eq!(tree.predict(&[35.0]), 1);
    }

    #[test]
    fn feature_subsampling_still_learns_with_redundancy() {
        // Two redundant informative features; examining 1 per split is
        // always enough.
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, i as f32 * 2.0]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let cfg = TreeConfig {
            n_feature_candidates: Some(1),
            ..Default::default()
        };
        let tree = DecisionTree::fit(
            &cfg,
            &rows,
            &y,
            2,
            &all_indices(40),
            &mut SplitMix64::new(7),
        );
        let correct = rows
            .iter()
            .zip(&y)
            .filter(|(r, &l)| tree.predict(r) == l)
            .count();
        assert_eq!(correct, 40);
    }

    #[test]
    fn accumulate_matches_predict_proba() {
        let (rows, y) = step_data(20);
        let tree = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            2,
            &all_indices(20),
            &mut SplitMix64::new(8),
        );
        let mut acc = vec![0.25f32, 0.5];
        tree.accumulate_proba(&[3.0], &mut acc);
        let p = tree.predict_proba(&[3.0]);
        assert!((acc[0] - 0.25 - p[0]).abs() < 1e-6);
        assert!((acc[1] - 0.5 - p[1]).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, y) = step_data(50);
        let cfg = TreeConfig {
            n_feature_candidates: Some(1),
            ..Default::default()
        };
        let t1 = DecisionTree::fit(
            &cfg,
            &rows,
            &y,
            2,
            &all_indices(50),
            &mut SplitMix64::new(9),
        );
        let t2 = DecisionTree::fit(
            &cfg,
            &rows,
            &y,
            2,
            &all_indices(50),
            &mut SplitMix64::new(9),
        );
        assert_eq!(format!("{t1:?}"), format!("{t2:?}"));
    }

    #[test]
    fn feature_usage_counts_splits() {
        let (rows, y) = step_data(40);
        let tree = DecisionTree::fit(
            &TreeConfig::default(),
            &rows,
            &y,
            2,
            &all_indices(40),
            &mut SplitMix64::new(31),
        );
        let mut usage = vec![0usize; 1];
        tree.accumulate_feature_usage(&mut usage);
        assert_eq!(
            usage[0],
            tree.n_nodes() / 2,
            "every split uses the single feature"
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        DecisionTree::fit(
            &TreeConfig::default(),
            &[vec![1.0]],
            &[5],
            2,
            &[0],
            &mut SplitMix64::new(1),
        );
    }
}
