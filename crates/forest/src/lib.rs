//! # diagnet-forest — decision trees and random forests
//!
//! Implements the paper's random-forest components from scratch:
//!
//! * [`tree`] — CART decision trees with Gini impurity;
//! * [`forest`] — bagged random forests (the paper's hyper-parameters:
//!   Gini criterion, 50 estimators, maximum depth 10 — Table I), trained in
//!   parallel with rayon but bit-deterministic in the seed;
//! * [`extensible`] — the *Extensible Random Forest Classifier* baseline of
//!   §IV-B(a): feature dimension padded to the maximum size with zeros for
//!   missing landmarks, plus a special "unknown" class whose score is
//!   evenly redistributed over every cause so that root causes never seen
//!   during training keep a non-null score.
//!
//! The same [`extensible::ExtensibleForest`] doubles as DiagNet's
//! *auxiliary model* in ensemble averaging (§III-F), "designed to be
//! simpler and specialized in known root causes".

pub mod extensible;
pub mod forest;
pub mod tree;

pub use extensible::{spread_nominal_mass, ExtensibleForest};
pub use forest::{FeatureSubsample, ForestConfig, RandomForest};
pub use tree::{DecisionTree, TreeConfig};
