//! Bagged random forests (Breiman 2001) with the paper's configuration.

use crate::tree::{DecisionTree, TreeConfig};
use diagnet_rng::SplitMix64;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How many features each split examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSubsample {
    /// All features (turns bagging into pure bootstrap aggregation).
    All,
    /// `⌈√m⌉` features per split (the usual random-forest default).
    Sqrt,
    /// A fixed number of features per split.
    Fixed(usize),
}

impl FeatureSubsample {
    fn resolve(self, n_features: usize) -> Option<usize> {
        match self {
            FeatureSubsample::All => None,
            FeatureSubsample::Sqrt => Some((n_features as f64).sqrt().ceil() as usize),
            FeatureSubsample::Fixed(k) => Some(k.min(n_features)),
        }
    }
}

/// Forest configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (paper: 50).
    pub n_trees: usize,
    /// Maximum depth per tree (paper: 10).
    pub max_depth: usize,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Per-split feature subsampling.
    pub feature_subsample: FeatureSubsample,
    /// Master seed; each tree derives its own bootstrap + split seeds.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            max_depth: 10,
            min_samples_split: 2,
            feature_subsample: FeatureSubsample::Sqrt,
            seed: 0,
        }
    }
}

impl ForestConfig {
    /// The paper's Table I configuration with an explicit seed.
    pub fn paper_default(seed: u64) -> Self {
        ForestConfig {
            seed,
            ..Default::default()
        }
    }
}

/// A fitted random forest.
///
/// ```
/// use diagnet_forest::{ForestConfig, RandomForest};
/// // A one-dimensional two-class problem.
/// let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
/// let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
/// let forest = RandomForest::fit(&ForestConfig::paper_default(1), &rows, &labels, 2);
/// assert_eq!(forest.predict(&[5.0]), 0);
/// assert_eq!(forest.predict(&[35.0]), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Train a forest. Trees are grown in parallel; each tree's bootstrap
    /// sample and split randomness derive from `config.seed` and the tree
    /// index, so results do not depend on the thread count.
    ///
    /// # Panics
    /// Panics on empty/inconsistent inputs.
    pub fn fit(config: &ForestConfig, rows: &[Vec<f32>], y: &[usize], n_classes: usize) -> Self {
        assert!(!rows.is_empty(), "RandomForest::fit: empty training set");
        assert_eq!(rows.len(), y.len(), "RandomForest::fit: row/label mismatch");
        assert!(
            config.n_trees > 0,
            "RandomForest::fit: need at least one tree"
        );
        let n = rows.len();
        let tree_cfg = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            n_feature_candidates: config.feature_subsample.resolve(rows[0].len()),
        };
        let trees: Vec<DecisionTree> = (0..config.n_trees as u64)
            .into_par_iter()
            .map(|t| {
                let mut rng = SplitMix64::new(SplitMix64::derive(config.seed, t));
                // Bootstrap: n draws with replacement.
                let indices: Vec<usize> = (0..n).map(|_| rng.next_below(n)).collect();
                DecisionTree::fit(&tree_cfg, rows, y, n_classes, &indices, &mut rng)
            })
            .collect();
        RandomForest { trees, n_classes }
    }

    /// Mean class-probability estimate over all trees.
    pub fn predict_proba(&self, row: &[f32]) -> Vec<f32> {
        let mut probs = vec![0.0f32; self.n_classes];
        for tree in &self.trees {
            tree.accumulate_proba(row, &mut probs);
        }
        let inv = 1.0 / self.trees.len() as f32;
        for p in &mut probs {
            *p *= inv;
        }
        probs
    }

    /// Most likely class per sample.
    pub fn predict(&self, row: &[f32]) -> usize {
        let probs = self.predict_proba(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Batch probability predictions, parallelised over samples.
    pub fn predict_proba_batch(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.par_iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Batch class predictions.
    pub fn predict_batch(&self, rows: &[Vec<f32>]) -> Vec<usize> {
        rows.par_iter().map(|r| self.predict(r)).collect()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across the ensemble (the forest's "parameter
    /// count" in model-size comparisons).
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }

    /// Normalised per-feature importance: the fraction of all splits in
    /// the ensemble that test each feature. Zero vector if the forest
    /// never split (degenerate data).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f32> {
        let mut counts = vec![0usize; n_features];
        for tree in &self.trees {
            tree.accumulate_feature_usage(&mut counts);
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return vec![0.0; n_features];
        }
        counts.iter().map(|&c| c as f32 / total as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two noisy 2-D blobs.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.5 } else { 1.5 };
            rows.push(vec![rng.normal_with(c, 1.0), rng.normal_with(c, 1.0)]);
            y.push(cls);
        }
        (rows, y)
    }

    #[test]
    fn fits_blobs_better_than_chance() {
        let (rows, y) = blobs(300, 1);
        let forest = RandomForest::fit(&ForestConfig::paper_default(3), &rows, &y, 2);
        let correct = rows
            .iter()
            .zip(&y)
            .filter(|(r, &l)| forest.predict(r) == l)
            .count();
        assert!(
            correct as f32 / y.len() as f32 > 0.9,
            "accuracy {}",
            correct as f32 / 300.0
        );
    }

    #[test]
    fn paper_configuration() {
        let cfg = ForestConfig::paper_default(0);
        assert_eq!(cfg.n_trees, 50);
        assert_eq!(cfg.max_depth, 10);
    }

    #[test]
    fn probabilities_normalised() {
        let (rows, y) = blobs(100, 2);
        let forest = RandomForest::fit(&ForestConfig::paper_default(5), &rows, &y, 2);
        for r in rows.iter().take(20) {
            let p = forest.predict_proba(r);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_across_runs_despite_parallelism() {
        let (rows, y) = blobs(150, 3);
        let a = RandomForest::fit(&ForestConfig::paper_default(7), &rows, &y, 2);
        let b = RandomForest::fit(&ForestConfig::paper_default(7), &rows, &y, 2);
        for r in rows.iter().take(30) {
            assert_eq!(a.predict_proba(r), b.predict_proba(r));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (rows, y) = blobs(150, 4);
        let a = RandomForest::fit(&ForestConfig::paper_default(1), &rows, &y, 2);
        let b = RandomForest::fit(&ForestConfig::paper_default(2), &rows, &y, 2);
        let diff = rows
            .iter()
            .any(|r| a.predict_proba(r) != b.predict_proba(r));
        assert!(diff, "seeds should change the ensemble");
    }

    #[test]
    fn batch_matches_single() {
        let (rows, y) = blobs(80, 5);
        let forest = RandomForest::fit(&ForestConfig::paper_default(9), &rows, &y, 2);
        let batch = forest.predict_proba_batch(&rows);
        for (r, b) in rows.iter().zip(&batch) {
            assert_eq!(&forest.predict_proba(r), b);
        }
        assert_eq!(
            forest.predict_batch(&rows),
            rows.iter().map(|r| forest.predict(r)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forest_beats_single_shallow_tree_on_noisy_data() {
        let (rows, y) = blobs(400, 6);
        let (train_r, test_r) = rows.split_at(300);
        let (train_y, test_y) = y.split_at(300);
        let single_cfg = ForestConfig {
            n_trees: 1,
            max_depth: 3,
            feature_subsample: FeatureSubsample::Fixed(1),
            seed: 1,
            ..Default::default()
        };
        let forest_cfg = ForestConfig {
            n_trees: 50,
            max_depth: 3,
            feature_subsample: FeatureSubsample::Fixed(1),
            seed: 1,
            ..Default::default()
        };
        let acc = |f: &RandomForest| {
            test_r
                .iter()
                .zip(test_y)
                .filter(|(r, &l)| f.predict(r) == l)
                .count() as f32
                / test_y.len() as f32
        };
        let single = RandomForest::fit(&single_cfg, train_r, train_y, 2);
        let forest = RandomForest::fit(&forest_cfg, train_r, train_y, 2);
        assert!(acc(&forest) >= acc(&single), "ensemble should not hurt");
    }

    #[test]
    fn multiclass_support() {
        let mut rng = SplitMix64::new(11);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let cls = i % 3;
            let c = cls as f32 * 3.0;
            rows.push(vec![rng.normal_with(c, 0.5)]);
            y.push(cls);
        }
        let forest = RandomForest::fit(&ForestConfig::paper_default(13), &rows, &y, 3);
        let correct = rows
            .iter()
            .zip(&y)
            .filter(|(r, &l)| forest.predict(r) == l)
            .count();
        assert!(correct as f32 / 300.0 > 0.95);
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // Feature 0 carries all the signal; feature 1 is noise.
        let mut rng = SplitMix64::new(41);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![if i % 2 == 0 { -2.0 } else { 2.0 }, rng.normal()])
            .collect();
        let y: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let forest = RandomForest::fit(&ForestConfig::paper_default(3), &rows, &y, 2);
        let imp = forest.feature_importance(2);
        assert!((imp.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(imp[0] > imp[1] * 2.0, "importance {imp:?}");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_input() {
        RandomForest::fit(&ForestConfig::default(), &[], &[], 2);
    }
}
