//! The *Extensible Random Forest Classifier* of paper §IV-B(a).
//!
//! The classifier predicts root causes directly: its classes are the
//! candidate causes (one per feature of the **maximum** feature space)
//! plus one special *unknown/nominal* class. To obtain extensibility:
//!
//! * inputs are always expressed in the maximum feature dimension, with
//!   missing (untrained-landmark) values set to zero;
//! * the score the forest assigns to the special class is **evenly
//!   redistributed** over every cause, so causes absent from training keep
//!   a non-null score — the paper notes this still leaves the model
//!   essentially random on new landmarks, which Fig. 5 confirms.

use crate::forest::{ForestConfig, RandomForest};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Evenly redistribute the special nominal/unknown class's probability mass
/// over the `n_causes` cause classes (§IV-B(a)).
///
/// `probs` is a forest probability vector of width `n_causes + 1`, with the
/// nominal class last; the returned vector has width `n_causes` and the same
/// total mass. This is the forest half of the shared "unknown score" logic —
/// the naive-Bayes counterpart is `diagnet_bayes`'s generic-cause mixture.
pub fn spread_nominal_mass(probs: &[f32], n_causes: usize) -> Vec<f32> {
    let nominal_mass = probs[n_causes];
    let share = nominal_mass / n_causes as f32;
    probs[..n_causes].iter().map(|&p| p + share).collect()
}

/// Extensible root-cause classifier backed by a random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensibleForest {
    forest: RandomForest,
    /// Number of candidate causes (= maximum feature dimension).
    n_causes: usize,
}

impl ExtensibleForest {
    /// Class index used for nominal/unknown samples.
    pub fn nominal_class(&self) -> usize {
        self.n_causes
    }

    /// Train on rows of the maximum feature dimension (`n_causes` wide,
    /// with zeros for missing landmarks). `labels[i]` is the cause feature
    /// index, or `n_causes` for nominal samples.
    ///
    /// # Panics
    /// Panics on inconsistent input or labels outside `0..=n_causes`.
    pub fn fit(
        config: &ForestConfig,
        rows: &[Vec<f32>],
        labels: &[usize],
        n_causes: usize,
    ) -> Self {
        assert!(
            !rows.is_empty(),
            "ExtensibleForest::fit: empty training set"
        );
        assert!(
            rows.iter().all(|r| r.len() == n_causes),
            "rows must have n_causes features"
        );
        assert!(labels.iter().all(|&l| l <= n_causes), "label out of range");
        let forest = RandomForest::fit(config, rows, labels, n_causes + 1);
        ExtensibleForest { forest, n_causes }
    }

    /// Score vector over the `n_causes` causes for one sample: the forest's
    /// probability estimate with the nominal class's mass spread evenly.
    pub fn scores(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.n_causes, "row must have n_causes features");
        spread_nominal_mass(&self.forest.predict_proba(row), self.n_causes)
    }

    /// Batch scores, parallelised over samples.
    pub fn scores_batch(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.par_iter().map(|r| self.scores(r)).collect()
    }

    /// Probability that the sample is nominal (the raw special-class mass,
    /// before redistribution).
    pub fn nominal_probability(&self, row: &[f32]) -> f32 {
        self.forest.predict_proba(row)[self.n_causes]
    }

    /// Underlying forest (for inspection / benchmarks).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Number of causes.
    pub fn n_causes(&self) -> usize {
        self.n_causes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diagnet_rng::SplitMix64;

    /// Synthetic root-cause data: cause j lifts feature j well above the
    /// noise floor; nominal samples stay at the floor. Hidden features
    /// (indices >= `visible`) are zeroed in training rows, mimicking the
    /// zero-padding protocol.
    fn cause_data(
        n: usize,
        n_causes: usize,
        visible: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<f32> = (0..n_causes).map(|_| rng.uniform(0.0, 1.0)).collect();
            let label = if i % 4 == 0 {
                n_causes // nominal
            } else {
                let cause = i % visible;
                row[cause] += 5.0;
                cause
            };
            for v in row.iter_mut().skip(visible) {
                *v = 0.0;
            }
            rows.push(row);
            labels.push(label);
        }
        (rows, labels)
    }

    fn fit_small(visible: usize, seed: u64) -> (ExtensibleForest, Vec<Vec<f32>>, Vec<usize>) {
        let (rows, labels) = cause_data(400, 8, visible, seed);
        let cfg = ForestConfig::paper_default(seed);
        let model = ExtensibleForest::fit(&cfg, &rows, &labels, 8);
        (model, rows, labels)
    }

    #[test]
    fn ranks_known_causes_first() {
        let (model, rows, labels) = fit_small(8, 1);
        let mut top1 = 0;
        let mut evaluated = 0;
        for (row, &label) in rows.iter().zip(&labels) {
            if label == 8 {
                continue;
            }
            evaluated += 1;
            let scores = model.scores(row);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if best == label {
                top1 += 1;
            }
        }
        assert!(
            top1 as f32 / evaluated as f32 > 0.9,
            "top-1 {top1}/{evaluated}"
        );
    }

    #[test]
    fn scores_are_normalised() {
        let (model, rows, _) = fit_small(8, 2);
        for row in rows.iter().take(20) {
            let s = model.scores(row);
            assert_eq!(s.len(), 8);
            assert!(
                (s.iter().sum::<f32>() + model.nominal_probability(row)
                    - model.nominal_probability(row)
                    - 1.0)
                    .abs()
                    < 1e-4
                    || (s.iter().sum::<f32>() - 1.0).abs() < 1e-4
            );
        }
    }

    #[test]
    fn unknown_causes_get_nonzero_score() {
        // Train with features 6,7 hidden (zeroed, never labelled).
        let (model, _, _) = fit_small(6, 3);
        // A test sample whose true cause is the unseen feature 7.
        let mut row = vec![0.3f32; 8];
        row[7] += 5.0;
        let scores = model.scores(&row);
        assert!(scores[7] > 0.0, "unseen cause must keep a non-null score");
    }

    #[test]
    fn nominal_probability_high_for_nominal_samples() {
        let (model, rows, labels) = fit_small(8, 4);
        let mut nom_mean = 0.0f32;
        let mut fault_mean = 0.0f32;
        let (mut n_nom, mut n_fault) = (0, 0);
        for (row, &label) in rows.iter().zip(&labels) {
            let p = model.nominal_probability(row);
            if label == 8 {
                nom_mean += p;
                n_nom += 1;
            } else {
                fault_mean += p;
                n_fault += 1;
            }
        }
        assert!(nom_mean / n_nom as f32 > fault_mean / n_fault as f32 * 2.0);
    }

    #[test]
    fn batch_matches_single() {
        let (model, rows, _) = fit_small(8, 5);
        let batch = model.scores_batch(&rows[..10]);
        for (r, b) in rows[..10].iter().zip(&batch) {
            assert_eq!(&model.scores(r), b);
        }
    }

    #[test]
    #[should_panic(expected = "n_causes features")]
    fn rejects_wrong_width() {
        let (model, _, _) = fit_small(8, 6);
        model.scores(&[0.0; 3]);
    }

    #[test]
    fn spread_nominal_mass_pins_redistribution_arithmetic() {
        // probs = [cause0, cause1, nominal]; nominal mass 0.5 splits into
        // 0.25 per cause.
        let spread = spread_nominal_mass(&[0.2, 0.3, 0.5], 2);
        assert_eq!(spread, vec![0.2 + 0.25, 0.3 + 0.25]);
        assert!((spread.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // No nominal mass → identity.
        assert_eq!(spread_nominal_mass(&[0.6, 0.4, 0.0], 2), vec![0.6, 0.4]);
        // All-nominal → uniform.
        assert_eq!(spread_nominal_mass(&[0.0, 0.0, 1.0], 2), vec![0.5, 0.5]);
    }
}
