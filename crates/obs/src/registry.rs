//! The metrics registry: named, labelled metrics with get-or-register
//! semantics and point-in-time snapshots.
//!
//! Registration takes a write lock; a metric that already exists is
//! returned under a read lock. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap clones sharing atomics with the registry, so
//! hot paths register once (at construction, or behind a `OnceLock`) and
//! then record lock-free.

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::snapshot::Snapshot;

#[cfg(feature = "enabled")]
use crate::histogram::DEFAULT_LATENCY_BOUNDS;
#[cfg(feature = "enabled")]
use crate::snapshot::{HistogramSnapshot, MetricSnapshot, MetricValue};
#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
#[cfg(feature = "enabled")]
use std::sync::RwLock;

/// Label pairs as passed at registration sites.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

#[cfg(feature = "enabled")]
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[cfg(feature = "enabled")]
impl MetricKey {
    fn new(name: &str, labels: Labels<'_>) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[cfg(feature = "enabled")]
impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct Registered {
    entry: Entry,
    help: String,
}

/// A collection of named metrics. Most consumers use the process-wide
/// [`global`] registry; tests that need exact counts create their own.
#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<BTreeMap<MetricKey, Registered>>,
}

#[cfg(feature = "enabled")]
impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn get_or_register(
        &self,
        name: &str,
        labels: Labels<'_>,
        help: &str,
        make: impl FnOnce() -> Entry,
    ) -> Entry {
        let key = MetricKey::new(name, labels);
        if let Some(found) = self.inner.read().expect("metrics lock").get(&key) {
            return found.entry.clone();
        }
        let mut map = self.inner.write().expect("metrics lock");
        map.entry(key)
            .or_insert_with(|| Registered {
                entry: make(),
                help: help.to_string(),
            })
            .entry
            .clone()
    }

    /// Get or register a counter. Panics if `name`+`labels` already names
    /// a metric of a different kind (a programming error).
    pub fn counter(&self, name: &str, labels: Labels<'_>, help: &str) -> Counter {
        match self.get_or_register(name, labels, help, || Entry::Counter(Counter::detached())) {
            Entry::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register a gauge. Panics on kind mismatch.
    pub fn gauge(&self, name: &str, labels: Labels<'_>, help: &str) -> Gauge {
        match self.get_or_register(name, labels, help, || Entry::Gauge(Gauge::detached())) {
            Entry::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register a latency histogram with the default 1 µs – 10 s
    /// bucket ladder. Panics on kind mismatch.
    pub fn histogram(&self, name: &str, labels: Labels<'_>, help: &str) -> Histogram {
        self.histogram_with(name, labels, help, &DEFAULT_LATENCY_BOUNDS)
    }

    /// Get or register a histogram with explicit bucket bounds. The bounds
    /// of an already-registered histogram win (first registration fixes
    /// them). Panics on kind mismatch.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: Labels<'_>,
        help: &str,
        bounds: &[f64],
    ) -> Histogram {
        match self.get_or_register(name, labels, help, || {
            Entry::Histogram(Histogram::detached(bounds))
        }) {
            Entry::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name and
    /// labels (deterministic render order). Values are read with relaxed
    /// loads: a snapshot taken during concurrent recording is a consistent
    /// "roughly now", not a linearisation point.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.read().expect("metrics lock");
        let metrics: Vec<MetricSnapshot> = map
            .iter()
            .map(|(key, reg)| MetricSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                help: reg.help.clone(),
                value: match &reg.entry {
                    Entry::Counter(c) => MetricValue::Counter(c.get()),
                    Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                    Entry::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                        bounds: h.core.bounds.clone(),
                        counts: h
                            .core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.core.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(h.core.sum_bits.load(Ordering::Relaxed)),
                    }),
                },
            })
            .collect();
        // The map is ordered by (name, labels), so `metrics` comes out
        // already in deterministic render order.
        Snapshot { metrics }
    }
}

/// No-op registry (`enabled` feature off): registration hands out no-op
/// handles and snapshots are empty.
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Default)]
pub struct MetricsRegistry;

#[cfg(not(feature = "enabled"))]
impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// A no-op counter.
    #[inline(always)]
    pub fn counter(&self, _name: &str, _labels: Labels<'_>, _help: &str) -> Counter {
        Counter
    }

    /// A no-op gauge.
    #[inline(always)]
    pub fn gauge(&self, _name: &str, _labels: Labels<'_>, _help: &str) -> Gauge {
        Gauge
    }

    /// A no-op histogram.
    #[inline(always)]
    pub fn histogram(&self, _name: &str, _labels: Labels<'_>, _help: &str) -> Histogram {
        Histogram
    }

    /// A no-op histogram.
    #[inline(always)]
    pub fn histogram_with(
        &self,
        _name: &str,
        _labels: Labels<'_>,
        _help: &str,
        _bounds: &[f64],
    ) -> Histogram {
        Histogram
    }

    /// Always empty.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: Vec::new(),
        }
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every DiagNet subsystem records into by
/// default. Created lazily on first use.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", &[("backend", "diagnet")], "requests");
        let b = reg.counter("requests_total", &[("backend", "diagnet")], "ignored");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels → different cell.
        let c = reg.counter("requests_total", &[("backend", "forest")], "requests");
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("a", "1"), ("b", "2")], "");
        let b = reg.counter("m", &[("b", "2"), ("a", "1")], "");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[], "");
        reg.gauge("m", &[], "");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", &[], "last").inc();
        reg.gauge("a_gauge", &[], "first").set(4.0);
        reg.histogram("m_seconds", &[], "middle").observe(0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_gauge", "m_seconds", "z_total"]);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let n_threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    // Each thread registers on its own: get-or-register must
                    // converge on one cell.
                    let c = reg.counter("contended_total", &[], "");
                    let h = reg.histogram_with("contended_hist", &[], "", &[0.5]);
                    for i in 0..per_thread {
                        c.inc();
                        h.observe((i % 2) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("contended_total", &[]),
            Some(n_threads * per_thread)
        );
        let hist = snap.histogram("contended_hist", &[]).unwrap();
        assert_eq!(hist.count, n_threads * per_thread);
        assert_eq!(hist.counts.iter().sum::<u64>(), n_threads * per_thread);
        // Exactly half the observations were 0.0 (≤ 0.5), half 1.0 (overflow).
        assert_eq!(hist.counts[0], n_threads * per_thread / 2);
        assert_eq!(hist.counts[1], n_threads * per_thread / 2);
        assert_eq!(hist.sum, (n_threads * per_thread / 2) as f64);
    }
}
