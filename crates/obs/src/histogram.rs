//! Fixed-bucket histograms with percentile snapshots.
//!
//! Buckets are *fixed at registration* (no resizing, no locking on the
//! record path): `observe` does one linear scan over ≤ ~24 bounds and one
//! relaxed atomic increment, which keeps it cheap enough for per-request
//! hot paths. Percentiles (p50/p95/p99) are estimated at snapshot time by
//! linear interpolation inside the owning bucket — the standard
//! fixed-bucket estimator, accurate to bucket width.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Arc;
use std::time::Instant;

/// Default latency bucket upper bounds, in **seconds**: a 1–2.5–5 ladder
/// from 1 µs to 10 s, densified to 1–1.5–2.5–3.5–5–7.5 across the
/// 100 µs – 100 ms serving window (31 buckets, plus the implicit overflow
/// bucket). Covers everything from a single kernel call to a full
/// paper-config training generation; the extra mid-decade bounds keep
/// p50/p95/p99 estimates of the pipeline-stage spans (sub-10 ms at batch
/// 64) accurate to ~40 % bucket width instead of 2.5×, which is what tail
/// latency–based admission control has to work with.
pub const DEFAULT_LATENCY_BOUNDS: [f64; 31] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 1.5e-4, 2.5e-4, 3.5e-4, 5e-4, 7.5e-4, 1e-3,
    1.5e-3, 2.5e-3, 3.5e-3, 5e-3, 7.5e-3, 1e-2, 1.5e-2, 2.5e-2, 3.5e-2, 5e-2, 7.5e-2, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Default size bucket upper bounds (dimensionless): powers of two from 1
/// to 4096 — e.g. for batch-row distributions.
pub const DEFAULT_SIZE_BOUNDS: [f64; 13] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

#[cfg(feature = "enabled")]
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Strictly increasing finite upper bounds; `buckets[i]` counts
    /// observations `v <= bounds[i]` not captured by an earlier bucket,
    /// and `buckets[bounds.len()]` is the overflow (+Inf) bucket.
    pub(crate) bounds: Vec<f64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    /// Sum of observed values, as `f64` bits (CAS-accumulated).
    pub(crate) sum_bits: AtomicU64,
}

/// A fixed-bucket histogram handle (cheap to clone; clones share buckets).
#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) core: Arc<HistogramCore>,
}

#[cfg(feature = "enabled")]
impl Histogram {
    /// A detached histogram with the given bounds (not visible in any
    /// registry snapshot). Bounds must be strictly increasing and finite.
    pub fn detached(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Record one observation. A value exactly on a bucket bound lands in
    /// that bucket (`v <= bound`, Prometheus `le` semantics); values above
    /// the last bound land in the overflow bucket. NaN is dropped.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self
            .core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Record the seconds elapsed since `start`.
    #[inline]
    pub fn observe_since(&self, start: Instant) {
        self.observe(start.elapsed().as_secs_f64());
    }

    /// Start a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }
}

/// No-op histogram (`enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone)]
pub struct Histogram;

#[cfg(not(feature = "enabled"))]
impl Histogram {
    /// A detached no-op histogram.
    pub fn detached(_bounds: &[f64]) -> Self {
        Histogram
    }

    /// No-op.
    #[inline(always)]
    pub fn observe(&self, _v: f64) {}

    /// No-op.
    #[inline(always)]
    pub fn observe_since(&self, _start: Instant) {}

    /// A timer that records nothing (and never reads the clock).
    #[inline(always)]
    pub fn start_timer(&self) -> Timer {
        Timer
    }

    /// Always zero.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
}

/// Records the elapsed wall-clock time into its histogram on drop.
#[cfg(feature = "enabled")]
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
}

#[cfg(feature = "enabled")]
impl Timer {
    /// Stop now and record (equivalent to dropping, but explicit).
    pub fn stop(self) {}
}

#[cfg(feature = "enabled")]
impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.observe_since(self.start);
    }
}

/// No-op timer (`enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
pub struct Timer;

#[cfg(not(feature = "enabled"))]
impl Timer {
    /// No-op.
    pub fn stop(self) {}
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn values_on_bucket_edges_use_le_semantics() {
        let h = Histogram::detached(&[1.0, 2.0, 4.0]);
        h.observe(1.0); // exactly on a bound → that bucket
        h.observe(1.0000001); // just above → next bucket
        h.observe(4.0); // last finite bound
        h.observe(4.0000001); // overflow
        h.observe(0.0); // below everything → first bucket
        let counts: Vec<u64> = h
            .core
            .buckets
            .iter()
            .map(|b| b.load(std::sync::atomic::Ordering::Relaxed))
            .collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn nan_is_dropped() {
        let h = Histogram::detached(&[1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::detached(&[2.0, 1.0]);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::detached(&DEFAULT_LATENCY_BOUNDS);
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }
}
