//! Point-in-time metric snapshots and their text renderings.
//!
//! A [`Snapshot`] is plain data — it compiles (and renders, as empty)
//! even with the `enabled` feature off, so downstream code that dumps
//! metrics needs no feature gates of its own. Two renderings:
//!
//! * [`Snapshot::render_prometheus`] — the Prometheus text exposition
//!   format (`# HELP`/`# TYPE`, cumulative `_bucket{le=…}` lines), for
//!   scraping or file dumps;
//! * [`Snapshot::render_text`] — a human-oriented table with p50/p95/p99
//!   per histogram, what `diagnet metrics` prints.

use std::fmt::Write as _;

/// One registered metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name, e.g. `diagnet_rank_latency_seconds`.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text from the first registration.
    pub help: String,
    /// The value.
    pub value: MetricValue,
}

/// The value of a metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// A histogram's buckets, frozen at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one longer than `bounds`, the
    /// last entry being the overflow (+Inf) bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the owning bucket. Observations in the overflow bucket are
    /// attributed to the last finite bound (the estimate saturates there).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum as f64 >= target && c > 0 {
                let last = self.bounds.len() - 1;
                if i > last {
                    return self.bounds[last]; // overflow bucket: saturate
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((target - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (self.bounds[i] - lower) * frac;
            }
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All metrics, sorted by (name, labels).
    pub metrics: Vec<MetricSnapshot>,
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Format a float for the text formats (`f64`'s shortest roundtrip).
fn num(v: f64) -> String {
    format!("{v}")
}

impl Snapshot {
    /// True when nothing was recorded (or the crate is compiled out).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Look up a counter's value by name and (sorted or unsorted) labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match &self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a gauge's value.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match &self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }

    /// Render in the Prometheus text exposition format. Histograms emit
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for m in &self.metrics {
            if m.name != last_name {
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                if !m.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                }
                let _ = writeln!(out, "# TYPE {} {kind}", m.name);
                last_name = &m.name;
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, label_block(&m.labels));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels), num(*v));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = h
                            .bounds
                            .get(i)
                            .map(|b| num(*b))
                            .unwrap_or_else(|| "+Inf".to_string());
                        let mut labels = m.labels.clone();
                        labels.push(("le".to_string(), le));
                        let _ = writeln!(out, "{}_bucket{} {cum}", m.name, label_block(&labels));
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_block(&m.labels),
                        num(h.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_block(&m.labels),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// Render a human-oriented table: one line per metric, histograms with
    /// count, mean and p50/p95/p99 (scaled to µs/ms/s as appropriate for
    /// `*_seconds` metrics).
    pub fn render_text(&self) -> String {
        if self.metrics.is_empty() {
            return "(no metrics recorded — is the `obs` feature enabled?)\n".to_string();
        }
        let mut out = String::new();
        for m in &self.metrics {
            let id = format!("{}{}", m.name, label_block(&m.labels));
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter    {id:<64} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge      {id:<64} {}", num(*v));
                }
                MetricValue::Histogram(h) => {
                    let seconds = m.name.ends_with("_seconds");
                    let fmt = |v: f64| {
                        if !seconds {
                            format!("{v:.1}")
                        } else if v < 1e-3 {
                            format!("{:.1}µs", v * 1e6)
                        } else if v < 1.0 {
                            format!("{:.2}ms", v * 1e3)
                        } else {
                            format!("{v:.3}s")
                        }
                    };
                    let _ = writeln!(
                        out,
                        "histogram  {id:<64} count={} mean={} p50={} p95={} p99={}",
                        h.count,
                        fmt(h.mean()),
                        fmt(h.quantile(0.50)),
                        fmt(h.quantile(0.95)),
                        fmt(h.quantile(0.99)),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[f64], counts: &[u64]) -> HistogramSnapshot {
        let sum = 0.0;
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: counts.to_vec(),
            count: counts.iter().sum(),
            sum,
        }
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 100 observations uniform in the (1.0, 2.0] bucket.
        let h = hist(&[1.0, 2.0, 4.0], &[0, 100, 0, 0]);
        let p50 = h.quantile(0.5);
        assert!((p50 - 1.5).abs() < 1e-9, "p50 = {p50}");
        assert!((h.quantile(0.95) - 1.95).abs() < 1e-9);
        // Everything sits below the first bound → interpolate from 0.
        let h = hist(&[1.0, 2.0], &[10, 0, 0]);
        assert!(h.quantile(0.5) <= 1.0);
    }

    #[test]
    fn quantile_saturates_at_last_bound_for_overflow() {
        let h = hist(&[1.0, 2.0], &[0, 0, 5]);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = hist(&[1.0], &[0, 0]);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn prometheus_render_is_cumulative_and_typed() {
        let snap = Snapshot {
            metrics: vec![
                MetricSnapshot {
                    name: "requests_total".into(),
                    labels: vec![("backend".into(), "diagnet".into())],
                    help: "requests served".into(),
                    value: MetricValue::Counter(3),
                },
                MetricSnapshot {
                    name: "latency_seconds".into(),
                    labels: vec![],
                    help: "".into(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        bounds: vec![0.1, 1.0],
                        counts: vec![2, 1, 1],
                        count: 4,
                        sum: 2.5,
                    }),
                },
            ],
        };
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{backend=\"diagnet\"} 3"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("latency_seconds_bucket{le=\"1\"} 3"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("latency_seconds_sum 2.5"));
        assert!(text.contains("latency_seconds_count 4"));
    }

    #[test]
    fn text_render_scales_seconds() {
        let snap = Snapshot {
            metrics: vec![MetricSnapshot {
                name: "latency_seconds".into(),
                labels: vec![],
                help: "".into(),
                value: MetricValue::Histogram(HistogramSnapshot {
                    bounds: vec![1e-4, 1e-3],
                    counts: vec![10, 0, 0],
                    count: 10,
                    sum: 5e-4,
                }),
            }],
        };
        let text = snap.render_text();
        assert!(text.contains("count=10"), "{text}");
        assert!(text.contains("µs"), "{text}");
    }

    #[test]
    fn lookup_helpers_normalise_label_order() {
        let snap = Snapshot {
            metrics: vec![MetricSnapshot {
                name: "m".into(),
                labels: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
                help: "".into(),
                value: MetricValue::Counter(9),
            }],
        };
        assert_eq!(snap.counter("m", &[("b", "2"), ("a", "1")]), Some(9));
        assert_eq!(snap.counter("m", &[("a", "1")]), None);
        assert_eq!(snap.counter("absent", &[]), None);
    }
}
