//! # diagnet-obs — observability for the DiagNet platform
//!
//! A lightweight, dependency-free metrics and tracing layer consumed by
//! every serving and training path in the workspace: `diagnet` (core),
//! `diagnet-platform`, `diagnet-bench` and `diagnet-cli`.
//!
//! ## Primitives
//!
//! * [`Counter`] — monotonic event counts (relaxed atomic adds);
//! * [`Gauge`] — instantaneous values (registry version, buffer sizes);
//! * [`Histogram`] — fixed-bucket distributions with p50/p95/p99
//!   estimates at snapshot time; the default bucket ladder spans
//!   1 µs – 10 s for latencies ([`DEFAULT_LATENCY_BOUNDS`]);
//! * [`span`] — timed tracing spans around pipeline stages, recorded into
//!   the [`SPAN_HISTOGRAM`](span::SPAN_HISTOGRAM) histogram and optionally
//!   emitted as structured JSON events (`DIAGNET_TRACE=1`).
//!
//! Metrics live in a [`MetricsRegistry`]; most code records into the
//! process-wide [`global`] registry and dumps it with
//! [`MetricsRegistry::snapshot`] → [`Snapshot::render_prometheus`] /
//! [`Snapshot::render_text`].
//!
//! ## Compiling it out
//!
//! The `enabled` feature (on by default) gates the entire implementation.
//! Built with `--no-default-features`, every handle is a zero-sized no-op,
//! [`span`] never reads the clock, and snapshots are empty — consumers
//! keep the exact same API with zero runtime cost. The workspace forwards
//! this as the `obs` feature of each consuming crate, so
//! `cargo build --workspace --no-default-features` produces an entirely
//! uninstrumented build (see `OBSERVABILITY.md` at the repo root).
//!
//! ## Example
//!
//! ```
//! use diagnet_obs::{global, span};
//!
//! let requests = global().counter(
//!     "doc_requests_total",
//!     &[("backend", "diagnet")],
//!     "requests served",
//! );
//! let latency = global().histogram("doc_latency_seconds", &[], "request latency");
//!
//! {
//!     let _stage = span("doc.handle_request");
//!     let timer = latency.start_timer();
//!     requests.inc();
//!     timer.stop();
//! }
//!
//! let snapshot = global().snapshot();
//! print!("{}", snapshot.render_text());
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use histogram::{Histogram, Timer, DEFAULT_LATENCY_BOUNDS, DEFAULT_SIZE_BOUNDS};
pub use metrics::{Counter, Gauge};
pub use registry::{global, Labels, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricSnapshot, MetricValue, Snapshot};
pub use span::{span, Span};
