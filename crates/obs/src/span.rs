//! Structured tracing spans.
//!
//! [`span`] starts a timed span; on drop it records the duration into the
//! global registry's `diagnet_span_duration_seconds{span="…"}` histogram
//! and — when `DIAGNET_TRACE=1` is set in the environment — emits one
//! structured JSON event line to stderr:
//!
//! ```text
//! {"event":"span","span":"core.rank_causes_batch","seq":17,"duration_us":1234.5}
//! ```
//!
//! The per-span cost is one registry lookup plus two clock reads (≈ a few
//! hundred nanoseconds), so spans belong around *stages* (a batch forward
//! pass, a retrain generation), not around per-element inner loops. With
//! the `enabled` feature off, [`span`] is a no-op that never reads the
//! clock.

/// Name of the histogram every span records into (label `span` carries
/// the span name).
pub const SPAN_HISTOGRAM: &str = "diagnet_span_duration_seconds";

#[cfg(feature = "enabled")]
mod imp {
    use super::SPAN_HISTOGRAM;
    use crate::histogram::Histogram;
    use crate::registry::global;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    fn trace_events_enabled() -> bool {
        static ON: OnceLock<bool> = OnceLock::new();
        *ON.get_or_init(|| {
            std::env::var("DIAGNET_TRACE")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false)
        })
    }

    fn next_seq() -> u64 {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        SEQ.fetch_add(1, Ordering::Relaxed)
    }

    /// A running span; records its duration when dropped.
    #[derive(Debug)]
    pub struct Span {
        name: &'static str,
        hist: Histogram,
        start: Instant,
    }

    /// Start a span named `name`, recording into the global registry.
    pub fn span(name: &'static str) -> Span {
        let hist = global().histogram(
            SPAN_HISTOGRAM,
            &[("span", name)],
            "wall-clock duration of instrumented pipeline stages",
        );
        Span {
            name,
            hist,
            start: Instant::now(),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let elapsed = self.start.elapsed().as_secs_f64();
            self.hist.observe(elapsed);
            if trace_events_enabled() {
                eprintln!(
                    "{{\"event\":\"span\",\"span\":\"{}\",\"seq\":{},\"duration_us\":{:.1}}}",
                    self.name,
                    next_seq(),
                    elapsed * 1e6
                );
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    /// A no-op span (`enabled` feature off).
    #[derive(Debug)]
    pub struct Span;

    /// No-op: never reads the clock, records nothing.
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }
}

pub use imp::{span, Span};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::registry::global;

    #[test]
    fn span_records_into_global_registry() {
        {
            let _s = span("obs.test_span");
        }
        let snap = global().snapshot();
        let hist = snap
            .histogram(SPAN_HISTOGRAM, &[("span", "obs.test_span")])
            .expect("span histogram registered");
        assert!(hist.count >= 1);
    }
}
