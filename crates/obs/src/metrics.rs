//! Counters and gauges: the two scalar metric primitives.
//!
//! Both are cheap cloneable handles around an atomic cell shared with the
//! [`MetricsRegistry`](crate::MetricsRegistry) that registered them, so the
//! hot path increments without ever touching the registry again. With the
//! `enabled` feature off both compile to zero-sized no-ops.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
///
/// Increments are relaxed atomic adds: exact under any interleaving, never
/// a synchronisation point for surrounding code.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Arc<AtomicU64>,
}

#[cfg(feature = "enabled")]
impl Counter {
    /// A detached counter (not visible in any registry snapshot). Mostly
    /// useful as a default before real registration.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// No-op counter (`enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone, Default)]
pub struct Counter;

#[cfg(not(feature = "enabled"))]
impl Counter {
    /// A detached counter; indistinguishable from any other no-op counter.
    pub fn detached() -> Self {
        Counter
    }

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A value that can go up and down (registry version, buffered samples…).
///
/// Stored as `f64` bits in an atomic; `set` is a single store, `add` a CAS
/// loop (exact for integral values within `f64` precision).
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Arc<AtomicU64>,
}

#[cfg(feature = "enabled")]
impl Gauge {
    /// A detached gauge (not visible in any registry snapshot).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut current = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.cell.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// No-op gauge (`enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone, Default)]
pub struct Gauge;

#[cfg(not(feature = "enabled"))]
impl Gauge {
    /// A detached gauge; indistinguishable from any other no-op gauge.
    pub fn detached() -> Self {
        Gauge
    }

    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _delta: f64) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::detached();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::detached();
        assert_eq!(g.get(), 0.0);
        g.set(7.5);
        assert_eq!(g.get(), 7.5);
        g.add(-2.5);
        assert_eq!(g.get(), 5.0);
    }
}
