//! The compiled-out contract: with `--no-default-features` the whole API
//! stays callable but records nothing, and the crate builds with no
//! dependencies at all (run via the CI `no-default-features` leg:
//! `cargo test -p diagnet-obs --no-default-features`).

#![cfg(not(feature = "enabled"))]

use diagnet_obs::{global, span, Histogram, MetricsRegistry};

#[test]
fn disabled_build_is_a_complete_no_op() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("c_total", &[("k", "v")], "help");
    c.inc();
    c.add(100);
    assert_eq!(c.get(), 0);

    let g = reg.gauge("g", &[], "help");
    g.set(5.0);
    g.add(1.0);
    assert_eq!(g.get(), 0.0);

    let h = reg.histogram("h_seconds", &[], "help");
    h.observe(0.5);
    h.start_timer().stop();
    assert_eq!(h.count(), 0);
    let hb = Histogram::detached(&[1.0, 2.0]);
    hb.observe(1.5);
    assert_eq!(hb.count(), 0);

    {
        let _s = span("disabled.span");
    }

    let snap = reg.snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.counter("c_total", &[("k", "v")]), None);
    assert!(global().snapshot().is_empty());
    assert!(snap.render_text().contains("no metrics recorded"));
    assert_eq!(snap.render_prometheus(), "");
}
