//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single tensor type used throughout the DiagNet
//! reproduction. Samples are stored as rows (one row = one feature vector),
//! which keeps per-sample operations cache-friendly and lets rayon
//! parallelise over rows without any synchronisation.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// An `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer of {} elements cannot be {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if the rows do not all have the same length, or if `rows` is
    /// empty (an empty matrix has no well-defined column count).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A 1×n row matrix wrapping `row`.
    pub fn from_row(row: Vec<f32>) -> Self {
        let cols = row.len();
        Matrix {
            rows: 1,
            cols,
            data: row,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape to `rows × cols` in place, reusing the allocation.
    ///
    /// Newly exposed elements are zeroed; surviving elements keep whatever
    /// values they held (callers are expected to overwrite them). After the
    /// buffer has grown to its steady-state size once, further `resize`
    /// calls never touch the allocator — this is the primitive behind the
    /// reusable forward/backward workspaces.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrite `self` with `other`'s shape and contents, reusing the
    /// existing allocation when capacity allows.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// A new matrix holding only the rows selected by `indices`
    /// (in the given order; duplicates allowed).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] into a caller-provided buffer (reused across
    /// mini-batches by the training loop).
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// A new matrix holding only the columns selected by `indices`.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in indices.iter().enumerate() {
                dst[j] = src[c];
            }
        }
        out
    }

    /// The transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place element-wise addition: `self += other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_assign: row mismatch");
        assert_eq!(self.cols, other.cols, "add_assign: col mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// In-place scaling: `self *= factor`.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Fill with zeros (keeps the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Appends the rows of `other` below `self`'s rows.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: col mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenates columns of `other` to the right of `self`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Maximum absolute difference to `other`; `f32::INFINITY` on shape
    /// mismatch. Useful in tests and gradient checking.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        if self.rows != other.rows || self.cols != other.cols {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum value in row `r` (first occurrence on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        argmax(self.row(r))
    }

    /// True iff any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// Index of the maximum element of a slice (first occurrence on ties).
///
/// # Panics
/// Panics if `xs` is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = xs[0];
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Indices that would sort `xs` in *descending* order (stable).
pub fn argsort_desc(xs: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[b]
            .partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.get(2, 0), 8.0);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.cols(), 4);
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn argmax_ties_take_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn argsort_desc_orders() {
        assert_eq!(argsort_desc(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.row(0), &[5.5, 11.0]);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(a.max_abs_diff(&b).is_infinite());
    }

    #[test]
    fn resize_reuses_allocation_and_zeros_growth() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.resize(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.row(2), &[0.0, 0.0]);
        let cap_before = m.data.capacity();
        m.resize(1, 2);
        m.resize(3, 2);
        assert_eq!(
            m.data.capacity(),
            cap_before,
            "shrink/regrow must not realloc"
        );
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let mut dst = Matrix::zeros(4, 4);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut out = Matrix::zeros(0, 0);
        m.select_rows_into(&[2, 0, 2], &mut out);
        assert_eq!(out, m.select_rows(&[2, 0, 2]));
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
