//! Matrix products, parallelised with rayon.
//!
//! Three product flavours cover everything backpropagation needs without
//! ever materialising a transpose:
//!
//! * [`matmul`]      — `C = A · B`        (forward pass)
//! * [`matmul_bt`]   — `C = A · Bᵀ`       (input gradients: `dX = dY · Wᵀ`
//!   when weights are stored `out × in`… see [`crate::layer::Dense`])
//! * [`matmul_at`]   — `C = Aᵀ · B`       (weight gradients: `dW = dYᵀ · X`)
//!
//! Each kernel parallelises over output rows. With row-major storage the
//! inner loops stream contiguously, which lets LLVM auto-vectorise them.

use crate::tensor::Matrix;
use rayon::prelude::*;

/// Rows below which parallel dispatch costs more than it saves.
const PAR_THRESHOLD: usize = 8;

/// `A (m×k) · B (k×n) = C (m×n)`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let bd = b.data();
    let kernel = |(row_out, row_a): (&mut [f32], &[f32])| {
        // i-k-j loop order: both `brow` and `row_out` stream contiguously.
        for (kk, &av) in row_a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in row_out.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m >= PAR_THRESHOLD {
        c.data_mut()
            .par_chunks_mut(n)
            .zip(a.data().par_chunks(k))
            .for_each(kernel);
    } else {
        c.data_mut()
            .chunks_mut(n)
            .zip(a.data().chunks(k))
            .for_each(kernel);
    }
    c
}

/// `A (m×k) · Bᵀ (k×n) = C (m×n)` where `B` is stored `n×k`.
///
/// # Panics
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_bt: inner dimensions differ");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    let bd = b.data();
    let kernel = |(row_out, row_a): (&mut [f32], &[f32])| {
        for (j, o) in row_out.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in row_a.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    };
    if m >= PAR_THRESHOLD {
        c.data_mut()
            .par_chunks_mut(n)
            .zip(a.data().par_chunks(k))
            .for_each(kernel);
    } else {
        c.data_mut()
            .chunks_mut(n)
            .zip(a.data().chunks(k))
            .for_each(kernel);
    }
    c
}

/// `Aᵀ (m×k) · B (m×n) = C (k×n)` where `A` is stored `m×k`.
///
/// Used for weight gradients: the reduction runs over the batch dimension
/// `m`, so we parallelise over output rows (`k`) and let each task scan the
/// batch.
///
/// # Panics
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at: batch dimensions differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(k, n);
    let (ad, bd) = (a.data(), b.data());
    let kernel = |(i, row_out): (usize, &mut [f32])| {
        for s in 0..m {
            let av = ad[s * k + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[s * n..(s + 1) * n];
            for (o, &bv) in row_out.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if k >= PAR_THRESHOLD {
        c.data_mut().par_chunks_mut(n).enumerate().for_each(kernel);
    } else {
        c.data_mut().chunks_mut(n).enumerate().for_each(kernel);
    }
    c
}

/// Adds `bias` (length `n`) to every row of the `m×n` matrix.
///
/// # Panics
/// Panics if `bias.len() != x.cols()`.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "add_bias: width mismatch");
    let n = x.cols();
    for row in x.data_mut().chunks_exact_mut(n) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Sums the rows of `x` into a length-`cols` vector (bias gradients).
pub fn column_sums(x: &Matrix) -> Vec<f32> {
    let n = x.cols();
    let mut out = vec![0.0f32; n];
    for row in x.data().chunks_exact(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols)
            .map(|_| rng.next_f32() * 2.0 - 1.0)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = random_matrix(13, 7, 1);
        let b = random_matrix(7, 5, 2);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_bt_matches_transpose() {
        let a = random_matrix(9, 6, 3);
        let b = random_matrix(4, 6, 4);
        let c = matmul_bt(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b.transpose())) < 1e-5);
    }

    #[test]
    fn matmul_at_matches_transpose() {
        let a = random_matrix(11, 3, 5);
        let b = random_matrix(11, 4, 6);
        let c = matmul_at(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a.transpose(), &b)) < 1e-5);
    }

    #[test]
    fn matmul_large_parallel_path() {
        // Exercise the rayon branch (rows >= PAR_THRESHOLD).
        let a = random_matrix(64, 32, 7);
        let b = random_matrix(32, 16, 8);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix(5, 5, 9);
        let mut id = Matrix::zeros(5, 5);
        for i in 0..5 {
            id.set(i, i, 1.0);
        }
        assert!(matmul(&a, &id).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&id, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn add_bias_and_column_sums() {
        let mut x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        add_bias(&mut x, &[10.0, 20.0]);
        assert_eq!(x.row(0), &[11.0, 22.0]);
        assert_eq!(column_sums(&x), vec![24.0, 46.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
