//! Matrix products, parallelised with rayon.
//!
//! Three product flavours cover everything backpropagation needs without
//! ever materialising a transpose:
//!
//! * [`matmul`]      — `C = A · B`        (forward pass)
//! * [`matmul_bt`]   — `C = A · Bᵀ`       (input gradients: `dX = dY · Wᵀ`
//!   when weights are stored `out × in`… see [`crate::layer::Dense`])
//! * [`matmul_at`]   — `C = Aᵀ · B`       (weight gradients: `dW = dYᵀ · X`)
//!
//! Every kernel also exists as a `*_into` variant ([`matmul_into`],
//! [`matmul_bt_into`], [`matmul_at_into`], plus the accumulating
//! [`matmul_at_acc`] and [`column_sums_acc`]) that writes into a
//! caller-provided buffer; the allocating functions are thin wrappers.
//! The `*_into` family is what the workspace-based hot path uses: after
//! warm-up, no call here touches the allocator.
//!
//! ## Tiling
//!
//! Kernels process `MB`-row blocks and tile the reduction dimension in
//! `KB`-wide slabs, so the slab of `B` a block needs is loaded into cache
//! once and reused by every row of the block instead of re-streamed per
//! row. With row-major storage the inner loops stream contiguously, which
//! lets LLVM auto-vectorise them.
//!
//! ## Parallel dispatch
//!
//! Dispatch keys on the *work size* `m·k·n` (the multiply-accumulate
//! count), not on the row count alone: wide-but-short products (a 4-row
//! gradient batch against a 512-wide layer) parallelise over columns,
//! batch-heavy `Aᵀ·B` reductions with narrow outputs parallelise over
//! batch tiles, and tiny products stay serial whatever their shape. Every
//! path accumulates each output element in the same fixed order, and the
//! tile sizes are compile-time constants, so results depend only on the
//! inputs — never on the number of worker threads.

use crate::tensor::Matrix;
use rayon::prelude::*;

/// Multiply-accumulate count above which a product is worth parallelising
/// (~15 µs of serial work — comfortably above rayon's dispatch overhead).
const PAR_MACS: usize = 48 * 1024;
/// Element count above which cheap element-wise passes parallelise.
const PAR_ELEMS: usize = 1 << 18;
/// Rows per task and per cache tile.
const MB: usize = 8;
/// Reduction-dimension tile: keeps a `KB × n` slab of `B` hot across a
/// whole row block.
const KB: usize = 128;
/// Column chunk for the few-rows-but-wide parallel paths.
const JB: usize = 64;
/// Batch tile for `Aᵀ·B` partials and parallel column sums.
const SB: usize = 512;
/// f32 elements per lane-tile accumulator of the streaming kernel. Sized
/// so one tile maps onto whole vector registers on every x86-64 baseline
/// (two SSE2 `xmm`, one AVX `ymm`); the fixed-size array loops below
/// auto-vectorise on stable Rust with no intrinsics.
const LANES: usize = 8;
/// Lane tiles held in registers per output-row strip. `STRIPE` tiles give
/// the out-of-order core `STRIPE` independent FMA chains per lane, hiding
/// the ~4-cycle FP-add latency that a single running sum would serialise
/// on; 4 × [f32; 8] also stays within the 16 vector registers of the
/// SSE2/AVX baselines, so the accumulators never spill.
const STRIPE: usize = 4;

/// Streaming row kernel: `out[j] += Σ_kk row_a[kk] · b_rows[kk·n + j0+j]`
/// for one output-row segment `out` covering columns `j0..j0+out.len()`
/// of a product whose `B` slab starts at `b_rows` (row stride `n`).
///
/// The segment is walked in register strips of `STRIPE × LANES` columns:
/// each strip loads its running sums once, accumulates every `kk` of the
/// slab entirely in registers, and stores once — instead of a load/store
/// round-trip per `kk` per element. An 8-wide tile handles the mid-size
/// remainder and the final `< LANES` columns fall back to the plain
/// streaming loop.
///
/// Per output element this performs exactly the same additions in exactly
/// the same (ascending `kk`, zero-skipping) order as the scalar loop it
/// replaces — tiling only changes *where* the running sum lives, so
/// results are bit-identical and stay thread-count-independent.
// lint: no_alloc
#[inline]
fn accum_row_cols(row_a: &[f32], b_rows: &[f32], n: usize, j0: usize, out: &mut [f32]) {
    let w = out.len();
    let mut j = 0;
    while j + STRIPE * LANES <= w {
        let mut acc = [[0.0f32; LANES]; STRIPE];
        for (t, tile) in acc.iter_mut().enumerate() {
            tile.copy_from_slice(&out[j + t * LANES..j + (t + 1) * LANES]);
        }
        for (kk, &av) in row_a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let base = kk * n + j0 + j;
            let brow = &b_rows[base..base + STRIPE * LANES];
            for (t, tile) in acc.iter_mut().enumerate() {
                for (o, &bv) in tile.iter_mut().zip(&brow[t * LANES..(t + 1) * LANES]) {
                    *o += av * bv;
                }
            }
        }
        for (t, tile) in acc.iter().enumerate() {
            out[j + t * LANES..j + (t + 1) * LANES].copy_from_slice(tile);
        }
        j += STRIPE * LANES;
    }
    while j + LANES <= w {
        let mut acc = [0.0f32; LANES];
        acc.copy_from_slice(&out[j..j + LANES]);
        for (kk, &av) in row_a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let base = kk * n + j0 + j;
            for (o, &bv) in acc.iter_mut().zip(&b_rows[base..base + LANES]) {
                *o += av * bv;
            }
        }
        out[j..j + LANES].copy_from_slice(&acc);
        j += LANES;
    }
    if j == w {
        return;
    }
    // Narrow tail: the original streaming form (same per-element order).
    let tail = &mut out[j..];
    let tw = tail.len();
    for (kk, &av) in row_a.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let base = kk * n + j0 + j;
        for (o, &bv) in tail.iter_mut().zip(&b_rows[base..base + tw]) {
            *o += av * bv;
        }
    }
}

#[inline]
fn par_macs(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PAR_MACS
}

/// Whether an element-wise pass over `elems` values is worth
/// parallelising. Shared by [`add_bias`], [`column_sums`] and the
/// LandPool pooling loops, so every hot-path dispatch decision lives here.
#[inline]
pub fn par_elems(elems: usize) -> bool {
    elems >= PAR_ELEMS
}

/// `A (m×k) · B (k×n) = C (m×n)`, written into `c` (resized as needed).
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
// lint: no_alloc
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    c.resize(m, n); // lint: allow(no_alloc, reason = "grows the caller's scratch once per shape; steady-state calls reuse it")
    let (ad, bd) = (a.data(), b.data());
    // i-k-j loop order through the register-strip kernel: `B` rows stream
    // contiguously and each strip of `C` lives in registers for a whole
    // k-tile. k is tiled so the `KB × n` slab of `B` is reused by every
    // row of a block before the next slab is touched.
    let block = |c_rows: &mut [f32], a_rows: &[f32]| {
        c_rows.fill(0.0);
        if k == 0 {
            return;
        }
        let rows = a_rows.len() / k;
        for kb in (0..k).step_by(KB) {
            let kend = (kb + KB).min(k);
            for r in 0..rows {
                let row_a = &a_rows[r * k + kb..r * k + kend];
                let row_out = &mut c_rows[r * n..(r + 1) * n];
                accum_row_cols(row_a, &bd[kb * n..], n, 0, row_out);
            }
        }
    };
    if par_macs(m, k, n) && m >= 2 * MB {
        c.data_mut()
            .par_chunks_mut(MB * n)
            .zip(ad.par_chunks(MB * k))
            .for_each(|(cc, aa)| block(cc, aa));
    } else if par_macs(m, k, n) && n >= 2 * JB {
        // Few rows but plenty of work: parallelise each row over column
        // chunks (k-ascending accumulation, identical to the serial path).
        for r in 0..m {
            let row_a = &ad[r * k..(r + 1) * k];
            c.data_mut()[r * n..(r + 1) * n]
                .par_chunks_mut(JB)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    chunk.fill(0.0);
                    accum_row_cols(row_a, bd, n, ci * JB, chunk);
                });
        }
    } else {
        block(c.data_mut(), ad);
    }
}

/// `A (m×k) · B (k×n) = C (m×n)`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_into(a, b, &mut c);
    c
}

/// `A (m×k) · Bᵀ (k×n) = C (m×n)` where `B` is stored `n×k`, written into
/// `c` (resized as needed).
///
/// # Panics
/// Panics if `A.cols() != B.cols()`.
// lint: no_alloc
pub fn matmul_bt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt: inner dimensions differ");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    c.resize(m, n); // lint: allow(no_alloc, reason = "grows the caller's scratch once per shape; steady-state calls reuse it")
    if k == 0 {
        c.data_mut().fill(0.0);
        return;
    }
    let (ad, bd) = (a.data(), b.data());
    // Dot-product kernel; `B` rows iterate in the outer loop so each `brow`
    // stays in cache for the whole row block.
    let block = |c_rows: &mut [f32], a_rows: &[f32]| {
        let rows = a_rows.len() / k;
        for (j, brow) in bd.chunks_exact(k).enumerate() {
            for r in 0..rows {
                let row_a = &a_rows[r * k..(r + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in row_a.iter().zip(brow) {
                    acc += av * bv;
                }
                c_rows[r * n + j] = acc;
            }
        }
    };
    if par_macs(m, k, n) && m >= 2 * MB {
        c.data_mut()
            .par_chunks_mut(MB * n)
            .zip(ad.par_chunks(MB * k))
            .for_each(|(cc, aa)| block(cc, aa));
    } else if par_macs(m, k, n) && n >= 2 {
        // Few rows, many independent dot products: parallelise over `B`
        // rows instead (the single-sample attention backward lands here).
        for r in 0..m {
            let row_a = &ad[r * k..(r + 1) * k];
            c.data_mut()[r * n..(r + 1) * n]
                .par_chunks_mut(JB)
                .zip(bd.par_chunks(JB * k))
                .for_each(|(chunk, brows)| {
                    for (o, brow) in chunk.iter_mut().zip(brows.chunks_exact(k)) {
                        let mut acc = 0.0f32;
                        for (&av, &bv) in row_a.iter().zip(brow) {
                            acc += av * bv;
                        }
                        *o = acc;
                    }
                });
        }
    } else {
        block(c.data_mut(), ad);
    }
}

/// `A (m×k) · Bᵀ (k×n) = C (m×n)` where `B` is stored `n×k`.
///
/// # Panics
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_bt_into(a, b, &mut c);
    c
}

/// Cache-blocked transpose of `a` into `out` (resized as needed) — the
/// reusable-buffer flavour of [`Matrix::transpose`].
///
/// The backward pass uses this to materialise `Wᵀ` into scratch once per
/// call and then feed `dX = dY · Wᵀ` through the streaming
/// [`matmul_into`] kernel, whose register-strip accumulation is an order
/// of magnitude faster than the serially-dependent dot-product form of
/// [`matmul_bt_into`]. The transpose itself is O(in·out) data movement
/// against the O(batch·in·out) product, and both operands then stream
/// contiguously.
// lint: no_alloc
pub fn transpose_into(a: &Matrix, out: &mut Matrix) {
    let (m, n) = (a.rows(), a.cols());
    out.resize(n, m); // lint: allow(no_alloc, reason = "grows the caller's scratch once per shape; steady-state calls reuse it")
    const TB: usize = 32;
    let src = a.data();
    let dst = out.data_mut();
    for i0 in (0..m).step_by(TB) {
        let iend = (i0 + TB).min(m);
        for j0 in (0..n).step_by(TB) {
            let jend = (j0 + TB).min(n);
            for i in i0..iend {
                for j in j0..jend {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
}

fn matmul_at_impl(a: &Matrix, b: &Matrix, c: &mut Matrix, accumulate: bool) {
    assert_eq!(a.rows(), b.rows(), "matmul_at: batch dimensions differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if accumulate {
        assert_eq!(
            (c.rows(), c.cols()),
            (k, n),
            "matmul_at_acc: output shape mismatch"
        );
    } else {
        c.resize(k, n);
        c.data_mut().fill(0.0);
    }
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let (ad, bd) = (a.data(), b.data());
    // Each task owns a band of output rows and scans the batch in SB-row
    // tiles so the matching slabs of `A` and `B` stay cache-resident.
    let band = |i0: usize, c_rows: &mut [f32]| {
        let rows = c_rows.len() / n;
        for sb in (0..m).step_by(SB) {
            let send = (sb + SB).min(m);
            for ri in 0..rows {
                let i = i0 + ri;
                let row_out = &mut c_rows[ri * n..(ri + 1) * n];
                for s in sb..send {
                    let av = ad[s * k + i];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[s * n..(s + 1) * n];
                    for (o, &bv) in row_out.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    };
    if par_macs(m, k, n) && k >= 2 * MB {
        c.data_mut()
            .par_chunks_mut(MB * n)
            .enumerate()
            .for_each(|(bi, cc)| band(bi * MB, cc));
    } else if par_macs(m, k, n) && m >= 2 * SB {
        // Narrow output but a huge batch — the seed dispatch keyed on `k`
        // alone and ran these serially. Compute fixed-size batch partials
        // in parallel and combine them in tile order: the tile size is a
        // constant, so the result is independent of the thread count.
        let parts: Vec<Matrix> = ad
            .par_chunks(SB * k)
            .zip(bd.par_chunks(SB * n))
            .map(|(ac, bc)| {
                let mut p = Matrix::zeros(k, n);
                let pd = p.data_mut();
                let rows = ac.len() / k;
                for s in 0..rows {
                    let arow = &ac[s * k..(s + 1) * k];
                    let brow = &bc[s * n..(s + 1) * n];
                    for (i, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let row_out = &mut pd[i * n..(i + 1) * n];
                        for (o, &bv) in row_out.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
                p
            })
            .collect();
        for p in &parts {
            c.add_assign(p);
        }
    } else {
        band(0, c.data_mut());
    }
}

/// `Aᵀ (m×k) · B (m×n) = C (k×n)` where `A` is stored `m×k`, written into
/// `c` (resized as needed).
///
/// # Panics
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_at_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    matmul_at_impl(a, b, c, false);
}

/// `C += Aᵀ · B` — the accumulating flavour used for weight gradients,
/// which sum over mini-batches anyway.
///
/// # Panics
/// Panics if `A.rows() != B.rows()` or `c` is not `A.cols() × B.cols()`.
pub fn matmul_at_acc(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    matmul_at_impl(a, b, c, true);
}

/// `Aᵀ (m×k) · B (m×n) = C (k×n)` where `A` is stored `m×k`.
///
/// Used for weight gradients: the reduction runs over the batch dimension
/// `m`.
///
/// # Panics
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_at_into(a, b, &mut c);
    c
}

/// Adds `bias` (length `n`) to every row of the `m×n` matrix. Parallel for
/// large batches.
///
/// # Panics
/// Panics if `bias.len() != x.cols()`.
// lint: no_alloc
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "add_bias: width mismatch");
    let n = x.cols();
    if n == 0 {
        return;
    }
    let apply = |chunk: &mut [f32]| {
        for row in chunk.chunks_exact_mut(n) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    };
    if par_elems(x.rows() * n) {
        x.data_mut().par_chunks_mut(MB * n).for_each(apply);
    } else {
        apply(x.data_mut());
    }
}

/// Sums the rows of `x` into a length-`cols` vector (bias gradients).
pub fn column_sums(x: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; x.cols()];
    column_sums_acc(x, &mut out);
    out
}

/// Adds the column sums of `x` into `out` (accumulating bias-gradient
/// flavour; no allocation on the serial path). Parallel for large batches
/// via fixed-size row-tile partials combined in order, so the result does
/// not depend on the thread count.
///
/// # Panics
/// Panics if `out.len() != x.cols()`.
pub fn column_sums_acc(x: &Matrix, out: &mut [f32]) {
    let n = x.cols();
    assert_eq!(out.len(), n, "column_sums: width mismatch");
    if n == 0 {
        return;
    }
    if par_elems(x.rows() * n) {
        let parts: Vec<Vec<f32>> = x
            .data()
            .par_chunks(SB * n)
            .map(|chunk| {
                let mut p = vec![0.0f32; n];
                for row in chunk.chunks_exact(n) {
                    for (o, &v) in p.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                p
            })
            .collect();
        for p in &parts {
            for (o, &v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
    } else {
        for row in x.data().chunks_exact(n) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols)
            .map(|_| rng.next_f32() * 2.0 - 1.0)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = random_matrix(13, 7, 1);
        let b = random_matrix(7, 5, 2);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_bt_matches_transpose() {
        let a = random_matrix(9, 6, 3);
        let b = random_matrix(4, 6, 4);
        let c = matmul_bt(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b.transpose())) < 1e-5);
    }

    #[test]
    fn matmul_at_matches_transpose() {
        let a = random_matrix(11, 3, 5);
        let b = random_matrix(11, 4, 6);
        let c = matmul_at(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a.transpose(), &b)) < 1e-5);
    }

    #[test]
    fn matmul_large_parallel_path() {
        // Exercise the row-parallel branch (work size above PAR_MACS).
        let a = random_matrix(64, 64, 7);
        let b = random_matrix(64, 32, 8);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_single_row_column_parallel_path() {
        // m = 1 but m·k·n ≥ PAR_MACS: the column-parallel branch.
        let a = random_matrix(1, 320, 9);
        let b = random_matrix(320, 256, 10);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_bt_few_rows_parallel_path() {
        // m below the row-parallel cutoff, work size above PAR_MACS.
        let a = random_matrix(3, 200, 11);
        let b = random_matrix(150, 200, 12);
        let c = matmul_bt(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b.transpose())) < 1e-4);
    }

    #[test]
    fn matmul_at_narrow_output_wide_batch() {
        // The seed bug class: k tiny, batch huge — must still be correct
        // on the batch-partials branch.
        let a = random_matrix(1200, 3, 13);
        let b = random_matrix(1200, 16, 14);
        let c = matmul_at(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a.transpose(), &b)) < 1e-3);
    }

    #[test]
    fn into_variants_overwrite_dirty_buffers() {
        let a = random_matrix(6, 5, 15);
        let b = random_matrix(5, 4, 16);
        let mut c = Matrix::full(9, 9, 123.0);
        matmul_into(&a, &b, &mut c);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);

        let bt = random_matrix(4, 5, 17);
        let mut c = Matrix::full(2, 2, -7.0);
        matmul_bt_into(&a, &bt, &mut c);
        assert!(c.max_abs_diff(&naive_matmul(&a, &bt.transpose())) < 1e-5);

        let b2 = random_matrix(6, 3, 18);
        let mut c = Matrix::full(1, 1, 42.0);
        matmul_at_into(&a, &b2, &mut c);
        assert!(c.max_abs_diff(&naive_matmul(&a.transpose(), &b2)) < 1e-5);
    }

    #[test]
    fn matmul_at_acc_accumulates() {
        let a = random_matrix(7, 4, 19);
        let b = random_matrix(7, 3, 20);
        let mut c = Matrix::full(4, 3, 1.0);
        matmul_at_acc(&a, &b, &mut c);
        let mut expected = naive_matmul(&a.transpose(), &b);
        for v in expected.data_mut() {
            *v += 1.0;
        }
        assert!(c.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix(5, 5, 9);
        let mut id = Matrix::zeros(5, 5);
        for i in 0..5 {
            id.set(i, i, 1.0);
        }
        assert!(matmul(&a, &id).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&id, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_covers_all_strip_widths() {
        // 45 columns = one 32-wide register strip + one 8-wide tile + a
        // 5-wide streaming tail in every output row.
        let a = random_matrix(6, 33, 25);
        let b = random_matrix(33, 45, 26);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = random_matrix(13, 7, 22);
        let mut t = Matrix::full(2, 2, 9.0);
        transpose_into(&a, &mut t);
        let expected = a.transpose();
        assert_eq!((t.rows(), t.cols()), (expected.rows(), expected.cols()));
        assert_eq!(t.data(), expected.data());
    }

    #[test]
    fn streaming_and_dot_product_forms_agree_bitwise() {
        // Dense::backward_into computes `dY · Wᵀ` by transposing into
        // scratch and streaming through matmul_into. Both forms
        // accumulate each output element in ascending-k order, so on
        // non-degenerate inputs the results are bit-identical.
        let a = random_matrix(24, 96, 23);
        let b = random_matrix(48, 96, 24);
        let via_bt = matmul_bt(&a, &b);
        let mut wt = Matrix::zeros(0, 0);
        transpose_into(&b, &mut wt);
        let via_stream = matmul(&a, &wt);
        assert_eq!(via_bt.data(), via_stream.data());
    }

    #[test]
    fn add_bias_and_column_sums() {
        let mut x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        add_bias(&mut x, &[10.0, 20.0]);
        assert_eq!(x.row(0), &[11.0, 22.0]);
        assert_eq!(column_sums(&x), vec![24.0, 46.0]);
        let mut acc = vec![1.0f32, 1.0];
        column_sums_acc(&x, &mut acc);
        assert_eq!(acc, vec![25.0, 47.0]);
    }

    #[test]
    fn column_sums_large_parallel_path() {
        let x = random_matrix(3000, 128, 21);
        let serial: Vec<f32> = (0..x.cols())
            .map(|j| (0..x.rows()).map(|i| x.get(i, j)).sum())
            .collect();
        for (a, b) in column_sums(&x).iter().zip(&serial) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
