//! Mini-batch training loop with shuffling, validation and early stopping.
//!
//! The paper stops training "when the validation loss is no longer
//! decreasing" (§IV-F, Fig. 9); [`TrainConfig::patience`] implements that
//! rule, and [`TrainHistory`] records the per-epoch loss curves the figure
//! plots.

use crate::batch::BatchSource;
use crate::error::NnError;
use crate::loss::{cross_entropy_loss, cross_entropy_loss_weighted};
use crate::network::{Gradients, Network};
use crate::optim::Optimizer;
use crate::rng::SplitMix64;
use crate::tensor::Matrix;
use crate::workspace::{BackwardWorkspace, ForwardWorkspace};
use serde::{Deserialize, Serialize};

/// Name of the counter of rows consumed by streaming training.
pub const TRAIN_ROWS_TOTAL: &str = "diagnet_train_rows_total";

/// Training-loop configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Stop after this many epochs without a new best validation loss
    /// (`None` disables early stopping). Ignored when no validation set is
    /// provided.
    pub patience: Option<usize>,
    /// Shuffle samples between epochs.
    pub shuffle: bool,
    /// Restore the best-validation-loss weights when stopping.
    pub restore_best: bool,
    /// Optional per-class loss weights (length = number of classes).
    pub class_weights: Option<Vec<f32>>,
    /// Streaming only ([`Trainer::fit_streaming`]): shuffle within a
    /// buffer of this many rows instead of over the whole pass. `None`
    /// buffers the full pass, which is bitwise-identical to
    /// [`Trainer::fit`] on the same rows; `Some(w)` bounds trainer memory
    /// to `w` rows plus workspaces. Ignored by [`Trainer::fit`].
    #[serde(default)]
    pub shuffle_window: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 64,
            patience: Some(3),
            shuffle: true,
            restore_best: true,
            class_weights: None,
            shuffle_window: None,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch (empty when no validation set was given).
    pub val_loss: Vec<f32>,
    /// Epoch index with the best validation loss (0-based), if any.
    pub best_epoch: Option<usize>,
    /// Number of epochs actually run.
    pub epochs_run: usize,
}

/// Drives the optimisation of a [`Network`].
#[derive(Debug)]
pub struct Trainer<O: Optimizer> {
    /// Loop configuration.
    pub config: TrainConfig,
    /// The optimiser applied after each mini-batch.
    pub optimizer: O,
}

impl<O: Optimizer> Trainer<O> {
    /// Create a trainer.
    pub fn new(config: TrainConfig, optimizer: O) -> Self {
        Trainer { config, optimizer }
    }

    /// Train `net` on `(x, y)`; `y` holds integer class labels. If
    /// `validation` is provided, it is used for early stopping and for the
    /// recorded validation curve. `seed` drives shuffling.
    pub fn fit(
        &mut self,
        net: &mut Network,
        x: &Matrix,
        y: &[usize],
        validation: Option<(&Matrix, &[usize])>,
        seed: u64,
    ) -> Result<TrainHistory, NnError> {
        if x.rows() == 0 {
            return Err(NnError::InvalidTrainingData("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(NnError::InvalidTrainingData(format!(
                "{} samples but {} labels",
                x.rows(),
                y.len()
            )));
        }
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be positive".into()));
        }
        if let Some((vx, vy)) = validation {
            if vx.rows() != vy.len() {
                return Err(NnError::InvalidTrainingData(format!(
                    "{} validation samples but {} labels",
                    vx.rows(),
                    vy.len()
                )));
            }
        }

        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SplitMix64::new(seed);
        let mut grads = Gradients::zeros_like(net);
        let mut history = TrainHistory::default();
        let mut best_val = f32::INFINITY;
        let mut best_weights: Option<Network> = None;
        let mut stale_epochs = 0usize;
        // Workspaces and batch buffers are created once and reused across
        // every mini-batch and epoch: after the first epoch the training
        // loop performs no per-batch heap allocations.
        let mut fws = ForwardWorkspace::new(net);
        let mut bws = BackwardWorkspace::new(net);
        let mut bx = Matrix::zeros(0, 0);
        let mut by: Vec<usize> = Vec::with_capacity(self.config.batch_size);

        for _epoch in 0..self.config.epochs {
            if self.config.shuffle {
                rng.shuffle(&mut order);
            }
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                x.select_rows_into(chunk, &mut bx);
                by.clear();
                by.extend(chunk.iter().map(|&i| y[i]));
                grads.zero();
                let loss = net.loss_gradients_weighted_ws(
                    &bx,
                    &by,
                    self.config.class_weights.as_deref(),
                    &mut grads,
                    &mut fws,
                    &mut bws,
                );
                self.optimizer.step(net, &grads);
                epoch_loss += loss as f64;
                batches += 1;
            }
            history
                .train_loss
                .push((epoch_loss / batches.max(1) as f64) as f32);
            history.epochs_run += 1;

            if let Some((vx, vy)) = validation {
                let vloss = cross_entropy_loss_weighted(
                    net.forward_ws(vx, &mut fws),
                    vy,
                    self.config.class_weights.as_deref(),
                );
                history.val_loss.push(vloss);
                if vloss < best_val {
                    best_val = vloss;
                    history.best_epoch = Some(history.epochs_run - 1);
                    stale_epochs = 0;
                    if self.config.restore_best {
                        best_weights = Some(net.clone());
                    }
                } else {
                    stale_epochs += 1;
                    if let Some(patience) = self.config.patience {
                        if stale_epochs >= patience {
                            break;
                        }
                    }
                }
            }
        }
        if let Some(best) = best_weights {
            *net = best;
        }
        Ok(history)
    }

    /// Train `net` from a [`BatchSource`] without materialising an
    /// epoch-sized matrix.
    ///
    /// Two regimes, selected by [`TrainConfig::shuffle_window`]:
    ///
    /// * **Full window** (`None`, or a window ≥ the pass length): the pass
    ///   is buffered once and the run delegates to [`Trainer::fit`] — the
    ///   result is bitwise-identical to materialised training on the same
    ///   rows and seed. This is the compatibility adapter.
    /// * **Bounded window** (`Some(w)` with `w` < pass length): rows are
    ///   pulled into a `w`-row buffer, shuffled within it (seed-pinned
    ///   `SplitMix64`), drained as mini-batches through the reusable
    ///   forward/backward workspaces, and the buffer is refilled. Peak
    ///   trainer memory is `w` rows + workspaces regardless of pass
    ///   length. The RNG consumes one shuffle per *window*, and window
    ///   boundaries depend only on pass length and `w` — never on the
    ///   source's chunk size — so results are chunk-size independent.
    ///
    /// Validation/early-stopping semantics match [`Trainer::fit`]; the
    /// validation set stays materialised (it is small by construction).
    pub fn fit_streaming(
        &mut self,
        net: &mut Network,
        source: &mut dyn BatchSource,
        validation: Option<(&Matrix, &[usize])>,
        seed: u64,
    ) -> Result<TrainHistory, NnError> {
        let n = source.num_rows();
        let width = source.width();
        if n == 0 {
            return Err(NnError::InvalidTrainingData("empty training set".into()));
        }
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be positive".into()));
        }
        if self.config.shuffle_window == Some(0) {
            return Err(NnError::InvalidConfig(
                "shuffle_window must be positive".into(),
            ));
        }
        if let Some((vx, vy)) = validation {
            if vx.rows() != vy.len() {
                return Err(NnError::InvalidTrainingData(format!(
                    "{} validation samples but {} labels",
                    vx.rows(),
                    vy.len()
                )));
            }
        }
        let rows_total = diagnet_obs::global().counter(
            TRAIN_ROWS_TOTAL,
            &[],
            "rows consumed by streaming training",
        );

        let window = self.config.shuffle_window.unwrap_or(n);
        if window >= n {
            // Full-window regime: buffer the pass once and run the exact
            // materialised loop, so streamed == materialised bitwise.
            let mut xd: Vec<f32> = Vec::with_capacity(n * width);
            let mut y: Vec<usize> = Vec::with_capacity(n);
            source.reset();
            while source.next_rows(usize::MAX, &mut xd, &mut y) > 0 {}
            if y.len() != n || xd.len() != n * width {
                return Err(NnError::InvalidTrainingData(format!(
                    "source promised {n} rows but yielded {}",
                    y.len()
                )));
            }
            let x = Matrix::from_vec(n, width, xd);
            let history = self.fit(net, &x, &y, validation, seed)?;
            rows_total.add((n * history.epochs_run) as u64);
            return Ok(history);
        }

        let mut rng = SplitMix64::new(seed);
        let mut grads = Gradients::zeros_like(net);
        let mut history = TrainHistory::default();
        let mut best_val = f32::INFINITY;
        let mut best_weights: Option<Network> = None;
        let mut stale_epochs = 0usize;
        let mut fws = ForwardWorkspace::new(net);
        let mut bws = BackwardWorkspace::new(net);
        let mut bx = Matrix::zeros(0, 0);
        let mut by: Vec<usize> = Vec::with_capacity(self.config.batch_size);
        // The window buffer is the only pass-length-independent state that
        // scales with `window`; it is reused across refills and epochs.
        let mut wx: Vec<f32> = Vec::with_capacity(window * width);
        let mut wy: Vec<usize> = Vec::with_capacity(window);
        let mut order: Vec<usize> = Vec::with_capacity(window);

        for _epoch in 0..self.config.epochs {
            source.reset();
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            loop {
                wx.clear();
                wy.clear();
                // Fill the window, ignoring source chunk boundaries: the
                // number of rows per window depends only on `n` and
                // `window`, which keeps the RNG schedule chunk-agnostic.
                while wy.len() < window {
                    if source.next_rows(window - wy.len(), &mut wx, &mut wy) == 0 {
                        break;
                    }
                }
                let filled = wy.len();
                if filled == 0 {
                    break;
                }
                order.clear();
                order.extend(0..filled);
                if self.config.shuffle {
                    rng.shuffle(&mut order);
                }
                for chunk in order.chunks(self.config.batch_size) {
                    bx.resize(chunk.len(), width);
                    for (dst, &i) in chunk.iter().enumerate() {
                        bx.row_mut(dst)
                            .copy_from_slice(&wx[i * width..(i + 1) * width]);
                    }
                    by.clear();
                    by.extend(chunk.iter().map(|&i| wy[i]));
                    grads.zero();
                    let loss = net.loss_gradients_weighted_ws(
                        &bx,
                        &by,
                        self.config.class_weights.as_deref(),
                        &mut grads,
                        &mut fws,
                        &mut bws,
                    );
                    self.optimizer.step(net, &grads);
                    epoch_loss += loss as f64;
                    batches += 1;
                }
                rows_total.add(filled as u64);
            }
            history
                .train_loss
                .push((epoch_loss / batches.max(1) as f64) as f32);
            history.epochs_run += 1;

            if let Some((vx, vy)) = validation {
                let vloss = cross_entropy_loss_weighted(
                    net.forward_ws(vx, &mut fws),
                    vy,
                    self.config.class_weights.as_deref(),
                );
                history.val_loss.push(vloss);
                if vloss < best_val {
                    best_val = vloss;
                    history.best_epoch = Some(history.epochs_run - 1);
                    stale_epochs = 0;
                    if self.config.restore_best {
                        best_weights = Some(net.clone());
                    }
                } else {
                    stale_epochs += 1;
                    if let Some(patience) = self.config.patience {
                        if stale_epochs >= patience {
                            break;
                        }
                    }
                }
            }
        }
        if let Some(best) = best_weights {
            *net = best;
        }
        Ok(history)
    }

    /// Mean cross-entropy of `net` on a labelled set (no training).
    pub fn evaluate(&self, net: &Network, x: &Matrix, y: &[usize]) -> f32 {
        cross_entropy_loss(&net.forward(x), y)
    }
}

/// Deterministically split `(x, y)` into train and validation sets, with
/// `val_fraction` of samples (rounded down, at least 1 if possible) held
/// out. Shuffles with `seed` before splitting.
pub fn train_val_split(
    x: &Matrix,
    y: &[usize],
    val_fraction: f32,
    seed: u64,
) -> (Matrix, Vec<usize>, Matrix, Vec<usize>) {
    assert_eq!(
        x.rows(),
        y.len(),
        "train_val_split: sample/label count mismatch"
    );
    assert!(
        (0.0..1.0).contains(&val_fraction),
        "train_val_split: fraction must be in [0, 1)"
    );
    let n = x.rows();
    let mut order: Vec<usize> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    let n_val = ((n as f32 * val_fraction) as usize).min(n.saturating_sub(1));
    let (val_idx, train_idx) = order.split_at(n_val);
    let tx = x.select_rows(train_idx);
    let ty = train_idx.iter().map(|&i| y[i]).collect();
    let vx = x.select_rows(val_idx);
    let vy = val_idx.iter().map(|&i| y[i]).collect();
    (tx, ty, vx, vy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::optim::SgdNesterov;
    use crate::rng::SplitMix64;

    /// Two well-separated Gaussian blobs in 2-D.
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                rng.normal_with(center, 0.5),
                rng.normal_with(center, 0.5),
            ]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows), labels)
    }

    fn classifier() -> Network {
        Network::new(vec![
            Layer::dense(2, 8, 1),
            Layer::relu(),
            Layer::dense(8, 2, 2),
        ])
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(200, 3);
        let mut net = classifier();
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            patience: None,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg, SgdNesterov::new(0.1, 0.9, 0.0));
        let hist = trainer.fit(&mut net, &x, &y, None, 7).unwrap();
        assert!(hist.train_loss.last().unwrap() < &0.1);
        let preds = net.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct as f32 / y.len() as f32 > 0.95);
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = blobs(100, 5);
        let mut net = classifier();
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 10,
            patience: None,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg, SgdNesterov::new(0.05, 0.9, 0.001));
        let hist = trainer.fit(&mut net, &x, &y, None, 7).unwrap();
        assert!(hist.train_loss.first().unwrap() > hist.train_loss.last().unwrap());
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let (x, y) = blobs(120, 9);
        let (tx, ty, vx, vy) = train_val_split(&x, &y, 0.25, 1);
        let mut net = classifier();
        let cfg = TrainConfig {
            epochs: 500,
            batch_size: 16,
            patience: Some(2),
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg, SgdNesterov::new(0.1, 0.9, 0.0));
        let hist = trainer
            .fit(&mut net, &tx, &ty, Some((&vx, &vy)), 3)
            .unwrap();
        assert!(hist.epochs_run < 500, "early stopping never triggered");
        assert_eq!(hist.val_loss.len(), hist.epochs_run);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(60, 11);
        let run = || {
            let mut net = classifier();
            let cfg = TrainConfig {
                epochs: 5,
                batch_size: 8,
                patience: None,
                ..Default::default()
            };
            let mut t = Trainer::new(cfg, SgdNesterov::paper_default());
            t.fit(&mut net, &x, &y, None, 42).unwrap();
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (x, y) = blobs(10, 13);
        let mut net = classifier();
        let mut trainer = Trainer::new(TrainConfig::default(), SgdNesterov::paper_default());
        assert!(trainer.fit(&mut net, &x, &y[..5], None, 1).is_err());
        let cfg = TrainConfig {
            batch_size: 0,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg, SgdNesterov::paper_default());
        assert!(trainer.fit(&mut net, &x, &y, None, 1).is_err());
    }

    #[test]
    fn split_fractions_and_disjointness() {
        let (x, y) = blobs(100, 15);
        let (tx, ty, vx, vy) = train_val_split(&x, &y, 0.2, 3);
        assert_eq!(vx.rows(), 20);
        assert_eq!(tx.rows(), 80);
        assert_eq!(ty.len(), 80);
        assert_eq!(vy.len(), 20);
    }

    #[test]
    fn class_weights_lift_minority_recall() {
        // 95/5 imbalanced blobs: unweighted training tends to neglect the
        // minority class; inverse-frequency weights must recover it.
        let mut rng = SplitMix64::new(21);
        let n = 400;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let minority = i % 20 == 0;
            let center = if minority { 1.2 } else { -1.2 };
            rows.push(vec![
                rng.normal_with(center, 0.8),
                rng.normal_with(center, 0.8),
            ]);
            labels.push(usize::from(minority));
        }
        let x = Matrix::from_rows(&rows);
        let minority_recall = |weights: Option<Vec<f32>>| {
            let mut net = Network::new(vec![
                Layer::dense(2, 8, 7),
                Layer::relu(),
                Layer::dense(8, 2, 8),
            ]);
            let cfg = TrainConfig {
                epochs: 25,
                batch_size: 32,
                patience: None,
                class_weights: weights,
                ..Default::default()
            };
            Trainer::new(cfg, SgdNesterov::new(0.05, 0.9, 0.0))
                .fit(&mut net, &x, &labels, None, 9)
                .unwrap();
            let preds = net.predict(&x);
            let hits = preds
                .iter()
                .zip(&labels)
                .filter(|(p, t)| **t == 1 && **p == 1)
                .count();
            hits as f32 / labels.iter().filter(|&&t| t == 1).count() as f32
        };
        let unweighted = minority_recall(None);
        let weighted = minority_recall(Some(vec![0.53, 10.0]));
        assert!(
            weighted >= unweighted,
            "weighted minority recall {weighted} < unweighted {unweighted}"
        );
        assert!(weighted > 0.5, "weighted minority recall = {weighted}");
    }

    /// A [`BatchSource`] that yields at most `chunk` rows per call,
    /// exercising the trainer's chunk-boundary handling.
    struct ChunkedSource<'a> {
        inner: crate::batch::MatrixBatchSource<'a>,
        chunk: usize,
    }

    impl BatchSource for ChunkedSource<'_> {
        fn num_rows(&self) -> usize {
            self.inner.num_rows()
        }
        fn width(&self) -> usize {
            self.inner.width()
        }
        fn reset(&mut self) {
            self.inner.reset();
        }
        fn next_rows(&mut self, limit: usize, x: &mut Vec<f32>, y: &mut Vec<usize>) -> usize {
            self.inner.next_rows(limit.min(self.chunk), x, y)
        }
    }

    #[test]
    fn streaming_full_window_matches_fit_bitwise() {
        let (x, y) = blobs(120, 23);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            patience: None,
            ..Default::default()
        };
        let mut net_fit = classifier();
        Trainer::new(cfg.clone(), SgdNesterov::paper_default())
            .fit(&mut net_fit, &x, &y, None, 77)
            .unwrap();
        // Regardless of how raggedly the source chunks the pass, the
        // full-window streaming path must reproduce `fit` bitwise.
        for chunk in [7usize, 16, 120] {
            let mut net = classifier();
            let mut src = ChunkedSource {
                inner: crate::batch::MatrixBatchSource::new(&x, &y),
                chunk,
            };
            Trainer::new(cfg.clone(), SgdNesterov::paper_default())
                .fit_streaming(&mut net, &mut src, None, 77)
                .unwrap();
            assert_eq!(net, net_fit, "source chunk {chunk}");
        }
    }

    #[test]
    fn streaming_full_window_matches_fit_with_validation() {
        let (x, y) = blobs(160, 25);
        let (tx, ty, vx, vy) = train_val_split(&x, &y, 0.25, 2);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            patience: Some(2),
            ..Default::default()
        };
        let mut net_fit = classifier();
        let h_fit = Trainer::new(cfg.clone(), SgdNesterov::paper_default())
            .fit(&mut net_fit, &tx, &ty, Some((&vx, &vy)), 5)
            .unwrap();
        let mut net = classifier();
        let mut src = ChunkedSource {
            inner: crate::batch::MatrixBatchSource::new(&tx, &ty),
            chunk: 13,
        };
        let h = Trainer::new(cfg, SgdNesterov::paper_default())
            .fit_streaming(&mut net, &mut src, Some((&vx, &vy)), 5)
            .unwrap();
        assert_eq!(net, net_fit);
        assert_eq!(h.epochs_run, h_fit.epochs_run);
        assert_eq!(h.val_loss, h_fit.val_loss);
        assert_eq!(h.best_epoch, h_fit.best_epoch);
    }

    #[test]
    fn bounded_window_is_chunk_size_independent_and_learns() {
        let (x, y) = blobs(200, 27);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            patience: None,
            shuffle_window: Some(48),
            ..Default::default()
        };
        let run = |chunk: usize| {
            let mut net = classifier();
            let mut src = ChunkedSource {
                inner: crate::batch::MatrixBatchSource::new(&x, &y),
                chunk,
            };
            let hist = Trainer::new(cfg.clone(), SgdNesterov::new(0.1, 0.9, 0.0))
                .fit_streaming(&mut net, &mut src, None, 31)
                .unwrap();
            (net, hist)
        };
        // Window refills draw on the RNG per *window*, never per source
        // chunk: any chunking must give identical weights.
        let (net_a, hist) = run(5);
        let (net_b, _) = run(48);
        let (net_c, _) = run(200);
        assert_eq!(net_a, net_b);
        assert_eq!(net_a, net_c);
        let preds = net_a.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct as f32 / y.len() as f32 > 0.9);
        assert_eq!(hist.epochs_run, 20);
    }

    #[test]
    fn streaming_rejects_bad_inputs() {
        let (x, y) = blobs(10, 29);
        let mut net = classifier();
        let empty_x = Matrix::zeros(0, 2);
        let empty_y: Vec<usize> = Vec::new();
        let mut empty = crate::batch::MatrixBatchSource::new(&empty_x, &empty_y);
        let mut trainer = Trainer::new(TrainConfig::default(), SgdNesterov::paper_default());
        assert!(trainer
            .fit_streaming(&mut net, &mut empty, None, 1)
            .is_err());
        let cfg = TrainConfig {
            shuffle_window: Some(0),
            ..Default::default()
        };
        let mut src = crate::batch::MatrixBatchSource::new(&x, &y);
        let mut trainer = Trainer::new(cfg, SgdNesterov::paper_default());
        assert!(trainer.fit_streaming(&mut net, &mut src, None, 1).is_err());
    }

    #[test]
    fn frozen_layer_survives_training() {
        let (x, y) = blobs(60, 17);
        let mut net = classifier();
        net.layers[0].set_frozen(true);
        let frozen_before = net.layers[0].clone();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 8,
            patience: None,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg, SgdNesterov::paper_default());
        trainer.fit(&mut net, &x, &y, None, 19).unwrap();
        assert_eq!(net.layers[0], frozen_before);
    }
}
